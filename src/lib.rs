//! `semcommute` — verification of semantic commutativity conditions and
//! inverse operations on linked data structures.
//!
//! This crate is the facade of the workspace reproducing the PLDI 2011 paper
//! "Verification of Semantic Commutativity Conditions and Inverse Operations
//! on Linked Data Structures". It re-exports the member crates:
//!
//! * [`logic`] — the specification logic (terms, values, evaluation),
//! * [`prover`] — proof obligations, the prover portfolio with its sharded
//!   verdict cache, and the work-stealing obligation scheduler,
//! * [`spec`] — abstract states and the four interface specifications,
//! * [`structures`] — the six concrete linked data structures,
//! * [`core`] — commutativity conditions, testing methods, verification,
//!   and inverse operations (the paper's contribution),
//! * [`runtime`] — the speculative-execution runtime that consumes the
//!   verified conditions and inverses.
//!
//! # Quick start
//!
//! Verify that `contains(v1)` and `add(v2)` commute exactly when
//! `v1 ≠ v2 ∨ v1 ∈ s`:
//!
//! ```
//! use semcommute::core::{interface_catalog, verify_condition, ConditionKind};
//! use semcommute::prover::{Portfolio, Scope};
//! use semcommute::spec::InterfaceId;
//!
//! let condition = interface_catalog(InterfaceId::Set)
//!     .into_iter()
//!     .find(|c| {
//!         c.first.op == "contains" && c.second.op == "add" && c.kind == ConditionKind::Between
//!     })
//!     .unwrap();
//! let report = verify_condition(&condition, &Portfolio::new(Scope::small()), 40);
//! assert!(report.verified());
//! ```

#![forbid(unsafe_code)]

pub use semcommute_core as core;
pub use semcommute_logic as logic;
pub use semcommute_prover as prover;
pub use semcommute_runtime as runtime;
pub use semcommute_spec as spec;
pub use semcommute_structures as structures;
