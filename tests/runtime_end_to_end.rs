//! End-to-end tests of the speculative runtime against the sequential
//! semantics, plus the commutativity-lattice behaviour discussed in
//! Section 5.1 / related work (dropping clauses keeps a condition sound but
//! loses completeness and therefore concurrency).

use proptest::prelude::*;

use semcommute::core::concrete::{evaluate, ConditionContext};
use semcommute::core::{interface_catalog, ConditionKind};
use semcommute::logic::{ElemId, Value};
use semcommute::runtime::{AnyStructure, CoarseLockRuntime, SpeculativeRuntime};
use semcommute::spec::{AbstractState, InterfaceId};

#[test]
fn speculative_and_coarse_lock_agree_on_disjoint_workloads() {
    let speculative = SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap());
    let coarse = CoarseLockRuntime::new(AnyStructure::by_name("HashSet").unwrap());
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let speculative = speculative.clone();
            let coarse = coarse.clone();
            scope.spawn(move || {
                for i in 0..30u32 {
                    let e = Value::elem(t * 30 + i + 1);
                    speculative
                        .run(8, |txn| {
                            txn.execute("add", std::slice::from_ref(&e)).map(|_| ())
                        })
                        .unwrap();
                    coarse.run_transaction(|txn| {
                        txn.execute("add", std::slice::from_ref(&e)).unwrap();
                    });
                }
            });
        }
    });
    assert_eq!(speculative.snapshot(), coarse.snapshot());
    assert_eq!(
        speculative.snapshot(),
        AbstractState::Set((1..=120).map(ElemId).collect())
    );
}

#[test]
fn aborted_transactions_leave_no_trace() {
    let rt = SpeculativeRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
    // Seed with committed data.
    rt.run(1, |txn| {
        txn.execute("addAt", &[Value::Int(0), Value::elem(1)])?;
        txn.execute("addAt", &[Value::Int(1), Value::elem(2)])?;
        Ok(())
    })
    .unwrap();
    let before = rt.snapshot();
    // A transaction mutates heavily and then aborts.
    let mut txn = rt.begin();
    txn.execute("addAt", &[Value::Int(0), Value::elem(9)])
        .unwrap();
    txn.execute("set", &[Value::Int(2), Value::elem(8)])
        .unwrap();
    txn.execute("removeAt", &[Value::Int(1)]).unwrap();
    txn.abort();
    assert_eq!(rt.snapshot(), before);
    assert!(rt.check_invariants().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-threaded transaction sequences on the speculative
    /// runtime produce exactly the same abstract state as applying the same
    /// committed operations sequentially (aborted transactions contribute
    /// nothing).
    #[test]
    fn committed_operations_match_sequential_execution(
        ops in proptest::collection::vec((0u8..3, 1u32..6, proptest::bool::ANY), 1..40)
    ) {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap());
        let mut reference = AnyStructure::by_name("HashSet").unwrap();
        for (kind, elem, commit) in ops {
            let op = match kind { 0 => "add", 1 => "remove", _ => "contains" };
            let mut txn = rt.begin();
            txn.execute(op, &[Value::elem(elem)]).unwrap();
            if commit {
                txn.commit();
                reference.apply(op, &[Value::elem(elem)]).unwrap();
            } else {
                txn.abort();
            }
        }
        prop_assert_eq!(rt.snapshot(), reference.abstract_state());
        prop_assert_eq!(rt.pending_operations(), 0);
    }
}

#[test]
fn dropping_clauses_is_sound_but_incomplete() {
    // Start from the sound and complete between condition for
    // contains(v1)/add(v2):  v1 ~= v2 | r1.  Dropping the `r1` clause gives
    // the simpler condition `v1 ~= v2`, which is still sound (it implies the
    // full condition) but no longer complete: it forgoes the concurrency of
    // re-adding an element that was already observed present.
    let full = interface_catalog(InterfaceId::Set)
        .into_iter()
        .find(|c| {
            c.first.op == "contains"
                && c.second.op == "add"
                && !c.second.recorded
                && c.kind == ConditionKind::Between
        })
        .unwrap();
    let mut dropped = full.clone();
    dropped.formula = semcommute::logic::build::neq(
        semcommute::logic::build::var_elem("v1"),
        semcommute::logic::build::var_elem("v2"),
    );

    // Soundness is preserved: wherever the dropped condition admits the pair,
    // the full condition does too (checked exhaustively over small states).
    let state: AbstractState = AbstractState::Set([ElemId(1)].into_iter().collect());
    let mut admitted_full = 0u32;
    let mut admitted_dropped = 0u32;
    for v1 in 1..=3u32 {
        for v2 in 1..=3u32 {
            let r1 = matches!(&state, AbstractState::Set(s) if s.contains(&ElemId(v1)));
            let ctx = ConditionContext::between(
                state.clone(),
                state.clone(),
                vec![Value::elem(v1)],
                Some(Value::Bool(r1)),
                vec![Value::elem(v2)],
            );
            let full_ok = evaluate(&full, &ctx).unwrap();
            let dropped_ok = evaluate(&dropped, &ctx).unwrap();
            if dropped_ok {
                assert!(full_ok, "dropped condition admitted a non-commuting pair");
            }
            admitted_full += u32::from(full_ok);
            admitted_dropped += u32::from(dropped_ok);
        }
    }
    // …but it admits strictly fewer commuting pairs (lost concurrency).
    assert!(admitted_dropped < admitted_full);

    // And the completeness testing method for the dropped condition is
    // rejected by the verifier.
    let (_, completeness) = semcommute::core::template::testing_methods(&dropped, 1);
    let obligations = semcommute::core::vcgen::generate_obligations(&completeness).unwrap();
    let prover = semcommute::prover::Portfolio::small();
    assert!(obligations
        .iter()
        .any(|ob| prover.prove(ob).is_counterexample()));
}
