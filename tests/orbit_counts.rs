//! Seed-failure triage for the orbit reduction: exact, hand-computed
//! `models_checked` / `orbits_pruned` counts for two small interfaces — a
//! set-shaped and a sequence-shaped input space. If a future change to the
//! enumeration drifts (a pruning bug, a candidate-ordering change, a block
//! boundary off-by-one), these tests fail with a readable count diff instead
//! of a silent performance or soundness regression surfacing only in the
//! full-catalog differential harness.
//!
//! The hand computation, spelled out so the expected numbers are auditable:
//! with no element variables and two padding elements the universe is
//! `{o1, o2}` and the only non-trivial permutation swaps them. For a single
//! set variable (entries ≤ 2) the unreduced candidates are the four subsets;
//! `{o2}` is the swap-image of `{o1}`, so three are canonical. For two set
//! variables the action is *joint*: of the 16 pairs, the 4 fixed points
//! (both slots `{}` or `{o1, o2}`) are their own orbit and the remaining 12
//! pair up, giving 4 + 12/2 = 10 canonical pairs. For one sequence variable
//! (length ≤ 2) the 7 unreduced sequences split into orbits
//! `{[]}`, `{[o1], [o2]}`, `{[o1 o1], [o2 o2]}`, `{[o1 o2], [o2 o1]}`: 4
//! canonical. With an element variable `v` the padding block *excludes* the
//! class `v` names: under `v = o1` the universe is `{o1, o2, o3}` but only
//! `o2 ↔ o3` permutes, so `{o1}` and `{o2}` are both canonical while `{o3}`
//! is pruned.

use std::collections::BTreeMap;

use semcommute::logic::build::*;
use semcommute::logic::Sort;
use semcommute::prover::{FiniteModelProver, InputSpace, Obligation, Scope};

/// Two anonymous padding elements, collections bounded at two entries /
/// length two, a minimal int range — every count below is hand-computed
/// against exactly these bounds. Orbit is pinned on explicitly so the
/// `SEMCOMMUTE_ORBIT=off` CI oracle leg still runs the reduced enumerator
/// here (the whole point is to pin its counts).
fn scope() -> Scope {
    Scope {
        elem_padding: 2,
        max_collection_entries: 2,
        max_seq_len: 2,
        int_min: 0,
        int_max: 0,
        max_models: 1_000_000,
        orbit: true,
        // The counts pin the enumeration, not the evaluator; the tree walk
        // keeps this test independent of the bytecode backend.
        bytecode: false,
    }
}

fn vars(pairs: &[(&str, Sort)]) -> BTreeMap<String, Sort> {
    pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect()
}

/// Enumerates a space both ways and checks (emitted, pruned, unreduced).
fn assert_counts(pairs: &[(&str, Sort)], expected: (usize, u64, usize)) {
    let (canonical, pruned, unreduced) = expected;
    let on = InputSpace::new(&vars(pairs), scope());
    let mut it = on.iter();
    let emitted = it.by_ref().count();
    assert_eq!(
        (emitted, it.orbits_pruned()),
        (canonical, pruned),
        "orbit-on enumeration of {pairs:?} drifted: expected {canonical} canonical \
         candidates with {pruned} pruned"
    );
    let off = InputSpace::new(&vars(pairs), scope().with_orbit(false));
    assert_eq!(
        off.iter().count(),
        unreduced,
        "unreduced enumeration of {pairs:?} drifted"
    );
    assert_eq!(
        canonical as u64 + pruned,
        unreduced as u64,
        "canonical + pruned must tile the unreduced space of {pairs:?}"
    );
}

#[test]
fn set_interface_counts_are_exact() {
    // One set slot: subsets of {o1, o2} — {o2} is the one pruned image.
    assert_counts(&[("s", Sort::Set)], (3, 1, 4));
    // Two set slots, joint action: (16 + 4 fixed points) / 2 = 10 orbits.
    assert_counts(&[("s", Sort::Set), ("t", Sort::Set)], (10, 6, 16));
    // An element variable pins its class: under v = o1 the block is
    // {o2, o3} (7 subsets, 5 canonical), under v = null it is {o1, o2}
    // (4 subsets, 3 canonical). Totals: 8 canonical, 3 pruned, 11 raw.
    assert_counts(&[("v", Sort::Elem), ("s", Sort::Set)], (8, 3, 11));
}

#[test]
fn sequence_interface_counts_are_exact() {
    // One sequence slot: 7 sequences up to length 2 over {o1, o2} in 4
    // orbits.
    assert_counts(&[("q", Sort::Seq)], (4, 3, 7));
    // Sequence × set, jointly: of the 7 × 4 = 28 pairs, the fixed points
    // are (seq fixed) × (set fixed) = 1 × 2, so (28 + 2) / 2 = 15 orbits.
    assert_counts(&[("q", Sort::Seq), ("s", Sort::Set)], (15, 13, 28));
}

/// The same counts must surface through the prover's statistics: a valid
/// obligation enumerates the whole space, so `models_checked` is the
/// canonical count and `orbits_pruned` the pruned count, per obligation.
#[test]
fn prover_statistics_report_the_exact_counts() {
    let set_ob = Obligation::new("set_counts").goal(le(card(var_set("s")), int(2)));
    let verdict = FiniteModelProver::new(scope()).prove(&set_ob);
    assert!(verdict.is_valid(), "{verdict}");
    assert_eq!(
        (
            verdict.stats().models_checked,
            verdict.stats().orbits_pruned
        ),
        (3, 1),
        "set obligation count drifted"
    );

    let seq_ob = Obligation::new("seq_counts").goal(le(seq_len(var_seq("q")), int(2)));
    let verdict = FiniteModelProver::new(scope()).prove(&seq_ob);
    assert!(verdict.is_valid(), "{verdict}");
    assert_eq!(
        (
            verdict.stats().models_checked,
            verdict.stats().orbits_pruned
        ),
        (4, 3),
        "sequence obligation count drifted"
    );

    // The unreduced oracle checks the full space and prunes nothing.
    let verdict = FiniteModelProver::new(scope().with_orbit(false)).prove(&seq_ob);
    assert_eq!(
        (
            verdict.stats().models_checked,
            verdict.stats().orbits_pruned
        ),
        (7, 0),
        "oracle count drifted"
    );
}
