//! The paper's headline accounting (Section 5.1): 765 commutativity
//! conditions, 1530 generated testing methods, 8 inverse operations.

use semcommute::core::template::testing_methods;
use semcommute::core::{full_catalog, interface_catalog, inverse_catalog, ConditionKind};
use semcommute::core::{interface_variants, OpVariant};
use semcommute::spec::{interface_by_id, InterfaceId};

#[test]
fn condition_counts_match_the_paper() {
    // (3 * 2^2) + 2 * (3 * 6^2) + 2 * (3 * 7^2) + (3 * 9^2) = 765
    assert_eq!(interface_catalog(InterfaceId::Accumulator).len(), 3 * 2 * 2);
    assert_eq!(interface_catalog(InterfaceId::Set).len(), 3 * 6 * 6);
    assert_eq!(interface_catalog(InterfaceId::Map).len(), 3 * 7 * 7);
    assert_eq!(interface_catalog(InterfaceId::List).len(), 3 * 9 * 9);
    assert_eq!(semcommute::core::catalog::paper_condition_count(), 765);
}

#[test]
fn testing_method_count_matches_the_paper() {
    // Two generated methods (soundness + completeness) per condition; counted
    // per data structure this gives the paper's 1530.
    let per_interface: usize = full_catalog().len() * 2;
    assert_eq!(per_interface, 510 * 2);
    let per_data_structure: usize = semcommute::core::catalog::data_structure_catalog()
        .iter()
        .map(|(_, conditions)| conditions.len() * 2)
        .sum();
    assert_eq!(per_data_structure, 1530);
}

#[test]
fn operation_variant_counts_match_section_5_1() {
    let counts: Vec<usize> = InterfaceId::ALL
        .into_iter()
        .map(|id| interface_variants(&interface_by_id(id)).len())
        .collect();
    assert_eq!(counts, vec![2, 6, 7, 9]);
}

#[test]
fn inverse_catalog_covers_every_updating_operation_once() {
    let catalog = inverse_catalog();
    assert_eq!(catalog.len(), 8);
    for id in InterfaceId::ALL {
        let iface = interface_by_id(id);
        for op in iface.update_ops() {
            assert_eq!(
                catalog
                    .iter()
                    .filter(|inv| inv.interface == id && inv.op == op.name)
                    .count(),
                1,
                "{}::{}",
                id,
                op.name
            );
        }
    }
}

#[test]
fn every_condition_produces_two_well_formed_methods() {
    // Spot-check that method generation works across the whole catalog (all
    // 510 distinct conditions) and produces obligations without errors.
    for (i, condition) in full_catalog().iter().enumerate() {
        let (s, c) = testing_methods(condition, i);
        assert!(s.is_soundness());
        assert!(!c.is_soundness());
        let sound_obs = semcommute::core::vcgen::generate_obligations(&s)
            .unwrap_or_else(|e| panic!("{}: {e}", condition.id()));
        let complete_obs = semcommute::core::vcgen::generate_obligations(&c)
            .unwrap_or_else(|e| panic!("{}: {e}", condition.id()));
        assert!(!sound_obs.is_empty());
        assert!(!complete_obs.is_empty());
        for ob in sound_obs.iter().chain(&complete_obs) {
            ob.validate().unwrap_or_else(|e| {
                panic!("{}: malformed obligation {}: {e}", condition.id(), ob.name)
            });
        }
    }
}

#[test]
fn trivially_true_and_false_conditions_are_where_expected() {
    // Observer/observer pairs are `true`; addAt/size pairs are `false`.
    let list = interface_catalog(InterfaceId::List);
    let find = |first: &OpVariant, second: &OpVariant, kind| {
        list.iter()
            .find(|c| c.first == *first && c.second == *second && c.kind == kind)
            .unwrap()
            .clone()
    };
    assert!(find(
        &OpVariant::recorded("indexOf"),
        &OpVariant::recorded("lastIndexOf"),
        ConditionKind::Before
    )
    .is_trivially_true());
    assert!(find(
        &OpVariant::recorded("addAt"),
        &OpVariant::recorded("size"),
        ConditionKind::Before
    )
    .is_trivially_false());
    // The paper highlights that `set` commutes with `size` (it never changes
    // the length).
    assert!(find(
        &OpVariant::discarded("set"),
        &OpVariant::recorded("size"),
        ConditionKind::After
    )
    .is_trivially_true());
}
