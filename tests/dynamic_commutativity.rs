//! Property-based cross-validation of the condition catalog.
//!
//! The verifier establishes soundness and completeness symbolically; this
//! suite checks the same property *dynamically* and independently: for random
//! abstract states and random operation arguments, the catalog condition
//! holds **iff** executing the two operations in both orders produces the
//! same recorded return values and the same abstract state (using the
//! executable abstract semantics of `semcommute-spec`). Pairs whose
//! preconditions do not transfer to the reverse order count as
//! non-commuting, exactly as in Properties 1 and 2 of the paper.

use proptest::prelude::*;

use semcommute::core::concrete::{evaluate, ConditionContext};
use semcommute::core::{interface_catalog, CommutativityCondition, ConditionKind};
use semcommute::logic::{ElemId, Value};
use semcommute::spec::{apply_op, interface_by_id, AbstractState, InterfaceId};

/// Executes `first(args1); second(args2)` and the reverse order, and reports
/// whether both orders are admissible and agree on recorded results and the
/// final abstract state.
fn orders_agree(
    condition: &CommutativityCondition,
    state: &AbstractState,
    args1: &[Value],
    args2: &[Value],
) -> Option<bool> {
    let iface = interface_by_id(condition.interface);
    // First order; preconditions must hold or the sample is discarded.
    let (s_mid, r1a) = apply_op(&iface, state, &condition.first.op, args1).ok()?;
    let (s_final, r2a) = apply_op(&iface, &s_mid, &condition.second.op, args2).ok()?;
    // Reverse order; a failing precondition means "does not commute".
    let reverse = (|| {
        let (t_mid, r2b) = apply_op(&iface, state, &condition.second.op, args2).ok()?;
        let (t_final, r1b) = apply_op(&iface, &t_mid, &condition.first.op, args1).ok()?;
        Some((t_final, r1b, r2b))
    })();
    let agree = match reverse {
        None => false,
        Some((t_final, r1b, r2b)) => {
            let results_agree = (!condition.first.recorded || r1a == r1b)
                && (!condition.second.recorded || r2a == r2b);
            results_agree && s_final == t_final
        }
    };
    Some(agree)
}

fn check_condition_dynamically(
    condition: &CommutativityCondition,
    state: AbstractState,
    args1: Vec<Value>,
    args2: Vec<Value>,
) -> Result<(), TestCaseError> {
    let iface = interface_by_id(condition.interface);
    let Some(agree) = orders_agree(condition, &state, &args1, &args2) else {
        // First-order preconditions violated: the condition makes no claim.
        return Ok(());
    };
    // Evaluate the condition in its natural context (compute intermediate
    // state and first result for between/after kinds).
    let (s_mid, r1) = apply_op(&iface, &state, &condition.first.op, &args1).expect("pre checked");
    let (s_final, r2) =
        apply_op(&iface, &s_mid, &condition.second.op, &args2).expect("pre checked");
    let ctx = ConditionContext {
        first_args: args1.clone(),
        second_args: args2.clone(),
        initial_state: Some(state.clone()),
        intermediate_state: Some(s_mid),
        final_state: Some(s_final),
        first_result: if condition.first.recorded { r1 } else { None },
        second_result: if condition.second.recorded { r2 } else { None },
    };
    let predicted = evaluate(condition, &ctx)
        .map_err(|e| TestCaseError::fail(format!("{}: {e}", condition.id())))?;
    prop_assert_eq!(
        predicted,
        agree,
        "{} mispredicts for state {} args {:?} / {:?}",
        condition.id(),
        state,
        args1,
        args2
    );
    Ok(())
}

fn elem_strategy() -> impl Strategy<Value = Value> {
    (1u32..6).prop_map(Value::elem)
}

prop_compose! {
    fn set_state()(elems in proptest::collection::btree_set(1u32..6, 0..5)) -> AbstractState {
        AbstractState::Set(elems.into_iter().map(ElemId).collect())
    }
}

prop_compose! {
    fn map_state()(pairs in proptest::collection::btree_map(1u32..6, 1u32..6, 0..5)) -> AbstractState {
        AbstractState::Map(pairs.into_iter().map(|(k, v)| (ElemId(k), ElemId(v + 10))).collect())
    }
}

prop_compose! {
    fn list_state()(items in proptest::collection::vec(1u32..5, 0..6)) -> AbstractState {
        AbstractState::List(items.into_iter().map(ElemId).collect())
    }
}

/// Strategy selecting a random condition of an interface.
fn condition_strategy(interface: InterfaceId) -> impl Strategy<Value = CommutativityCondition> {
    let catalog = interface_catalog(interface);
    (0..catalog.len()).prop_map(move |i| catalog[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn set_conditions_predict_commutation(
        condition in condition_strategy(InterfaceId::Set),
        state in set_state(),
        seed1 in elem_strategy(),
        seed2 in elem_strategy(),
    ) {
        let iface = interface_by_id(InterfaceId::Set);
        let arity1 = iface.op(&condition.first.op).unwrap().arity();
        let arity2 = iface.op(&condition.second.op).unwrap().arity();
        let args1 = vec![seed1; arity1];
        let args2 = vec![seed2; arity2];
        check_condition_dynamically(&condition, state, args1, args2)?;
    }

    #[test]
    fn map_conditions_predict_commutation(
        condition in condition_strategy(InterfaceId::Map),
        state in map_state(),
        k1 in elem_strategy(),
        v1 in elem_strategy(),
        k2 in elem_strategy(),
        v2 in elem_strategy(),
    ) {
        let iface = interface_by_id(InterfaceId::Map);
        let build_args = |op: &str, k: &Value, v: &Value| {
            match iface.op(op).unwrap().arity() {
                0 => vec![],
                1 => vec![k.clone()],
                _ => vec![k.clone(), v.clone()],
            }
        };
        let args1 = build_args(&condition.first.op, &k1, &v1);
        let args2 = build_args(&condition.second.op, &k2, &v2);
        check_condition_dynamically(&condition, state, args1, args2)?;
    }

    #[test]
    fn accumulator_conditions_predict_commutation(
        condition in condition_strategy(InterfaceId::Accumulator),
        counter in -5i64..6,
        v1 in -3i64..4,
        v2 in -3i64..4,
    ) {
        let iface = interface_by_id(InterfaceId::Accumulator);
        let build_args = |op: &str, v: i64| {
            if iface.op(op).unwrap().arity() == 1 { vec![Value::Int(v)] } else { vec![] }
        };
        let args1 = build_args(&condition.first.op, v1);
        let args2 = build_args(&condition.second.op, v2);
        check_condition_dynamically(&condition, AbstractState::Counter(counter), args1, args2)?;
    }
}

proptest! {
    // The ArrayList conditions are the most intricate; give them their own
    // budget with index/element strategies tailored to short lists.
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn array_list_conditions_predict_commutation(
        condition in condition_strategy(InterfaceId::List),
        state in list_state(),
        i1 in -1i64..7,
        i2 in -1i64..7,
        v1 in elem_strategy(),
        v2 in elem_strategy(),
    ) {
        let iface = interface_by_id(InterfaceId::List);
        let build_args = |op: &str, i: i64, v: &Value| {
            let spec = iface.op(op).unwrap();
            spec.params
                .iter()
                .map(|(_, sort)| match sort {
                    semcommute::logic::Sort::Int => Value::Int(i),
                    _ => v.clone(),
                })
                .collect::<Vec<_>>()
        };
        let args1 = build_args(&condition.first.op, i1, &v1);
        let args2 = build_args(&condition.second.op, i2, &v2);
        check_condition_dynamically(&condition, state, args1, args2)?;
    }
}

#[test]
fn every_before_condition_is_checkable_before_execution() {
    // Before conditions must be evaluable from the initial state and the
    // arguments alone — the defining property of the kind.
    for condition in interface_catalog(InterfaceId::Set)
        .into_iter()
        .chain(interface_catalog(InterfaceId::Map))
        .chain(interface_catalog(InterfaceId::List))
        .filter(|c| c.kind == ConditionKind::Before)
    {
        let vars = semcommute::logic::free_vars(&condition.formula);
        assert!(
            !vars.contains_key("r1") && !vars.contains_key("r2") && !vars.contains_key("s2"),
            "{} references run-time-only information",
            condition.id()
        );
    }
}
