//! Cross-crate verification smoke tests: the headline result of the paper on
//! a budgeted sample (the full catalog is exercised by
//! `cargo run --release --example verify_catalog` and the `table_5_8`
//! binary; an `#[ignore]`d test runs it here too).

use semcommute::core::inverse::{inverse_catalog, verify_inverse};
use semcommute::core::verify::{scope_for, verify_interface, VerifyOptions};
use semcommute::prover::Portfolio;
use semcommute::spec::InterfaceId;

#[test]
fn accumulator_and_set_catalogs_fully_verify() {
    for (interface, expected) in [(InterfaceId::Accumulator, 12), (InterfaceId::Set, 108)] {
        let report = verify_interface(interface, &VerifyOptions::quick(expected));
        assert_eq!(report.total(), expected);
        assert_eq!(
            report.verified_count(),
            expected,
            "{interface} failures: {:?}",
            report
                .failures()
                .iter()
                .map(|f| f.condition.id())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn map_catalog_sample_verifies() {
    let report = verify_interface(InterfaceId::Map, &VerifyOptions::quick(60));
    assert_eq!(report.verified_count(), report.total());
}

#[test]
fn array_list_catalog_sample_verifies() {
    let report = verify_interface(InterfaceId::List, &VerifyOptions::quick(60));
    assert_eq!(
        report.verified_count(),
        report.total(),
        "failures: {:?}",
        report
            .failures()
            .iter()
            .map(|f| f.condition.id())
            .collect::<Vec<_>>()
    );
}

#[test]
fn all_eight_inverse_operations_verify() {
    for inverse in inverse_catalog() {
        let prover = Portfolio::new(scope_for(inverse.interface, 3));
        let verdict = verify_inverse(&inverse, &prover);
        assert!(verdict.is_valid(), "{inverse}: {verdict}");
    }
}

/// The full 765-condition catalog. Run with
/// `cargo test --release -- --ignored full_catalog`.
#[test]
#[ignore = "several minutes in debug builds; run in release or use the verify_catalog example"]
fn full_catalog_verifies() {
    let options = VerifyOptions {
        limit: None,
        ..VerifyOptions::default()
    };
    let mut conditions = 0;
    let mut verified = 0;
    for interface in InterfaceId::ALL {
        let report = verify_interface(interface, &options);
        let weight = interface.implementations().len();
        conditions += report.total() * weight;
        verified += report.verified_count() * weight;
    }
    assert_eq!(conditions, 765);
    assert_eq!(verified, 765);
}
