//! Property-based validation of the inverse-operation catalog (Table 5.10):
//! for every state-updating operation, executing the operation and then the
//! inverse the catalog prescribes restores the original *abstract* state —
//! both at the specification level and on the concrete structures (where the
//! concrete state may legitimately differ, e.g. a reinserted list node ends
//! up in a different position).

use proptest::prelude::*;

use semcommute::core::inverse_catalog;
use semcommute::logic::{ElemId, Value};
use semcommute::runtime::AnyStructure;
use semcommute::spec::{apply_op, interface_by_id, AbstractState, InterfaceId};

fn run_roundtrip_abstract(
    interface: InterfaceId,
    op: &str,
    state: &AbstractState,
    args: &[Value],
) -> Result<(), TestCaseError> {
    let iface = interface_by_id(interface);
    let inverse = inverse_catalog()
        .into_iter()
        .find(|inv| inv.interface == interface && inv.op == op)
        .expect("every updating operation has an inverse");
    let Ok((mid, result)) = apply_op(&iface, state, op, args) else {
        // Precondition violated: nothing to check for this sample.
        return Ok(());
    };
    let restored = match inverse.concrete_call(args, result.as_ref()) {
        None => mid,
        Some((inv_op, inv_args)) => {
            let (restored, _) = apply_op(&iface, &mid, &inv_op, &inv_args)
                .map_err(|e| TestCaseError::fail(format!("inverse precondition failed: {e}")))?;
            restored
        }
    };
    prop_assert_eq!(&restored, state, "{}::{} not undone", interface, op);
    Ok(())
}

fn run_roundtrip_concrete(
    name: &str,
    op: &str,
    seed_elems: &[u32],
    args: &[Value],
) -> Result<(), TestCaseError> {
    let mut structure = AnyStructure::by_name(name).expect("known structure");
    // Seed the structure.
    for (i, &e) in seed_elems.iter().enumerate() {
        match structure.interface() {
            InterfaceId::Set => {
                structure.apply("add", &[Value::elem(e)]).unwrap();
            }
            InterfaceId::Map => {
                structure
                    .apply("put", &[Value::elem(e), Value::elem(e + 100)])
                    .unwrap();
            }
            InterfaceId::List => {
                structure
                    .apply("addAt", &[Value::Int(i as i64), Value::elem(e)])
                    .unwrap();
            }
            InterfaceId::Accumulator => {
                structure
                    .apply("increase", &[Value::Int(e as i64)])
                    .unwrap();
            }
        }
    }
    let before = structure.abstract_state();
    let inverse = inverse_catalog()
        .into_iter()
        .find(|inv| inv.interface == structure.interface() && inv.op == op)
        .expect("inverse exists");
    let Ok(result) = structure.apply(op, args) else {
        return Ok(()); // precondition violated, e.g. out-of-range index
    };
    if let Some((inv_op, inv_args)) = inverse.concrete_call(args, result.as_ref()) {
        structure
            .apply(&inv_op, &inv_args)
            .map_err(|e| TestCaseError::fail(format!("inverse rejected: {e}")))?;
    }
    prop_assert_eq!(structure.abstract_state(), before);
    structure.check_invariants().map_err(TestCaseError::fail)?;
    Ok(())
}

prop_compose! {
    fn small_elems()(elems in proptest::collection::btree_set(1u32..8, 0..6)) -> Vec<u32> {
        elems.into_iter().collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn set_add_and_remove_round_trip(elems in small_elems(), v in 1u32..8) {
        let state = AbstractState::Set(elems.iter().copied().map(ElemId).collect());
        run_roundtrip_abstract(InterfaceId::Set, "add", &state, &[Value::elem(v)])?;
        run_roundtrip_abstract(InterfaceId::Set, "remove", &state, &[Value::elem(v)])?;
        run_roundtrip_concrete("ListSet", "add", &elems, &[Value::elem(v)])?;
        run_roundtrip_concrete("HashSet", "remove", &elems, &[Value::elem(v)])?;
    }

    #[test]
    fn map_put_and_remove_round_trip(elems in small_elems(), k in 1u32..8, v in 1u32..8) {
        let state = AbstractState::Map(
            elems.iter().map(|&e| (ElemId(e), ElemId(e + 100))).collect(),
        );
        run_roundtrip_abstract(InterfaceId::Map, "put", &state, &[Value::elem(k), Value::elem(v)])?;
        run_roundtrip_abstract(InterfaceId::Map, "remove", &state, &[Value::elem(k)])?;
        run_roundtrip_concrete("HashTable", "put", &elems, &[Value::elem(k), Value::elem(v)])?;
        run_roundtrip_concrete("AssociationList", "remove", &elems, &[Value::elem(k)])?;
    }

    #[test]
    fn list_updates_round_trip(items in proptest::collection::vec(1u32..6, 0..6), i in 0i64..7, v in 1u32..6) {
        let state = AbstractState::List(items.iter().copied().map(ElemId).collect());
        run_roundtrip_abstract(InterfaceId::List, "addAt", &state, &[Value::Int(i), Value::elem(v)])?;
        run_roundtrip_abstract(InterfaceId::List, "removeAt", &state, &[Value::Int(i)])?;
        run_roundtrip_abstract(InterfaceId::List, "set", &state, &[Value::Int(i), Value::elem(v)])?;
        run_roundtrip_concrete("ArrayList", "addAt", &items, &[Value::Int(i), Value::elem(v)])?;
        run_roundtrip_concrete("ArrayList", "removeAt", &items, &[Value::Int(i)])?;
        run_roundtrip_concrete("ArrayList", "set", &items, &[Value::Int(i), Value::elem(v)])?;
    }

    #[test]
    fn accumulator_increase_round_trips(c in -100i64..100, v in -50i64..50) {
        run_roundtrip_abstract(
            InterfaceId::Accumulator,
            "increase",
            &AbstractState::Counter(c),
            &[Value::Int(v)],
        )?;
    }
}
