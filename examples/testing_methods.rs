//! Reproduce the paper's figures: the generated testing methods.
//!
//! * Figure 2-2 — the soundness and completeness commutativity testing
//!   methods for the between condition of `contains(v1)` / `add(v2)`,
//! * Figure 2-3 — the inverse testing method for `HashSet.add(v)`,
//! * Figure 2-4 — the inverse testing method for `HashTable.put(k, v)`.
//!
//! Run with `cargo run --example testing_methods`.

use semcommute::core::template::testing_methods;
use semcommute::core::{interface_catalog, inverse_catalog, ConditionKind};
use semcommute::spec::InterfaceId;

fn main() {
    let condition = interface_catalog(InterfaceId::Set)
        .into_iter()
        .find(|c| {
            c.first.op == "contains"
                && c.second.op == "add"
                && !c.second.recorded
                && c.kind == ConditionKind::Between
        })
        .expect("condition exists");
    let (soundness, completeness) = testing_methods(&condition, 40);

    println!("--- Figure 2-2 (soundness testing method) ---------------------");
    println!("{soundness}");
    println!("--- Figure 2-2 (completeness testing method) -------------------");
    println!("{completeness}");

    for (figure, interface, op) in [
        ("Figure 2-3", InterfaceId::Set, "add"),
        ("Figure 2-4", InterfaceId::Map, "put"),
    ] {
        let inverse = inverse_catalog()
            .into_iter()
            .find(|i| i.interface == interface && i.op == op)
            .expect("inverse exists");
        println!("--- {figure} (inverse testing method for {op}) -----------------");
        println!("{}", inverse.render());
    }
}
