//! The paper's motivating client: speculative parallel execution over a
//! shared linked data structure, with commutativity-based conflict detection
//! and inverse-operation rollback (Chapter 1, Section 1.3).
//!
//! Several worker threads process a synthetic worklist. Each task reads and
//! updates a shared `HashTable` (a map from item keys to computed values)
//! inside an optimistic transaction. Tasks that touch different keys commute
//! — the verified between conditions admit them concurrently; tasks that
//! touch the same key conflict — the later one aborts, its operations are
//! undone with the verified inverses, and it retries.
//!
//! Run with `cargo run --release --example speculative_worklist`.

use semcommute::logic::{ElemId, Value};
use semcommute::runtime::{AnyStructure, SpeculativeRuntime};
use semcommute::spec::AbstractState;

const WORKERS: u32 = 8;
const TASKS_PER_WORKER: u32 = 200;
/// Keys are drawn from a small range so that some tasks genuinely collide.
const KEY_RANGE: u32 = 64;

fn main() {
    let runtime = SpeculativeRuntime::new(AnyStructure::by_name("HashTable").unwrap());

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let runtime = runtime.clone();
            scope.spawn(move || {
                for task in 0..TASKS_PER_WORKER {
                    // A cheap deterministic pseudo-random key per task.
                    let key = 1 + (worker * 2_654_435 + task * 40_503) % KEY_RANGE;
                    let value = worker * TASKS_PER_WORKER + task + 1;
                    runtime
                        .run(64, |txn| {
                            // Read the current value for the key, "compute",
                            // then publish a new value.
                            let current = txn.execute("get", &[Value::elem(key)])?;
                            let bumped = match current {
                                Some(Value::Elem(e)) if !e.is_null() => e.0 + 1,
                                _ => value,
                            };
                            txn.execute("put", &[Value::elem(key), Value::elem(bumped)])?;
                            txn.execute("size", &[])?;
                            Ok(())
                        })
                        .expect("task eventually commits");
                }
            });
        }
    });

    let stats = runtime.stats();
    let final_state = runtime.snapshot();
    let size = match &final_state {
        AbstractState::Map(m) => m.len(),
        _ => unreachable!("the shared structure is a map"),
    };
    println!("worklist processed by {WORKERS} workers ({TASKS_PER_WORKER} tasks each)");
    println!("  committed transactions : {}", stats.commits);
    println!("  aborted transactions   : {}", stats.aborts);
    println!("  conflicts detected     : {}", stats.conflicts);
    println!("  operations executed    : {}", stats.operations);
    println!("  final map size         : {size} (keys touched out of {KEY_RANGE})");

    assert_eq!(stats.commits, u64::from(WORKERS * TASKS_PER_WORKER));
    assert!(size <= KEY_RANGE as usize);
    runtime
        .check_invariants()
        .expect("representation invariant holds");
    // Every aborted transaction was rolled back: no uncommitted operation is
    // still pending.
    assert_eq!(runtime.pending_operations(), 0);
    // All keys hold non-null values.
    assert!(
        matches!(final_state, AbstractState::Map(m) if m.values().all(|v| *v != semcommute::logic::NULL_ELEM))
    );
    let _ = ElemId(0);
    println!("final state is consistent: every committed update is visible exactly once");
}
