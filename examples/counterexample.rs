//! What happens when a commutativity condition is wrong?
//!
//! A developer-specified condition can fail in two ways (Chapter 4):
//!
//! * it is **unsound** — it claims two operations commute in a state where
//!   they do not (dangerous: a parallel system relying on it would produce a
//!   non-serializable execution), or
//! * it is **incomplete** — it misses states in which the operations do
//!   commute (safe but loses parallelism).
//!
//! This example deliberately mis-specifies both directions for the
//! `remove(k)` / `get(k)` pair of the map interface and shows the
//! counterexamples the verifier produces.
//!
//! Run with `cargo run --example counterexample`.

use semcommute::core::template::testing_methods;
use semcommute::core::vcgen::generate_obligations;
use semcommute::core::verify::scope_for;
use semcommute::core::{interface_catalog, ConditionKind};
use semcommute::logic::build;
use semcommute::prover::Portfolio;
use semcommute::spec::InterfaceId;

fn main() {
    let correct = interface_catalog(InterfaceId::Map)
        .into_iter()
        .find(|c| {
            c.first.op == "remove"
                && c.first.recorded
                && c.second.op == "get"
                && c.kind == ConditionKind::Before
        })
        .expect("catalog covers every pair");
    println!("Correct condition: {}\n", correct);

    let prover = Portfolio::new(scope_for(InterfaceId::Map, 3));

    // --- Unsound: claim the operations always commute. -------------------
    let mut unsound = correct.clone();
    unsound.formula = build::tru();
    let (soundness_method, _) = testing_methods(&unsound, 1);
    println!("Claiming `remove(k1); get(k2)` always commute…");
    for ob in generate_obligations(&soundness_method).unwrap() {
        let verdict = prover.prove(&ob);
        if let Some(model) = verdict.counter_model() {
            println!("REJECTED — counterexample found by {}:", ob.name);
            println!("{model}");
            println!(
                "(k1 = k2 and the key is mapped: the get observes a different value\n\
                 depending on whether the remove ran first.)\n"
            );
        }
    }

    // --- Incomplete: claim the operations never commute. -----------------
    let mut incomplete = correct.clone();
    incomplete.formula = build::fls();
    let (_, completeness_method) = testing_methods(&incomplete, 2);
    println!("Claiming `remove(k1); get(k2)` never commute…");
    for ob in generate_obligations(&completeness_method).unwrap() {
        let verdict = prover.prove(&ob);
        if let Some(model) = verdict.counter_model() {
            println!("REJECTED — counterexample found by {}:", ob.name);
            println!("{model}");
            println!("(distinct keys commute, so the all-false condition is not complete.)");
        }
    }

    // --- The catalog condition passes both checks. ------------------------
    let report = semcommute::core::verify_condition(&correct, &prover, 3);
    println!(
        "\nCatalog condition `{}`: sound = {}, complete = {}",
        correct.formula,
        report.soundness.is_valid(),
        report.completeness.is_valid()
    );
}
