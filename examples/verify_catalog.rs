//! Verify the full commutativity-condition catalog and the inverse-operation
//! catalog, reproducing the paper's headline counts: 765 commutativity
//! conditions (1530 generated testing methods) and 8 inverse testing methods,
//! all verified.
//!
//! Run with `cargo run --release --example verify_catalog`. Pass a number to
//! limit how many conditions per interface are verified (useful for a quick
//! look), `--seq-len N` to change the ArrayList sequence scope,
//! `--threads N` to size the work-stealing obligation scheduler (`1` runs
//! the reproducible sequential baseline), `--orbit off` to enumerate
//! candidate models unreduced (the oracle the differential soundness
//! harness compares the default orbit-canonical enumeration against), and
//! `--evaluator tree` to decide candidates with the tree-walk reference
//! evaluator instead of the default batched bytecode backend (also
//! selectable via the `SEMCOMMUTE_BYTECODE` environment variable).

use std::time::Instant;

use semcommute::core::verify::{verify_catalog, VerifyOptions};
use semcommute::core::{inverse_catalog, report};
use semcommute::prover::Portfolio;

const USAGE: &str = "\
usage: verify_catalog [LIMIT] [--seq-len N] [--threads N]
                      [--split-threshold N] [--orbit on|off]
                      [--evaluator tree|bytecode]

  LIMIT               verify only the first LIMIT conditions per interface
  --seq-len N         ArrayList sequence scope (default 4)
  --threads N         work-stealing scheduler width; 1 = sequential baseline
  --split-threshold N unreduced-space size above which one obligation's
                      model search splits into stealable range tasks
  --orbit on|off      orbit-canonical (default) vs. unreduced enumeration
  --evaluator WHICH   batched bytecode backend (default) vs. the tree-walk
                      reference evaluator; the default honours the
                      SEMCOMMUTE_BYTECODE environment variable";

/// Parses a required numeric option value; on a missing or non-numeric value
/// prints what was wrong plus the usage text and exits with status 2 (instead
/// of panicking with a backtrace).
fn numeric_option(flag: &str, value: Option<String>) -> usize {
    match value {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} needs a number, got `{v}`\n{USAGE}");
            std::process::exit(2);
        }),
        None => {
            eprintln!("error: {flag} needs a number\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut options = VerifyOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--seq-len" => options.seq_len = numeric_option("--seq-len", args.next()),
            "--threads" => options.threads = numeric_option("--threads", args.next()),
            "--split-threshold" => {
                options.split_threshold = numeric_option("--split-threshold", args.next()) as u64
            }
            "--evaluator" => match args.next().as_deref() {
                Some("bytecode") => options.bytecode = true,
                Some("tree") => options.bytecode = false,
                other => {
                    eprintln!(
                        "error: --evaluator needs `tree` or `bytecode`, got {}\n{USAGE}",
                        other.map_or("nothing".to_string(), |v| format!("`{v}`"))
                    );
                    std::process::exit(2);
                }
            },
            "--orbit" => match args.next().as_deref() {
                Some("on") => options.orbit = true,
                Some("off") => options.orbit = false,
                other => {
                    eprintln!(
                        "error: --orbit needs `on` or `off`, got {}\n{USAGE}",
                        other.map_or("nothing".to_string(), |v| format!("`{v}`"))
                    );
                    std::process::exit(2);
                }
            },
            other => match other.parse() {
                Ok(limit) => options.limit = Some(limit),
                Err(_) => {
                    eprintln!("error: unrecognized argument `{other}`\n{USAGE}");
                    std::process::exit(2);
                }
            },
        }
    }

    println!("Verifying the commutativity-condition catalog");
    println!(
        "(threads: {}, ArrayList sequence scope: {}, limit: {:?}, orbit: {}, evaluator: {})\n",
        options.threads,
        options.seq_len,
        options.limit,
        if options.orbit { "on" } else { "off" },
        if options.bytecode { "bytecode" } else { "tree" }
    );

    let start = Instant::now();
    let catalog = verify_catalog(&options);
    let mut paper_conditions = 0usize;
    let mut paper_verified = 0usize;
    for report in &catalog.interfaces {
        let implementations = report.interface.implementations().len();
        paper_conditions += report.total() * implementations;
        paper_verified += report.verified_count() * implementations;
        println!(
            "{:<12} {:>4} conditions  {:>4} methods  {:>4} verified  {:>8.2}s",
            report.interface.to_string(),
            report.total(),
            report.method_count(),
            report.verified_count(),
            report.elapsed.as_secs_f64()
        );
        for failure in report.failures() {
            println!("  FAILED {}", failure.condition.id());
            if let Some(model) = failure.soundness.counter_model() {
                println!("    soundness counterexample:\n{model}");
            }
            if let Some(model) = failure.completeness.counter_model() {
                println!("    completeness counterexample:\n{model}");
            }
        }
    }
    println!(
        "\nmodels checked: {} ({} pruned as non-canonical orbit members)",
        catalog.models_checked(),
        catalog.orbits_pruned()
    );
    if options.bytecode {
        println!(
            "bytecode batches: {} ({} fallback lanes, {} instructions executed)",
            catalog.batches(),
            catalog.batch_fallbacks(),
            catalog.instrs_executed()
        );
    }
    let reports = catalog.interfaces;

    if let Some(s) = &catalog.scheduler {
        println!(
            "\nscheduler: {} obligations ({} unique), {} proved, {} dedup hits, \
             {} skipped, {} steals moving {} tasks",
            s.submitted, s.unique, s.proved, s.cache_hits, s.skipped, s.steals, s.stolen_tasks
        );
        println!(
            "           {} splits into {} subranges; obligation wall max {:.3}s, p99 {:.3}s",
            s.splits,
            s.subranges,
            s.max_obligation_wall.as_secs_f64(),
            s.p99_obligation_wall.as_secs_f64()
        );
        for error in &s.errors {
            println!("  non-fatal error: {error}");
        }
    }

    println!();
    println!("{}", report::verification_time_table(&reports));
    println!(
        "Conditions counted per data structure (paper counts 765): {paper_verified}/{paper_conditions} verified"
    );

    println!("\nVerifying the inverse-operation catalog (Table 5.10)");
    let mut inverse_ok = 0;
    for inverse in inverse_catalog() {
        let scope = semcommute::core::verify::scope_for(inverse.interface, options.seq_len)
            .with_orbit(options.orbit)
            .with_bytecode(options.bytecode);
        let verdict = semcommute::core::inverse::verify_inverse(&inverse, &Portfolio::new(scope));
        println!(
            "  {:<60} {}",
            inverse.to_string(),
            if verdict.is_valid() {
                "verified"
            } else {
                "FAILED"
            }
        );
        if verdict.is_valid() {
            inverse_ok += 1;
        }
    }
    println!("{inverse_ok}/8 inverse testing methods verified");
    println!("\nTotal time: {:.2}s", start.elapsed().as_secs_f64());
}
