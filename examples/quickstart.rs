//! Quickstart: specify a commutativity condition, verify it, and use it.
//!
//! This walks through the paper's running example (Chapter 2): the `HashSet`
//! operations `contains(v1)` and `add(v2)` commute if and only if
//! `v1 ≠ v2 ∨ v1 ∈ s`. We (1) look the condition up in the catalog, (2) show
//! the generated soundness/completeness testing methods, (3) verify them, and
//! (4) evaluate the condition dynamically against a concrete `HashSet`.
//!
//! Run with `cargo run --example quickstart`.

use semcommute::core::concrete::{evaluate, ConditionContext};
use semcommute::core::template::testing_methods;
use semcommute::core::verify::{scope_for, verify_condition};
use semcommute::core::{interface_catalog, ConditionKind};
use semcommute::logic::Value;
use semcommute::prover::Portfolio;
use semcommute::spec::InterfaceId;
use semcommute::structures::{Abstraction, HashSet, SetInterface};

fn main() {
    // 1. The between condition for contains(v1); add(v2) from the catalog.
    let condition = interface_catalog(InterfaceId::Set)
        .into_iter()
        .find(|c| {
            c.first.op == "contains"
                && c.second.op == "add"
                && !c.second.recorded
                && c.kind == ConditionKind::Between
        })
        .expect("catalog covers every pair");
    println!("Condition {}:\n  {}\n", condition.id(), condition.formula);

    // 2. The generated testing methods (Figure 2-2 of the paper).
    let (soundness, completeness) = testing_methods(&condition, 40);
    println!("Generated soundness testing method:\n{soundness}");
    println!("Generated completeness testing method:\n{completeness}");

    // 3. Verify both methods.
    let prover = Portfolio::new(scope_for(InterfaceId::Set, 4));
    let report = verify_condition(&condition, &prover, 40);
    println!(
        "soundness: {}\ncompleteness: {}\n",
        report.soundness, report.completeness
    );
    assert!(report.verified());

    // 4. Use the condition dynamically against a concrete HashSet.
    let mut set = HashSet::new();
    set.add(semcommute::logic::ElemId(7));
    let state = set.abstract_state();
    for (v1, v2) in [(7u32, 9u32), (9, 9), (7, 7)] {
        let r1 = set.contains(semcommute::logic::ElemId(v1));
        let ctx = ConditionContext::between(
            state.clone(),
            state.clone(),
            vec![Value::elem(v1)],
            Some(Value::Bool(r1)),
            vec![Value::elem(v2)],
        );
        println!(
            "contains({v1}); add({v2}) on {state}: commute = {}",
            evaluate(&condition, &ctx).unwrap()
        );
    }
}
