//! Term-level benchmarks for the specification logic: the `simplify` / `nnf` /
//! `substitute` passes that dominate the structural prover, and the raw
//! finite-model search loop. These are the hot paths the hash-consed term
//! arena accelerates; run them before and after arena changes to quantify the
//! effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semcommute_logic::build::*;
use semcommute_logic::{simplify, subst::subst_map, substitute, to_nnf, Term};
use semcommute_prover::{FiniteModelProver, Obligation, Scope};

/// A formula with heavy structural sharing: the same commutativity-style
/// sub-formula repeated across a conjunction, as produced by inlining
/// definitions into a generated obligation (each occurrence of a defined
/// variable duplicates its definition).
fn shared_formula(copies: usize) -> Term {
    let s_post = set_add(set_add(var_set("s"), var_elem("v1")), var_elem("v2"));
    let membership = iff(
        member(var_elem("v1"), s_post.clone()),
        or2(
            eq(var_elem("v1"), var_elem("v2")),
            member(var_elem("v1"), var_set("s")),
        ),
    );
    let guard = implies(
        and2(
            neq(var_elem("v1"), null()),
            lt(card(var_set("s")), add(card(s_post), int(1))),
        ),
        membership,
    );
    and((0..copies).map(|i| {
        and2(
            guard.clone(),
            // A per-copy twist so the conjunction does not collapse to one
            // literal under deduplication.
            le(int(i as i64), card(var_set("s"))),
        )
    }))
}

/// Clears the calling thread's arena so each iteration measures real
/// rewriting instead of memo-cache hits. Kept inside the timed closure —
/// the reset itself is cheap next to the pass being measured.
fn fresh_arena() {
    semcommute_logic::with_arena(|arena| arena.clear());
}

fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify");
    for copies in [4usize, 16, 64] {
        let term = shared_formula(copies);
        group.bench_with_input(BenchmarkId::from_parameter(copies), &term, |b, term| {
            b.iter(|| {
                fresh_arena();
                simplify(term)
            })
        });
    }
    // The memoized repeat path (what a catalog run sees after the first
    // occurrence of a shared obligation): same term, warm arena.
    let term = shared_formula(64);
    simplify(&term);
    group.bench_with_input(
        BenchmarkId::from_parameter("64_memoized"),
        &term,
        |b, term| b.iter(|| simplify(term)),
    );
    group.finish();
}

fn bench_nnf(c: &mut Criterion) {
    let term = not(shared_formula(32));
    c.bench_function("nnf/32_copies", |b| {
        b.iter(|| {
            fresh_arena();
            to_nnf(&term)
        })
    });
}

fn bench_subst(c: &mut Criterion) {
    let term = shared_formula(32);
    let map = subst_map([
        ("v1", var_elem("w1")),
        ("v2", var_elem("w2")),
        ("s", set_add(var_set("t"), var_elem("w3"))),
    ]);
    c.bench_function("substitute/32_copies", |b| {
        b.iter(|| {
            fresh_arena();
            substitute(&term, &map)
        })
    });
}

fn bench_finite_search(c: &mut Criterion) {
    // A valid obligation, so the search space is fully enumerated (worst
    // case: no early counter-model exit).
    let ob = Obligation::new("bench_valid")
        .define("r1", member(var_elem("v1"), var_set("s")))
        .define("s1", set_add(var_set("s"), var_elem("v2")))
        .define("r2", member(var_elem("v1"), var_set("s1")))
        .assume(neq(var_elem("v1"), var_elem("v2")))
        .goal(eq(var_bool("r1"), var_bool("r2")));
    let mut group = c.benchmark_group("finite_search");
    group.sample_size(10);
    group.bench_function("valid_exhaustive", |b| {
        let prover = FiniteModelProver::new(Scope::standard());
        b.iter(|| {
            let verdict = prover.prove(&ob);
            assert!(verdict.is_valid());
            verdict
        })
    });
    group.bench_function("counterexample_early_exit", |b| {
        let bogus = Obligation::new("bench_invalid").goal(member(var_elem("v"), var_set("s")));
        let prover = FiniteModelProver::new(Scope::standard());
        b.iter(|| {
            let verdict = prover.prove(&bogus);
            assert!(verdict.is_counterexample());
            verdict
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simplify,
    bench_nnf,
    bench_subst,
    bench_finite_search
);
criterion_main!(benches);
