//! Prover benchmarks: how long verifying commutativity conditions takes, per
//! interface and per back-end (the prover-portfolio ablation from DESIGN.md).
//!
//! These complement the `table_5_8` binary: the binary reproduces the
//! paper's table over the whole catalog; the benches measure representative
//! conditions precisely so regressions in the prover are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semcommute_core::verify::{scope_for, verify_condition};
use semcommute_core::{interface_catalog, ConditionKind};
use semcommute_prover::Portfolio;
use semcommute_spec::InterfaceId;

/// A representative condition per interface: an update/observer pair whose
/// condition is state-dependent (so the finite-model prover really runs).
fn representative(interface: InterfaceId) -> semcommute_core::CommutativityCondition {
    let (first, second) = match interface {
        InterfaceId::Accumulator => ("increase", "read"),
        InterfaceId::Set => ("add", "contains"),
        InterfaceId::Map => ("put", "get"),
        InterfaceId::List => ("addAt", "indexOf"),
    };
    interface_catalog(interface)
        .into_iter()
        .find(|c| {
            c.first.op == first
                && c.second.op == second
                && c.first.recorded
                && c.second.recorded
                && c.kind == ConditionKind::Between
        })
        .expect("representative condition exists")
}

fn bench_condition_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_condition");
    group.sample_size(10);
    for interface in InterfaceId::ALL {
        let condition = representative(interface);
        let prover = Portfolio::new(scope_for(interface, 3));
        group.bench_with_input(
            BenchmarkId::from_parameter(interface),
            &condition,
            |b, condition| {
                b.iter(|| {
                    let report = verify_condition(condition, &prover, 0);
                    assert!(report.verified());
                    report
                })
            },
        );
    }
    group.finish();
}

fn bench_prover_ablation(c: &mut Criterion) {
    // How much does the structural prover save on an obligation it can decide
    // (add/add soundness: (s ∪ {v1}) ∪ {v2} = (s ∪ {v2}) ∪ {v1})?
    let condition = interface_catalog(InterfaceId::Set)
        .into_iter()
        .find(|cond| {
            cond.first.op == "add"
                && !cond.first.recorded
                && cond.second.op == "add"
                && !cond.second.recorded
                && cond.kind == ConditionKind::Before
        })
        .expect("add_/add_ before condition exists");
    let scope = scope_for(InterfaceId::Set, 3);
    let mut group = c.benchmark_group("prover_ablation");
    group.sample_size(20);
    group.bench_function("portfolio", |b| {
        let prover = Portfolio::new(scope.clone());
        b.iter(|| verify_condition(&condition, &prover, 0))
    });
    group.bench_function("finite_model_only", |b| {
        let prover = Portfolio::new(scope.clone()).without_structural();
        b.iter(|| verify_condition(&condition, &prover, 0))
    });
    group.finish();
}

fn bench_sequence_scope(c: &mut Criterion) {
    // Cost of the ArrayList sequence scope — the knob behind the paper's
    // observation that ArrayList dominates verification time.
    let condition = representative(InterfaceId::List);
    let mut group = c.benchmark_group("arraylist_sequence_scope");
    group.sample_size(10);
    for seq_len in [2usize, 3, 4] {
        let prover = Portfolio::new(scope_for(InterfaceId::List, seq_len));
        group.bench_with_input(
            BenchmarkId::from_parameter(seq_len),
            &condition,
            |b, condition| b.iter(|| verify_condition(condition, &prover, 0)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_condition_verification,
    bench_prover_ablation,
    bench_sequence_scope
);
criterion_main!(benches);
