//! Data structure micro-benchmarks: the linked implementations behind the
//! abstract interfaces (ListSet vs HashSet, AssociationList vs HashTable,
//! ArrayList shifting costs).
//!
//! These are not evaluated in the paper (its evaluation is about
//! verification), but they document the concrete substrate this reproduction
//! adds and catch performance regressions in it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semcommute_logic::ElemId;
use semcommute_structures::{
    ArrayList, AssociationList, HashSet, HashTable, ListInterface, ListSet, MapInterface,
    SetInterface,
};

const N: u32 = 1_000;

fn bench_set_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_insert_then_lookup");
    for name in ["ListSet", "HashSet"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| match name {
                "ListSet" => {
                    let mut s = ListSet::new();
                    for i in 1..=N {
                        s.add(ElemId(i));
                    }
                    (1..=N).filter(|&i| s.contains(ElemId(i))).count()
                }
                _ => {
                    let mut s = HashSet::new();
                    for i in 1..=N {
                        s.add(ElemId(i));
                    }
                    (1..=N).filter(|&i| s.contains(ElemId(i))).count()
                }
            })
        });
    }
    group.finish();
}

fn bench_map_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_put_then_get");
    for name in ["AssociationList", "HashTable"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| match name {
                "AssociationList" => {
                    let mut m = AssociationList::new();
                    for i in 1..=N {
                        m.put(ElemId(i), ElemId(i + N));
                    }
                    (1..=N).filter(|&i| m.get(ElemId(i)).is_some()).count()
                }
                _ => {
                    let mut m = HashTable::new();
                    for i in 1..=N {
                        m.put(ElemId(i), ElemId(i + N));
                    }
                    (1..=N).filter(|&i| m.get(ElemId(i)).is_some()).count()
                }
            })
        });
    }
    group.finish();
}

fn bench_array_list_shifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_list");
    group.bench_function("append_then_index_of", |b| {
        b.iter(|| {
            let mut l = ArrayList::new();
            for i in 1..=N {
                l.add_at(l.size(), ElemId(i));
            }
            l.index_of(ElemId(N))
        })
    });
    group.bench_function("front_insertions_shift_everything", |b| {
        b.iter(|| {
            let mut l = ArrayList::new();
            for i in 1..=N {
                l.add_at(0, ElemId(i));
            }
            l.size()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_set_implementations,
    bench_map_implementations,
    bench_array_list_shifting
);
criterion_main!(benches);
