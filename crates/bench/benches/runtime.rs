//! Runtime benchmarks: the paper's motivating use case.
//!
//! * `speculative_vs_coarse` — throughput of commutativity-aware optimistic
//!   transactions against a coarse transaction-scoped lock, on a workload of
//!   mostly-commuting set operations (the Chapter 1 motivation: commuting
//!   operations expose parallelism).
//! * `rollback` — inverse-operation rollback against snapshot (save/restore)
//!   rollback for increasing structure sizes (the Section 1.3 efficiency
//!   claim for inverse operations).
//! * `gatekeeper` — the cost of a dynamic between-condition check itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semcommute_logic::Value;
use semcommute_runtime::{
    AnyStructure, CoarseLockRuntime, CommutativityGatekeeper, InverseRollback, LogEntry,
    OperationLog, SnapshotRollback, SpeculativeRuntime,
};
use semcommute_spec::InterfaceId;

const THREADS: u32 = 4;
const OPS_PER_THREAD: u32 = 64;

/// Simulates the per-operation "work" a real client performs between data
/// structure operations (what makes transaction-length locking costly).
fn think() {
    std::hint::black_box((0..200).fold(0u64, |a, b| a.wrapping_add(b * b)));
}

fn speculative_workload() -> u64 {
    let rt = SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rt = rt.clone();
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let element = Value::elem(t * OPS_PER_THREAD + i + 1);
                    rt.run(8, |txn| {
                        txn.execute("add", std::slice::from_ref(&element))?;
                        think();
                        txn.execute("contains", std::slice::from_ref(&element))?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    rt.stats().commits
}

fn coarse_workload() -> u64 {
    let rt = CoarseLockRuntime::new(AnyStructure::by_name("HashSet").unwrap());
    let committed = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rt = rt.clone();
            let committed = &committed;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let element = Value::elem(t * OPS_PER_THREAD + i + 1);
                    rt.run_transaction(|txn| {
                        txn.execute("add", std::slice::from_ref(&element)).unwrap();
                        think();
                        txn.execute("contains", std::slice::from_ref(&element))
                            .unwrap();
                    });
                    committed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    committed.load(std::sync::atomic::Ordering::Relaxed)
}

fn bench_speculative_vs_coarse(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculative_vs_coarse");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("speculative_commutativity", |b| {
        b.iter(|| {
            let commits = speculative_workload();
            assert_eq!(commits, u64::from(THREADS * OPS_PER_THREAD));
        })
    });
    group.bench_function("coarse_lock", |b| {
        b.iter(|| {
            let commits = coarse_workload();
            assert_eq!(commits, u64::from(THREADS * OPS_PER_THREAD));
        })
    });
    group.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback");
    group.sample_size(20);
    for size in [100u32, 1_000, 10_000] {
        // A structure with `size` elements in which a transaction performed
        // two updates that must be rolled back.
        let build = |size: u32| {
            let mut s = AnyStructure::by_name("HashSet").unwrap();
            for i in 1..=size {
                s.apply("add", &[Value::elem(i)]).unwrap();
            }
            s
        };
        group.bench_with_input(BenchmarkId::new("inverse", size), &size, |b, &size| {
            let rollback = InverseRollback::new(InterfaceId::Set);
            b.iter_batched(
                || {
                    let mut s = build(size);
                    let r1 = s.apply("add", &[Value::elem(size + 1)]).unwrap();
                    let r2 = s.apply("remove", &[Value::elem(1)]).unwrap();
                    // Inverses read arguments and results only; no pre-state
                    // needs to be recorded for rollback.
                    let entries = vec![
                        LogEntry {
                            txn: 1,
                            op: "add".into(),
                            args: vec![Value::elem(size + 1)],
                            result: r1,
                            pre_state: None,
                        },
                        LogEntry {
                            txn: 1,
                            op: "remove".into(),
                            args: vec![Value::elem(1)],
                            result: r2,
                            pre_state: None,
                        },
                    ];
                    (s, entries)
                },
                |(mut s, entries)| rollback.undo(&mut s, &entries).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("snapshot", size), &size, |b, &size| {
            b.iter_batched(
                || {
                    let s = build(size);
                    // The snapshot must be taken *before* the speculative
                    // updates — that cost is part of this strategy.
                    (s, ())
                },
                |(mut s, ())| {
                    let snapshot = SnapshotRollback::capture(&s);
                    s.apply("add", &[Value::elem(size + 1)]).unwrap();
                    s.apply("remove", &[Value::elem(1)]).unwrap();
                    snapshot.restore().unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_gatekeeper_check(c: &mut Criterion) {
    let gatekeeper = CommutativityGatekeeper::new(InterfaceId::Set);
    let mut log = OperationLog::new();
    let mut structure = AnyStructure::by_name("HashSet").unwrap();
    for i in 1..=32u32 {
        let result = structure.apply("add", &[Value::elem(i)]).unwrap();
        // `add`-first between conditions test `r1`, never `s1`, so no
        // pre-state projection is required for these entries.
        log.record(LogEntry {
            txn: u64::from(i % 4),
            op: "add".into(),
            args: vec![Value::elem(i)],
            result,
            pre_state: None,
        });
    }
    c.bench_function("gatekeeper_admit_against_32_entries", |b| {
        b.iter(|| gatekeeper.admit(&log, 99, "add", &[Value::elem(1000)]))
    });
}

criterion_group!(
    benches,
    bench_speculative_vs_coarse,
    bench_rollback,
    bench_gatekeeper_check
);
criterion_main!(benches);
