//! Evaluator-backend microbenchmarks: the same whole-space candidate scan
//! run three ways — the tree-walk reference evaluator, the scalar bytecode
//! executor, and the batched 256-lane block executor — on a Set-shaped and
//! an ArrayList-shaped obligation drawn from the real catalog.
//!
//! The full-catalog wall numbers live in `BENCH_pr6.json` (produced by the
//! `perf_json` binary with `--evaluator both`); these benches isolate the
//! per-candidate evaluation cost from scheduling, verdict caching, and
//! obligation generation, so a regression in lowering or in the block
//! executor is visible on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use semcommute_core::template::testing_methods;
use semcommute_core::vcgen::generate_obligations;
use semcommute_core::verify::scope_for;
use semcommute_core::{interface_catalog, ConditionKind};
use semcommute_prover::bytecode::{BlockEvent, Program, LANES};
use semcommute_prover::compiled::CompiledObligation;
use semcommute_prover::space::{BlockBuf, InputSpace};
use semcommute_prover::{Obligation, Scope};
use semcommute_spec::InterfaceId;

/// A state-dependent update/observer obligation from the named interface's
/// catalog: `add`/`contains` for Set, `addAt`/`indexOf` for ArrayList. The
/// soundness leg is used — its hypothesis interleaving and collection work
/// make it the representative load, not a boolean-only special case.
fn representative(interface: InterfaceId, first: &str, second: &str) -> Obligation {
    let condition = interface_catalog(interface)
        .into_iter()
        .find(|c| {
            c.first.op == first
                && c.second.op == second
                && c.first.recorded
                && c.second.recorded
                && c.kind == ConditionKind::Between
        })
        .expect("representative condition exists");
    let (soundness, _) = testing_methods(&condition, 0);
    generate_obligations(&soundness)
        .expect("obligation generation succeeds")
        .into_iter()
        .next()
        .expect("the soundness method yields an obligation")
}

/// One prepared scan: the enumeration space plus both compiled forms.
struct Prepared {
    space: InputSpace,
    compiled: CompiledObligation,
    program: Program,
}

fn prepare(interface: InterfaceId, first: &str, second: &str) -> Prepared {
    let ob = representative(interface, first, second);
    // The tree walk stays the oracle regardless of the scope flag; pin it
    // off so the scope describes only the enumeration.
    let scope = Scope {
        bytecode: false,
        ..scope_for(interface, 3)
    };
    let space = InputSpace::from_obligation(&ob, scope);
    let compiled = CompiledObligation::compile(&ob, &space.var_order());
    let program = Program::lower(&compiled);
    Prepared {
        space,
        compiled,
        program,
    }
}

/// Whole-space scan under the tree-walk evaluator; returns candidates seen.
fn tree_scan(p: &Prepared) -> u64 {
    let mut it = p.space.iter();
    let mut env = p.compiled.env();
    let mut buf = Vec::new();
    let mut seen = 0u64;
    while it.next_values(&mut buf) {
        match p.compiled.check(&mut buf, &mut env) {
            Ok(None) => seen += 1,
            Ok(Some(())) | Err(_) => panic!("the representative obligations are valid"),
        }
    }
    seen
}

/// Whole-space scan under the scalar bytecode executor.
fn scalar_scan(p: &Prepared) -> u64 {
    let mut it = p.space.iter();
    let mut exec = p.program.scalar_exec();
    let mut buf = Vec::new();
    let mut seen = 0u64;
    while it.next_values(&mut buf) {
        match p.program.check(&mut buf, &mut exec) {
            Ok(None) => seen += 1,
            Ok(Some(())) | Err(_) => panic!("the representative obligations are valid"),
        }
    }
    seen
}

/// Whole-space scan under the batched 256-lane block executor.
fn block_scan(p: &Prepared) -> u64 {
    let mut it = p.space.iter();
    let mut block = BlockBuf::new();
    let mut exec = p.program.block_exec();
    let mut seen = 0u64;
    loop {
        let lanes = it.next_block(LANES, &mut block);
        if lanes == 0 {
            return seen;
        }
        match p.program.run_block(&block, &mut exec) {
            None => seen += lanes as u64,
            Some(BlockEvent::Counterexample(_)) | Some(BlockEvent::Error(_, _)) => {
                panic!("the representative obligations are valid")
            }
        }
    }
}

fn bench_evaluators(c: &mut Criterion) {
    let workloads = [
        (
            "set_add_contains",
            prepare(InterfaceId::Set, "add", "contains"),
        ),
        (
            "list_addAt_indexOf",
            prepare(InterfaceId::List, "addAt", "indexOf"),
        ),
    ];
    let mut group = c.benchmark_group("candidate_scan");
    group.sample_size(10);
    for (name, prepared) in &workloads {
        // All three scans must agree on the candidate count, or the bench
        // compares different workloads.
        let expected = tree_scan(prepared);
        assert_eq!(scalar_scan(prepared), expected);
        assert_eq!(block_scan(prepared), expected);

        group.bench_with_input(BenchmarkId::new("tree", name), prepared, |b, p| {
            b.iter(|| tree_scan(p))
        });
        group.bench_with_input(BenchmarkId::new("bytecode", name), prepared, |b, p| {
            b.iter(|| scalar_scan(p))
        });
        group.bench_with_input(BenchmarkId::new("batched", name), prepared, |b, p| {
            b.iter(|| block_scan(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluators);
criterion_main!(benches);
