//! Shared helpers for the `semcommute` benchmark harness.
//!
//! The `table_5_*` binaries in `src/bin/` regenerate the paper's evaluation
//! tables (run them with `cargo run -p semcommute-bench --release --bin
//! table_5_8`); the Criterion benches in `benches/` measure prover, runtime,
//! and data structure performance, including the ablations called out in
//! `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seed_runtime;

use semcommute_core::report;
use semcommute_core::verify::{CatalogReport, InterfaceReport, VerifyOptions};

/// Prints a table header in a consistent style.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(title.len()));
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Parses an `--orbit` flag value: `on` enables the orbit-canonical
/// enumerator, `off` selects the unreduced oracle enumerator.
pub fn parse_orbit(value: &str) -> Option<bool> {
    match value {
        "on" => Some(true),
        "off" => Some(false),
        _ => None,
    }
}

/// Parses an `--evaluator` flag value: `bytecode` selects the batched
/// register-bytecode backend, `tree` the tree-walk reference evaluator.
pub fn parse_evaluator(value: &str) -> Option<bool> {
    match value {
        "bytecode" => Some(true),
        "tree" => Some(false),
        _ => None,
    }
}

/// Parses the common command-line options of the table binaries: an optional
/// per-interface condition limit, `--seq-len N`, `--threads N`,
/// `--split-threshold N` (unreduced-space size above which a model search is
/// split into stealable range tasks), `--orbit {on,off}` (orbit-canonical
/// vs. unreduced enumeration), and `--evaluator {tree,bytecode}` (tree-walk
/// reference evaluator vs. the batched bytecode backend).
pub fn parse_options() -> VerifyOptions {
    let mut options = VerifyOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seq-len" => {
                options.seq_len = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seq-len needs a number");
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--split-threshold" => {
                options.split_threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--split-threshold needs a number");
            }
            "--orbit" => {
                options.orbit = args
                    .next()
                    .as_deref()
                    .and_then(parse_orbit)
                    .expect("--orbit needs `on` or `off`");
            }
            "--evaluator" => {
                options.bytecode = args
                    .next()
                    .as_deref()
                    .and_then(parse_evaluator)
                    .expect("--evaluator needs `tree` or `bytecode`");
            }
            other => options.limit = Some(other.parse().expect("numeric limit expected")),
        }
    }
    options
}

/// Runs the full verification (as `table_5_8` needs) and returns the
/// per-interface reports. With `options.threads > 1` all interfaces'
/// obligations share one work-stealing scheduler (see
/// [`semcommute_core::verify::verify_catalog`]).
pub fn run_full_verification(options: &VerifyOptions) -> Vec<InterfaceReport> {
    semcommute_core::verify::verify_all(options)
}

/// Runs the full verification and returns the catalog report, including the
/// obligation scheduler's counters and the measured wall-clock.
pub fn run_catalog_verification(options: &VerifyOptions) -> CatalogReport {
    semcommute_core::verify::verify_catalog(options)
}

/// Prints the verification-time table from a set of reports.
pub fn print_verification_table(reports: &[InterfaceReport]) {
    println!("{}", report::verification_time_table(reports));
}

/// Renders a machine-readable performance report as JSON (hand-rolled — the
/// workspace is offline and carries no serde). One object per interface with
/// busy time, throughput, and prover-work counters, plus run metadata and
/// the obligation scheduler's counters, so future changes can track the perf
/// trajectory in committed `BENCH_*.json` files.
///
/// Per-interface times are reported as `busy_s`: the summed proof time of
/// the interface's obligations. In a scheduled run (`options.threads > 1`)
/// interfaces interleave on the same workers, so their busy times **overlap
/// in wall-clock and sum to more than `total.wall_s`** — earlier snapshots
/// labeled this field `wall_s`, which made one interface look slower than
/// the whole run. The only wall-clock figure is `total.wall_s`, the
/// measured span of the run; the `scheduler` section's
/// `max_obligation_wall_s` / `p99_obligation_wall_s` skew metrics and the
/// `splits` / `subranges` counters show how evenly that span was filled.
pub fn perf_report_json(catalog: &CatalogReport, options: &VerifyOptions) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let reports = &catalog.interfaces;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"options\": {{\"threads\": {}, \"split_threshold\": {}, \"seq_len\": {}, \"limit\": {}, \"orbit\": {}, \"evaluator\": \"{}\"}},\n",
        options.threads,
        options.split_threshold,
        options.seq_len,
        options
            .limit
            .map_or("null".to_string(), |l| l.to_string()),
        options.orbit,
        if options.bytecode { "bytecode" } else { "tree" }
    ));
    out.push_str("  \"interfaces\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let busy = r.elapsed.as_secs_f64();
        let methods = r.method_count();
        let throughput = if busy > 0.0 {
            methods as f64 / busy
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{\"interface\": \"{}\", \"conditions\": {}, \"methods\": {}, \"verified\": {}, \
             \"busy_s\": {:.6}, \"obligations_per_busy_sec\": {:.2}, \"models_checked\": {}, \
             \"orbits_pruned\": {}, \"cache_hits\": {}}}{}\n",
            esc(&r.interface.to_string()),
            r.total(),
            methods,
            r.verified_count(),
            busy,
            throughput,
            r.models_checked(),
            r.orbits_pruned(),
            r.cache_hits(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    if let Some(s) = &catalog.scheduler {
        out.push_str(&format!(
            "  \"scheduler\": {{\"submitted\": {}, \"unique\": {}, \"proved\": {}, \
             \"cache_hits\": {}, \"skipped\": {}, \"steals\": {}, \"stolen_tasks\": {}, \
             \"splits\": {}, \"subranges\": {}, \"max_obligation_wall_s\": {:.6}, \
             \"p99_obligation_wall_s\": {:.6}, \"errors\": {}}},\n",
            s.submitted,
            s.unique,
            s.proved,
            s.cache_hits,
            s.skipped,
            s.steals,
            s.stolen_tasks,
            s.splits,
            s.subranges,
            s.max_obligation_wall.as_secs_f64(),
            s.p99_obligation_wall.as_secs_f64(),
            s.errors.len(),
        ));
    }
    let total_wall = catalog.elapsed.as_secs_f64();
    let total_methods: usize = reports.iter().map(|r| r.method_count()).sum();
    let models = catalog.models_checked();
    out.push_str(&format!(
        "  \"total\": {{\"methods\": {}, \"wall_s\": {:.6}, \"obligations_per_sec\": {:.2}, \
         \"models_checked\": {}, \"orbits_pruned\": {}, \"batches\": {}, \
         \"batch_fallbacks\": {}, \"instrs_per_candidate\": {:.2}}}\n",
        total_methods,
        total_wall,
        if total_wall > 0.0 {
            total_methods as f64 / total_wall
        } else {
            0.0
        },
        models,
        catalog.orbits_pruned(),
        catalog.batches(),
        catalog.batch_fallbacks(),
        if models > 0 {
            catalog.instrs_executed() as f64 / models as f64
        } else {
            0.0
        }
    ));
    out.push('}');
    out
}

/// Renders several catalog runs (e.g. the same build measured at different
/// scheduler thread counts) as one JSON document: `{"runs": [<report>, …]}`
/// with each entry in the [`perf_report_json`] shape. `BENCH_pr3.json` and
/// later snapshots use this so one committed file carries the sequential and
/// the scheduled measurement of the same build.
pub fn perf_report_json_runs(runs: &[(VerifyOptions, CatalogReport)]) -> String {
    let mut out = String::from("{\n\"runs\": [\n");
    for (i, (options, catalog)) in runs.iter().enumerate() {
        out.push_str(&perf_report_json(catalog, options));
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_verification_produces_reports_for_every_interface() {
        let reports = run_full_verification(&VerifyOptions::quick(3));
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.verified_count(), r.total());
        }
    }

    #[test]
    fn perf_report_json_is_well_formed() {
        let options = VerifyOptions::quick(2);
        let catalog = run_catalog_verification(&options);
        assert!(catalog.scheduler.is_some(), "quick options are scheduled");
        let json = perf_report_json(&catalog, &options);
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"options\"",
            "\"orbit\"",
            "\"split_threshold\"",
            "\"interfaces\"",
            "\"busy_s\"",
            "\"obligations_per_busy_sec\"",
            "\"models_checked\"",
            "\"orbits_pruned\"",
            "\"cache_hits\"",
            "\"scheduler\"",
            "\"submitted\"",
            "\"splits\"",
            "\"subranges\"",
            "\"max_obligation_wall_s\"",
            "\"p99_obligation_wall_s\"",
            "\"total\"",
            "\"wall_s\"",
            "\"evaluator\"",
            "\"batches\"",
            "\"batch_fallbacks\"",
            "\"instrs_per_candidate\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Braces and brackets balance (cheap well-formedness check).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn multi_run_report_wraps_each_run() {
        let options = VerifyOptions::quick(1);
        let catalog = run_catalog_verification(&options);
        let json = perf_report_json_runs(&[
            (options.clone(), catalog.clone()),
            (options.clone(), catalog),
        ]);
        assert!(json.contains("\"runs\""));
        assert_eq!(json.matches("\"interfaces\"").count(), 2);
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn sequential_catalog_report_has_no_scheduler_section() {
        let options = VerifyOptions {
            threads: 1,
            ..VerifyOptions::quick(2)
        };
        let catalog = run_catalog_verification(&options);
        assert!(catalog.scheduler.is_none());
        assert!(!perf_report_json(&catalog, &options).contains("\"scheduler\""));
    }
}
