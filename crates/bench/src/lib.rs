//! Shared helpers for the `semcommute` benchmark harness.
//!
//! The `table_5_*` binaries in `src/bin/` regenerate the paper's evaluation
//! tables (run them with `cargo run -p semcommute-bench --release --bin
//! table_5_8`); the Criterion benches in `benches/` measure prover, runtime,
//! and data structure performance, including the ablations called out in
//! `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use semcommute_core::report;
use semcommute_core::verify::{verify_interface, InterfaceReport, VerifyOptions};
use semcommute_spec::InterfaceId;

/// Prints a table header in a consistent style.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(title.len()));
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Parses the common command-line options of the table binaries: an optional
/// per-interface condition limit and `--seq-len N`.
pub fn parse_options() -> VerifyOptions {
    let mut options = VerifyOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seq-len" => {
                options.seq_len = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seq-len needs a number");
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            other => options.limit = Some(other.parse().expect("numeric limit expected")),
        }
    }
    options
}

/// Runs the full verification (as `table_5_8` needs) and returns the
/// per-interface reports.
pub fn run_full_verification(options: &VerifyOptions) -> Vec<InterfaceReport> {
    InterfaceId::ALL
        .into_iter()
        .map(|id| verify_interface(id, options))
        .collect()
}

/// Prints the verification-time table from a set of reports.
pub fn print_verification_table(reports: &[InterfaceReport]) {
    println!("{}", report::verification_time_table(reports));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_verification_produces_reports_for_every_interface() {
        let reports = run_full_verification(&VerifyOptions::quick(3));
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.verified_count(), r.total());
        }
    }
}
