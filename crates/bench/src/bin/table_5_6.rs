//! Table 5.6: between commutativity conditions on ArrayList.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.6 — Between Commutativity Conditions on ArrayList");
    println!(
        "{}",
        report::condition_table(InterfaceId::List, ConditionKind::Between)
    );
}
