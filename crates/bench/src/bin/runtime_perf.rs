//! Runtime workload benchmark: speculative vs coarse-lock vs the seed engine.
//!
//! Drives mixed set transactions (adds, membership tests, removes) through
//! three engines — the production [`SpeculativeRuntime`], the
//! [`CoarseLockRuntime`] baseline, and the seed-faithful reference engine
//! ([`semcommute_bench::seed_runtime`]) — at several thread counts and two
//! key distributions:
//!
//! * `uniform`: keys drawn from a large domain, so almost all transactions
//!   commute (the paper's motivating case: commutativity exposes
//!   parallelism);
//! * `skewed`: half the operations hit a handful of hot keys, forcing real
//!   conflicts, aborts, and inverse-driven rollback.
//!
//! The structure is pre-populated so the seed engine's per-operation
//! abstract-state clone has a realistic structure size to pay for. The seed
//! engine runs a reduced operation count (it is quadratic in practice) and
//! is compared on *per-committed-operation* time.
//!
//! A fourth axis isolates the **admission backend** (`--admit`): compiled
//! register programs ([`AdmitBackend::Bytecode`]) versus the `Model`-building
//! interpreter ([`AdmitBackend::Interp`]). At a single thread the log would
//! normally be empty when each transaction runs, so the admission legs pin a
//! few background transactions open for the whole measured run — their logged
//! entries are what every workload operation must be admitted against, which
//! puts the two-phase admission path itself on the critical path. The pinned
//! scripts include `contains` probes on hot prefilled keys so the skewed
//! workload also produces genuine conflict verdicts, and a small prefill
//! keeps copy-on-write detach cost from swamping the admission cost being
//! compared. Both backends run the identical deterministic workload; their
//! commit/abort/conflict counts must be identical (the diff harnesses prove
//! the verdicts agree) so the wall-time ratio *is* the per-op ratio.
//!
//! A fifth axis is the **snapshot-heavy leg** (PR 9): transactions whose
//! operations require a pre-state projection retain a clone of the tracked
//! mirror in every published log entry, so the next mirror mutation pays the
//! representation's detach cost. Under the old flat (eager) collections that
//! detach re-cloned the whole collection — `O(n)` per mutation while any
//! snapshot is live; under the tree-shaped persistent values it path-copies
//! `O(log n)` nodes. Two leg families measure this:
//!
//! * `mirror_flat` / `mirror_tree`: a paired microharness driving the
//!   identical deterministic hot-key-skew "retain a snapshot, then mutate"
//!   loop against a bench-local reconstruction of the flat representation
//!   (`Arc<BTreeSet>` + `make_mut`, the PR 3 mirror) and against the tree
//!   [`PSet`]. The flat loop omits the `Value` enum wrapper and op dispatch
//!   the real runtime pays, so its per-op time is a *lower bound* on the
//!   flat representation's true cost — the measured ratio understates the
//!   tree's advantage.
//! * `snapshot_runtime`: the real end-to-end path — a [`SpeculativeRuntime`]
//!   on a large prefilled set driving transactions whose `size` probes
//!   require pre-state projections interleaved with hot-key mutations.
//!
//! A sixth axis is the **contention-management leg family** (PR 10), which
//! measures the abort-rate-driven coarse-lock fallback
//! ([`semcommute_runtime::contention`]) from both sides:
//!
//! * `hot` legs drive a deterministic high-contention workload — every
//!   admission attempt is forced into conflict on a fixed ordinal period by
//!   an attached [`FaultPlan`], so the measured contention is identical on
//!   every host — through three engines: the adaptive runtime
//!   (`fallback=on`, which degrades to the coarse section and stays there),
//!   the non-adaptive runtime (`fallback=off`, which pays the full
//!   speculate-abort-retry cost for every transaction), and the coarse-lock
//!   baseline (the cost floor the degraded path borrows).
//! * fallback **parity** legs rerun the classic uniform/skewed workloads
//!   with the fallback explicitly on and explicitly off: their abort rates
//!   sit far below the degrade threshold, so the mode machinery must never
//!   fire (`mode_switches == 0`) and its bookkeeping overhead must stay in
//!   the noise (per-op parity within 10% at threads=1).
//!
//! Usage: `runtime_perf [--ops N] [--prefill N] [--seed-ops N]
//! [--admit bytecode|interp|both|off] [--snap-ops N] [--snap-prefill N]
//! [--json PATH]`.
//! With the defaults the speculative and coarse legs together drive several
//! million mixed operations across the configurations. Emits the
//! measurements as JSON
//! (`BENCH_pr10.json` in CI) with an `acceptance` section recording the
//! single-core criterion: speculative per-op overhead at threads=1 must be
//! ≥ 5× lower than the seed engine's — when both admission backends
//! run, compiled admission must be at most 0.5× the interpreter's per-op
//! time with identical counts — the tree representation must beat the
//! flat mirror's per-op snapshot-loop cost by ≥ 2× with identical final
//! contents — and under forced contention the adaptive runtime must land
//! near the coarse baseline's per-op cost while the non-adaptive runtime
//! loses to it by a wide margin.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use semcommute_bench::seed_runtime::SeedRuntime;
use semcommute_logic::{ElemId, PSet, Value};
use semcommute_runtime::{
    AdmissionError, AdmitBackend, AnyStructure, CoarseLockRuntime, CommutativityGatekeeper,
    FallbackOptions, FaultPlan, LogEntry, RuntimeOptions, SpeculativeRuntime, TxnError,
};
use semcommute_spec::InterfaceId;

/// Deterministic xorshift64* — reproducible workloads, no external crates.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Uniform,
    Skewed,
    /// Every key drawn from a tiny domain — the contention legs' workload.
    /// Real aborts need concurrent overlap, so the `hot` legs additionally
    /// force conflicts on a fixed ordinal period to make the measured
    /// contention host-independent.
    Hot,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Skewed => "skewed",
            Workload::Hot => "hot",
        }
    }

    /// One transaction script: two operations, mixed kinds.
    fn transaction(self, rng: &mut XorShift, prefill: u64) -> Vec<(&'static str, Vec<Value>)> {
        let key = |rng: &mut XorShift| {
            let k = match self {
                Workload::Uniform => rng.below(prefill * 4),
                // Half the traffic on 16 hot keys.
                Workload::Skewed => {
                    if rng.below(2) == 0 {
                        rng.below(16)
                    } else {
                        rng.below(prefill * 4)
                    }
                }
                // All the traffic on 8 hot keys.
                Workload::Hot => rng.below(8),
            };
            Value::elem(k as u32 + 1)
        };
        (0..2)
            .map(|_| match rng.below(10) {
                0..=4 => ("add", vec![key(rng)]),
                5 | 6 => ("contains", vec![key(rng)]),
                _ => ("remove", vec![key(rng)]),
            })
            .collect()
    }
}

struct Measurement {
    engine: &'static str,
    workload: &'static str,
    /// Which admission backend the leg ran under: `"default"` for the classic
    /// grid (whatever `SEMCOMMUTE_ADMIT` selects), the backend name for the
    /// dedicated admission legs.
    admit: &'static str,
    /// Which fallback configuration the leg ran under: `"default"` for the
    /// classic grid (whatever `SEMCOMMUTE_FALLBACK` selects), `"on"` / `"off"`
    /// for the dedicated contention legs, `"n/a"` for non-speculative
    /// engines.
    fallback: &'static str,
    threads: u64,
    target_ops: u64,
    committed_ops: u64,
    commits: u64,
    aborts: u64,
    conflicts: u64,
    /// Commits that ran through the degraded coarse section (speculative
    /// legs only).
    degraded_commits: u64,
    /// Execution-mode transitions applied by the contention state machine
    /// (speculative legs only).
    mode_switches: u64,
    /// Operations held open by pinned background transactions for the whole
    /// measured run (0 for the classic legs).
    pinned_ops: u64,
    wall_s: f64,
}

impl Measurement {
    fn committed_ops_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.committed_ops as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn per_op_ns(&self) -> f64 {
        if self.committed_ops > 0 {
            self.wall_s * 1e9 / self.committed_ops as f64
        } else {
            f64::INFINITY
        }
    }

    fn json(&self) -> String {
        format!(
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"admit\": \"{}\", \
             \"fallback\": \"{}\", \"threads\": {}, \
             \"target_ops\": {}, \"committed_ops\": {}, \"commits\": {}, \"aborts\": {}, \
             \"conflicts\": {}, \"degraded_commits\": {}, \"mode_switches\": {}, \
             \"pinned_ops\": {}, \"wall_s\": {:.6}, \
             \"committed_ops_per_s\": {:.1}, \
             \"per_op_ns\": {:.1}}}",
            self.engine,
            self.workload,
            self.admit,
            self.fallback,
            self.threads,
            self.target_ops,
            self.committed_ops,
            self.commits,
            self.aborts,
            self.conflicts,
            self.degraded_commits,
            self.mode_switches,
            self.pinned_ops,
            self.wall_s,
            self.committed_ops_per_s(),
            self.per_op_ns(),
        )
    }
}

/// Runs a leg `reps` times and keeps the fastest run. The acceptance
/// criteria pin tight wall-clock ratios (parity within 10%); on a busy host
/// a single sample is too noisy for that, and for a deterministic workload
/// the minimum is the standard noise-robust estimate of the true cost.
fn best_of(reps: u32, mut leg: impl FnMut() -> Measurement) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..reps {
        let m = leg();
        if best.as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
            best = Some(m);
        }
    }
    best.expect("at least one rep")
}

fn prefilled(prefill: u64) -> AnyStructure {
    let mut s = AnyStructure::by_name("HashSet").unwrap();
    for k in 0..prefill {
        s.apply("add", &[Value::elem(k as u32 + 1)]).unwrap();
    }
    s
}

fn run_speculative(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    run_speculative_leg(
        workload,
        threads,
        ops,
        prefill,
        "default",
        RuntimeOptions::default(),
        None,
    )
}

/// The speculative leg with explicit [`RuntimeOptions`] — the contention
/// legs route through here with the fallback pinned on or off and, for the
/// `hot` legs, a [`FaultPlan`] forcing an admission conflict on every
/// `conflict_period`-th operation ordinal (deterministic contention that
/// does not depend on the host's scheduler).
fn run_speculative_leg(
    workload: Workload,
    threads: u64,
    ops: u64,
    prefill: u64,
    fallback: &'static str,
    mut options: RuntimeOptions,
    conflict_period: Option<u64>,
) -> Measurement {
    if let Some(period) = conflict_period {
        let plan = FaultPlan::new();
        plan.force_conflict_every(period);
        options.faults = Some(Arc::new(plan));
    }
    let rt = SpeculativeRuntime::with_options(prefilled(prefill), options);
    let per_thread = ops / threads / 2; // two ops per transaction
    let committed_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let committed_ops = &committed_ops;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    let done = rt.run(1_000, |txn| {
                        for (op, args) in &script {
                            txn.execute(op, args)?;
                        }
                        Ok(())
                    });
                    match done {
                        Ok(()) => {
                            committed_ops.fetch_add(script.len() as u64, Ordering::Relaxed);
                        }
                        Err(TxnError::RetriesExhausted(_)) => {}
                        Err(e) => panic!("speculative workload failed: {e}"),
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    rt.check_invariants()
        .expect("invariants hold after the run");
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.commits + stats.aborts);
    Measurement {
        engine: "speculative",
        workload: workload.name(),
        admit: "default",
        fallback,
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: committed_ops.load(Ordering::Relaxed),
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.conflicts,
        degraded_commits: stats.degraded_commits,
        mode_switches: stats.mode_switches,
        pinned_ops: 0,
        wall_s,
    }
}

fn run_coarse(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    let rt = CoarseLockRuntime::new(prefilled(prefill));
    let per_thread = ops / threads / 2;
    let committed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let committed = &committed;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    rt.run_transaction(|txn| {
                        for (op, args) in &script {
                            txn.execute(op, args).unwrap();
                        }
                    });
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let commits = committed.load(Ordering::Relaxed);
    Measurement {
        engine: "coarse_lock",
        workload: workload.name(),
        admit: "default",
        fallback: "n/a",
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: commits * 2,
        commits,
        aborts: 0,
        conflicts: 0,
        degraded_commits: 0,
        mode_switches: 0,
        pinned_ops: 0,
        wall_s,
    }
}

fn run_seed(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    let rt = SeedRuntime::new(prefilled(prefill));
    let per_thread = ops / threads / 2;
    let next_txn = AtomicU64::new(1);
    let committed_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let next_txn = &next_txn;
            let committed_ops = &committed_ops;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    let txn = next_txn.fetch_add(1, Ordering::Relaxed);
                    if rt.run_transaction(txn, &script, 1_000) {
                        committed_ops.fetch_add(script.len() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let stats = rt.stats();
    Measurement {
        engine: "seed",
        workload: workload.name(),
        admit: "default",
        fallback: "n/a",
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: committed_ops.load(Ordering::Relaxed),
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.aborts,
        degraded_commits: 0,
        mode_switches: 0,
        pinned_ops: 0,
        wall_s,
    }
}

fn admit_label(backend: AdmitBackend) -> &'static str {
    match backend {
        AdmitBackend::Bytecode => "bytecode",
        AdmitBackend::Interp => "interp",
    }
}

/// The dedicated admission leg: a single measured thread, a small prefill
/// (so copy-on-write detach cost stays off the critical path), and three
/// *pinned* background transactions whose fifteen logged operations every
/// measured operation must be admitted against. The pinned scripts touch
/// reserved keys far outside the workload's domain (so the well-formed
/// verdict is "commutes") plus one `contains` probe each on a hot prefilled
/// key (so skewed traffic earns genuine conflict verdicts and exercises the
/// retry/abort path). The workload is deterministic and identical across
/// backends; only the admission evaluator differs.
fn run_admission(workload: Workload, backend: AdmitBackend, ops: u64, prefill: u64) -> Measurement {
    // The fallback must be pinned off here: the pinned background
    // transactions hold the mode gate's shared side for the entire measured
    // run, so an abort-rate-triggered degrade (the skewed leg aborts half
    // its traffic by design) would wait forever for readers that never
    // leave. Long-lived open transactions and the coarse fallback are
    // mutually exclusive by construction — see the contention module docs.
    let rt = SpeculativeRuntime::with_options(
        prefilled(prefill),
        RuntimeOptions {
            backend,
            fallback: FallbackOptions::off(),
            ..RuntimeOptions::default()
        },
    );

    // Pin the background transactions open for the whole measured run. The
    // entry count is deliberately large enough (120) that admission checks —
    // not begin/commit bookkeeping — dominate the measured wall time.
    let base = (prefill * 100) as u32;
    let mut pinned = Vec::new();
    let mut pinned_ops = 0u64;
    for t in 0..20u32 {
        let mut txn = rt.begin();
        let reserved = |i: u32| Value::elem(base + t * 10 + i);
        let script = [
            ("add", vec![reserved(0)]),
            ("remove", vec![reserved(1)]),
            ("contains", vec![reserved(2)]),
            // A hot prefilled key: `contains` records `r1 = true`, which is
            // exactly what the between conditions for (contains, add/remove)
            // consult when the workload later hits the same key.
            ("contains", vec![Value::elem(t % 3 + 1)]),
            ("add", vec![reserved(3)]),
            ("remove", vec![reserved(4)]),
        ];
        for (op, args) in &script {
            txn.execute(op, args)
                .expect("pinned setup operations admit against each other");
            pinned_ops += 1;
        }
        pinned.push(txn);
    }

    let txns = ops / 2; // two ops per transaction
    let mut committed_ops = 0u64;
    let mut rng = XorShift::new(0xad31_7bad ^ ops);
    let start = Instant::now();
    for _ in 0..txns {
        let script = workload.transaction(&mut rng, prefill);
        // Conflicts against a pinned transaction do not resolve on retry, so
        // a tight retry budget keeps the leg honest: one retry, then abort.
        let done = rt.run(2, |txn| {
            for (op, args) in &script {
                txn.execute(op, args)?;
            }
            Ok(())
        });
        match done {
            Ok(()) => committed_ops += script.len() as u64,
            Err(TxnError::RetriesExhausted(_)) => {}
            Err(e) => panic!("admission workload failed: {e}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    for txn in pinned {
        txn.abort();
    }
    rt.check_invariants()
        .expect("invariants hold after the run");
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.commits + stats.aborts);
    Measurement {
        engine: "speculative",
        workload: workload.name(),
        admit: admit_label(backend),
        fallback: "off",
        threads: 1,
        target_ops: txns * 2,
        committed_ops,
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.conflicts,
        degraded_commits: stats.degraded_commits,
        mode_switches: stats.mode_switches,
        pinned_ops,
        wall_s,
    }
}

/// The admission-only microbenchmark: drives the gatekeeper's indexed check
/// path directly — the exact code the executor's hot loop runs per (logged
/// entry, incoming operation) pair — over a log shaped like
/// [`run_admission`]'s pinned transactions and incoming operations drawn
/// from the same workload distributions. No structure, no publish, no
/// commit: the measured wall time is admission evaluation alone, so the
/// per-check ratio between the two backends is the number the acceptance
/// criterion pins. Every check runs (no conflict early-exit), so both
/// backends perform the identical check sequence; `commits` counts admitted
/// checks, `conflicts` conflict verdicts, `aborts` evaluation errors
/// (expected 0).
fn run_gatekeeper(
    workload: Workload,
    backend: AdmitBackend,
    checks: u64,
    prefill: u64,
) -> Measurement {
    let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);

    // The same entry shape `run_admission`'s pinned transactions publish,
    // with the results the runtime would record — including the projected
    // pre-state for operations whose conditions read `s1`, exactly as the
    // executor attaches it at publish time.
    let pre = prefilled(prefill).abstract_state().to_value();
    let base = (prefill * 100) as u32;
    let mut entries: Vec<(u16, LogEntry)> = Vec::new();
    for t in 0..20u32 {
        let reserved = |i: u32| Value::elem(base + t * 10 + i);
        let shaped = [
            ("add", reserved(0), Value::Bool(true)),
            ("remove", reserved(1), Value::Bool(false)),
            ("contains", reserved(2), Value::Bool(false)),
            ("contains", Value::elem(t % 3 + 1), Value::Bool(true)),
            ("add", reserved(3), Value::Bool(true)),
            ("remove", reserved(4), Value::Bool(false)),
        ];
        for (op, arg, result) in shaped {
            entries.push((
                g.op_index(op).expect("catalog operation"),
                LogEntry {
                    txn: u64::from(t) + 1,
                    op: op.to_string(),
                    args: vec![arg],
                    result: Some(result),
                    pre_state: g.requires_pre_state(op).then(|| pre.clone()),
                },
            ));
        }
    }

    let incoming = checks / (2 * entries.len() as u64); // two ops per script
    let mut rng = XorShift::new(0x06a7_ebad ^ checks);
    let (mut performed, mut admitted, mut conflicts, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let start = Instant::now();
    for _ in 0..incoming {
        for (op, args) in workload.transaction(&mut rng, prefill) {
            let op_idx = g.op_index(op).expect("catalog operation");
            for (first, entry) in &entries {
                performed += 1;
                match g.check_indexed(*first, entry, op_idx, op, &args) {
                    Ok(()) => admitted += 1,
                    Err(AdmissionError::Conflict(_)) => conflicts += 1,
                    Err(AdmissionError::Evaluation(_)) => errors += 1,
                }
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(errors, 0, "well-formed entries never fail evaluation");
    Measurement {
        engine: "gatekeeper",
        workload: workload.name(),
        admit: admit_label(backend),
        fallback: "n/a",
        threads: 1,
        target_ops: checks,
        committed_ops: performed,
        commits: admitted,
        aborts: errors,
        conflicts,
        degraded_commits: 0,
        mode_switches: 0,
        pinned_ops: entries.len() as u64,
        wall_s,
    }
}

/// Number of live snapshots the mirror microharness keeps retained — shaped
/// like a handful of open transactions whose published entries each hold a
/// pre-state projection.
const MIRROR_RETAIN: usize = 64;

/// How far above the coarse baseline's per-op cost the adaptive runtime may
/// land on the forced-contention `hot` leg. The degraded section is the
/// coarse discipline plus the costs that keep speculation resumable and
/// abortable — the inverse log recorded per operation, the persistent
/// mirror updated in step with every mutation, and the mode-gate
/// acquisition per transaction — so the adaptive engine cannot match the
/// bare baseline exactly. Measured on the dev host it lands at ~5.6× the
/// coarse floor (versus ~21× for non-degraded speculation and unbounded
/// retry cost without the fallback); the criterion pins that it stays
/// within the same order as the baseline, not within speculation's.
const HOT_ADAPTIVE_OVER_COARSE_MAX: f64 = 8.0;

/// How much worse the non-adaptive (`fallback=off`) runtime must do than
/// the adaptive one on the forced-contention leg: every transaction pays
/// the speculate-abort-retry cycle the adaptive engine escapes by
/// degrading. Measured ~3.8× on the dev host.
const HOT_OFF_OVER_ADAPTIVE_MIN: f64 = 3.0;

/// The key distribution of the snapshot loops: hot-key skew over a domain
/// twice the structure size (so inserts and removes both happen).
fn snapshot_key(rng: &mut XorShift, n: u64) -> ElemId {
    let k = if rng.below(2) == 0 {
        rng.below(16)
    } else {
        rng.below(n * 2)
    };
    ElemId(k as u32 + 1)
}

/// Folds a set's contents into a checksum so the flat and tree mirror legs
/// can prove they computed the same thing.
fn set_checksum(elems: impl Iterator<Item = ElemId>) -> u64 {
    elems.fold(0u64, |a, e| {
        a.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(e.0))
    })
}

/// The flat half of the mirror microharness: the PR 3 representation — an
/// eager collection behind `Arc` with `make_mut` copy-on-write. Retaining a
/// snapshot is an `O(1)` handle clone, but the next mutation re-clones the
/// *entire* collection. This loop pays no `Value` wrapper or dispatch cost,
/// so it is a lower bound on what the real runtime paid under the flat
/// representation.
fn run_snapshot_mirror_flat(ops: u64, n: u64) -> (Measurement, u64) {
    let mut primary: Arc<BTreeSet<ElemId>> = Arc::new((1..=n as u32).map(ElemId).collect());
    let mut retained: VecDeque<Arc<BTreeSet<ElemId>>> = VecDeque::with_capacity(MIRROR_RETAIN);
    let mut rng = XorShift::new(0x5a_a9_5a_a9 ^ ops);
    let start = Instant::now();
    for _ in 0..ops {
        if retained.len() == MIRROR_RETAIN {
            retained.pop_front();
        }
        // The pre-state projection the executor attaches to a published entry.
        retained.push_back(Arc::clone(&primary));
        // The next mirror mutation: `make_mut` detaches from every retained
        // snapshot by cloning the whole collection.
        let k = snapshot_key(&mut rng, n);
        let set = Arc::make_mut(&mut primary);
        if !set.insert(k) {
            set.remove(&k);
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let checksum = set_checksum(primary.iter().copied());
    (
        Measurement {
            engine: "mirror_flat",
            workload: "skewed",
            admit: "default",
            fallback: "n/a",
            threads: 1,
            target_ops: ops,
            committed_ops: ops,
            commits: 0,
            aborts: 0,
            conflicts: 0,
            degraded_commits: 0,
            mode_switches: 0,
            pinned_ops: MIRROR_RETAIN as u64,
            wall_s,
        },
        checksum,
    )
}

/// The tree half of the mirror microharness: the identical deterministic
/// loop against the tree-shaped [`PSet`], whose mutations detach from the
/// retained snapshots by path-copying `O(log n)` nodes.
fn run_snapshot_mirror_tree(ops: u64, n: u64) -> (Measurement, u64) {
    let mut primary: PSet = (1..=n as u32).map(ElemId).collect();
    let mut retained: VecDeque<PSet> = VecDeque::with_capacity(MIRROR_RETAIN);
    let mut rng = XorShift::new(0x5a_a9_5a_a9 ^ ops);
    let start = Instant::now();
    for _ in 0..ops {
        if retained.len() == MIRROR_RETAIN {
            retained.pop_front();
        }
        retained.push_back(primary.clone());
        let k = snapshot_key(&mut rng, n);
        if !primary.insert(k) {
            primary.remove(&k);
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let checksum = set_checksum(primary.iter().copied());
    (
        Measurement {
            engine: "mirror_tree",
            workload: "skewed",
            admit: "default",
            fallback: "n/a",
            threads: 1,
            target_ops: ops,
            committed_ops: ops,
            commits: 0,
            aborts: 0,
            conflicts: 0,
            degraded_commits: 0,
            mode_switches: 0,
            pinned_ops: MIRROR_RETAIN as u64,
            wall_s,
        },
        checksum,
    )
}

/// The end-to-end snapshot-heavy leg: the production runtime on a large
/// prefilled set, driving transactions that interleave `size` probes (whose
/// between conditions read `s1`, so the executor attaches a pre-state
/// projection to each) with hot-key-skew mutations. Every projection retains
/// the tracked mirror's state value, so each following mutation pays the
/// representation's detach cost — the cost the tentpole moved from `O(n)`
/// to `O(log n)`.
fn run_snapshot_runtime(ops: u64, prefill: u64) -> Measurement {
    let rt = SpeculativeRuntime::new(prefilled(prefill));
    let ops_per_txn = 8u64; // four (size, mutate) pairs
    let txns = ops / ops_per_txn;
    let mut committed_ops = 0u64;
    let mut rng = XorShift::new(0x5a_a9_5a_a9 ^ ops);
    let start = Instant::now();
    for _ in 0..txns {
        let script: Vec<(&str, Vec<Value>)> = (0..4)
            .flat_map(|_| {
                let k = snapshot_key(&mut rng, prefill);
                let mutate = if rng.below(2) == 0 { "add" } else { "remove" };
                [("size", vec![]), (mutate, vec![Value::Elem(k)])]
            })
            .collect();
        let done = rt.run(1_000, |txn| {
            for (op, args) in &script {
                txn.execute(op, args)?;
            }
            Ok(())
        });
        match done {
            Ok(()) => committed_ops += script.len() as u64,
            Err(TxnError::RetriesExhausted(_)) => {}
            Err(e) => panic!("snapshot workload failed: {e}"),
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    rt.check_invariants()
        .expect("invariants hold after the run");
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.commits + stats.aborts);
    Measurement {
        engine: "snapshot_runtime",
        workload: "skewed",
        admit: "default",
        fallback: "default",
        threads: 1,
        target_ops: txns * ops_per_txn,
        committed_ops,
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.conflicts,
        degraded_commits: stats.degraded_commits,
        mode_switches: stats.mode_switches,
        pinned_ops: 0,
        wall_s,
    }
}

fn main() {
    let mut ops: u64 = 250_000;
    let mut seed_ops: u64 = 20_000;
    let mut prefill: u64 = 10_000;
    let mut admit: Vec<AdmitBackend> = vec![AdmitBackend::Bytecode, AdmitBackend::Interp];
    let mut snap_ops: Option<u64> = None;
    let mut snap_prefill: u64 = 4_096;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--snap-ops" => {
                snap_ops = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--snap-ops N"),
                )
            }
            "--snap-prefill" => {
                snap_prefill = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--snap-prefill N")
            }
            "--seed-ops" => {
                seed_ops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed-ops N")
            }
            "--prefill" => {
                prefill = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--prefill N")
            }
            "--admit" => {
                admit = match args.next().as_deref() {
                    Some("bytecode") => vec![AdmitBackend::Bytecode],
                    Some("interp") => vec![AdmitBackend::Interp],
                    Some("both") => vec![AdmitBackend::Bytecode, AdmitBackend::Interp],
                    Some("off") => vec![],
                    other => panic!("--admit bytecode|interp|both|off, got {other:?}"),
                }
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => panic!("unknown option {other}"),
        }
    }

    semcommute_bench::banner("runtime workload: speculative vs coarse-lock vs seed");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    println!(
        "host parallelism: {host_threads}, ops: {ops}, prefill: {prefill}, seed ops: {seed_ops}"
    );

    let mut runs: Vec<Measurement> = Vec::new();
    for workload in [Workload::Uniform, Workload::Skewed] {
        for threads in [1, 2, 4, 8] {
            runs.push(run_speculative(workload, threads, ops, prefill));
            runs.push(run_coarse(workload, threads, ops, prefill));
            let last = runs.len() - 2;
            println!(
                "{:8} {:12} t={:2}  spec {:>12.0} ops/s ({:>7.0} ns/op, {} aborts)   coarse {:>12.0} ops/s ({:>7.0} ns/op)",
                workload.name(),
                "",
                threads,
                runs[last].committed_ops_per_s(),
                runs[last].per_op_ns(),
                runs[last].aborts,
                runs[last + 1].committed_ops_per_s(),
                runs[last + 1].per_op_ns(),
            );
        }
        // The seed engine is measured at threads=1 on a reduced op count —
        // its per-operation state clone makes full-size runs impractical,
        // which is the point of measuring it.
        runs.push(run_seed(workload, 1, seed_ops, prefill));
        let last = runs.len() - 1;
        println!(
            "{:8} {:12} t= 1  seed {:>13.0} ops/s ({:>7.0} ns/op) [reduced {} ops]",
            workload.name(),
            "",
            runs[last].committed_ops_per_s(),
            runs[last].per_op_ns(),
            seed_ops,
        );
    }

    // The admission legs: same reduced op count for both backends, a small
    // prefill, pinned background transactions supplying the entries to admit
    // against (see `run_admission`).
    let admit_ops = (ops / 5).max(1_000);
    let admit_prefill = 64;
    for workload in [Workload::Uniform, Workload::Skewed] {
        for &backend in &admit {
            runs.push(run_admission(workload, backend, admit_ops, admit_prefill));
            let m = runs.last().unwrap();
            println!(
                "{:8} admit/{:5} t= 1  spec {:>12.0} ops/s ({:>7.0} ns/op, {} commits, \
                 {} aborts, {} conflicts)",
                m.workload,
                m.admit,
                m.committed_ops_per_s(),
                m.per_op_ns(),
                m.commits,
                m.aborts,
                m.conflicts,
            );
        }
    }

    // The admission-only microbenchmark: same log shape and workload
    // distributions, gatekeeper checks alone (see `run_gatekeeper`).
    let gate_checks = (ops * 4).max(100_000);
    for workload in [Workload::Uniform, Workload::Skewed] {
        for &backend in &admit {
            runs.push(run_gatekeeper(
                workload,
                backend,
                gate_checks,
                admit_prefill,
            ));
            let m = runs.last().unwrap();
            println!(
                "{:8} gate/{:6} t= 1  {:>14.0} checks/s ({:>6.0} ns/check, \
                 {} admitted, {} conflicts)",
                m.workload,
                m.admit,
                m.committed_ops_per_s(),
                m.per_op_ns(),
                m.commits,
                m.conflicts,
            );
        }
    }

    // The snapshot-heavy legs: the flat-vs-tree mirror microharness (the
    // identical deterministic loop under both representations), then the
    // end-to-end runtime leg (see `run_snapshot_runtime`). The flat leg runs
    // a reduced op count — each of its mutations re-clones the whole
    // structure, which is the point of measuring it.
    let snap_ops = snap_ops.unwrap_or_else(|| (ops / 5).max(10_000));
    let flat_ops = (snap_ops / 10).max(1_000);
    let (flat, flat_checksum) = run_snapshot_mirror_flat(flat_ops, snap_prefill);
    let (tree, _tree_checksum) = run_snapshot_mirror_tree(snap_ops, snap_prefill);
    let mirror_flat_per_op = flat.per_op_ns();
    let mirror_tree_per_op = tree.per_op_ns();
    // The two loops are deterministic and identical apart from length; rerun
    // the tree leg at the flat leg's length for the contents check.
    let (_, tree_at_flat_len) = run_snapshot_mirror_tree(flat_ops, snap_prefill);
    let mirror_contents_identical = flat_checksum == tree_at_flat_len;
    for m in [flat, tree] {
        println!(
            "{:8} {:12} t= 1  {:>14.0} ops/s ({:>7.0} ns/op) [n={}, {} retained]",
            m.workload,
            m.engine,
            m.committed_ops_per_s(),
            m.per_op_ns(),
            snap_prefill,
            m.pinned_ops,
        );
        runs.push(m);
    }
    runs.push(run_snapshot_runtime(snap_ops, snap_prefill));
    let m = runs.last().unwrap();
    println!(
        "{:8} {:12} t= 1  {:>14.0} ops/s ({:>7.0} ns/op, {} commits, {} aborts)",
        m.workload,
        m.engine,
        m.committed_ops_per_s(),
        m.per_op_ns(),
        m.commits,
        m.aborts,
    );

    // The contention legs: forced conflicts on every `hot_period`-th
    // operation ordinal make roughly two thirds of speculative admission
    // attempts abort (two-op transactions draw two consecutive ordinals),
    // identically on every host. The adaptive runtime must cross its abort
    // threshold, degrade to the coarse section, and ride it — probe windows
    // keep failing, so it stays degraded; the non-adaptive runtime pays the
    // full speculate-abort-retry cost for every transaction; the coarse
    // baseline is the floor the degraded path borrows its discipline from.
    let hot_ops = (ops / 5).max(10_000);
    let hot_period = 3;
    for threads in [1, 4] {
        // The threads=1 legs gate acceptance on wall-clock ratios, so they
        // run best-of-3 (see `best_of`); the threads=4 legs are recorded
        // for the report only.
        let reps = if threads == 1 { 3 } else { 1 };
        for (fallback, options) in [
            ("on", FallbackOptions::on()),
            ("off", FallbackOptions::off()),
        ] {
            runs.push(best_of(reps, || {
                run_speculative_leg(
                    Workload::Hot,
                    threads,
                    hot_ops,
                    prefill,
                    fallback,
                    RuntimeOptions {
                        fallback: options,
                        ..RuntimeOptions::default()
                    },
                    Some(hot_period),
                )
            }));
            let m = runs.last().unwrap();
            println!(
                "{:8} fb={:9} t={:2}  spec {:>12.0} ops/s ({:>7.0} ns/op, {} aborts, \
                 {} degraded, {} switches)",
                m.workload,
                m.fallback,
                m.threads,
                m.committed_ops_per_s(),
                m.per_op_ns(),
                m.aborts,
                m.degraded_commits,
                m.mode_switches,
            );
        }
        runs.push(best_of(reps, || {
            run_coarse(Workload::Hot, threads, hot_ops, prefill)
        }));
        let m = runs.last().unwrap();
        println!(
            "{:8} {:12} t={:2}  coarse {:>10.0} ops/s ({:>7.0} ns/op)",
            m.workload,
            "",
            m.threads,
            m.committed_ops_per_s(),
            m.per_op_ns(),
        );
    }

    // The fallback parity legs: the classic workloads with the fallback
    // explicitly on and explicitly off. Their abort rates sit far below the
    // degrade threshold, so these legs pin the cost of *having* the
    // contention manager armed when it never fires.
    for workload in [Workload::Uniform, Workload::Skewed] {
        for threads in [1, 4] {
            // Only the threads=1 ratio gates acceptance (within 10%), so
            // those legs run best-of-3.
            let reps = if threads == 1 { 3 } else { 1 };
            for (fallback, options) in [
                ("on", FallbackOptions::on()),
                ("off", FallbackOptions::off()),
            ] {
                runs.push(best_of(reps, || {
                    run_speculative_leg(
                        workload,
                        threads,
                        ops,
                        prefill,
                        fallback,
                        RuntimeOptions {
                            fallback: options,
                            ..RuntimeOptions::default()
                        },
                        None,
                    )
                }));
                let m = runs.last().unwrap();
                println!(
                    "{:8} fb={:9} t={:2}  spec {:>12.0} ops/s ({:>7.0} ns/op, {} aborts, \
                     {} switches)",
                    m.workload,
                    m.fallback,
                    m.threads,
                    m.committed_ops_per_s(),
                    m.per_op_ns(),
                    m.aborts,
                    m.mode_switches,
                );
            }
        }
    }

    // Acceptance: on a single-core host, the production engine at threads=1
    // must show ≥ 5× lower per-committed-op overhead than the seed engine;
    // on multi-core hosts, speculative must out-commit coarse at threads ≥ 4.
    let per_op = |engine: &str, workload: &str, threads: u64| {
        runs.iter()
            .find(|m| {
                m.engine == engine
                    && m.workload == workload
                    && m.threads == threads
                    // The classic grid only — not the dedicated fallback legs.
                    && (m.fallback == "default" || m.fallback == "n/a")
            })
            .map(|m| m.per_op_ns())
            .unwrap_or(f64::INFINITY)
    };
    let overhead_ratio_uniform = per_op("seed", "uniform", 1) / per_op("speculative", "uniform", 1);
    let overhead_ratio_skewed = per_op("seed", "skewed", 1) / per_op("speculative", "skewed", 1);
    let spec_vs_coarse_t4 = {
        let spec = runs
            .iter()
            .find(|m| m.engine == "speculative" && m.workload == "uniform" && m.threads == 4)
            .map(|m| m.committed_ops_per_s())
            .unwrap_or(0.0);
        let coarse = runs
            .iter()
            .find(|m| m.engine == "coarse_lock" && m.workload == "uniform" && m.threads == 4)
            .map(|m| m.committed_ops_per_s())
            .unwrap_or(f64::INFINITY);
        spec / coarse
    };
    // When both admission backends ran, two comparisons gate acceptance:
    //
    // * **End-to-end**: the runtime admission legs must have *identical*
    //   commit/abort/conflict counts (same deterministic workload; verdict
    //   agreement is proven by the diff harnesses — a mismatch here is a
    //   real bug), and the compiled backend must not be slower. End-to-end
    //   wall time also pays structure application, publishing, and commit
    //   bookkeeping, identically under both backends, so this ratio
    //   understates the admission speedup.
    // * **Admission-only**: the gatekeeper microbenchmark isolates the
    //   per-check cost the tentpole changed; compiled admission must be at
    //   most 0.5× the interpreter per check, with identical verdicts. With
    //   identical counts the wall-time ratio *is* the per-op ratio.
    let admit_both =
        admit.contains(&AdmitBackend::Bytecode) && admit.contains(&AdmitBackend::Interp);
    let mut admit_counts_identical = true;
    let mut admit_ratio = |engine: &str, wl: &str| -> f64 {
        let leg = |backend: &str| {
            runs.iter()
                .find(|m| m.engine == engine && m.admit == backend && m.workload == wl)
                .expect("both admission legs ran")
        };
        let fast = leg("bytecode");
        let slow = leg("interp");
        admit_counts_identical &= fast.commits == slow.commits
            && fast.aborts == slow.aborts
            && fast.conflicts == slow.conflicts
            && fast.committed_ops == slow.committed_ops;
        slow.wall_s / fast.wall_s
    };
    let (admit_uniform, admit_skewed, gate_uniform, gate_skewed) = if admit_both {
        (
            admit_ratio("speculative", "uniform"),
            admit_ratio("speculative", "skewed"),
            admit_ratio("gatekeeper", "uniform"),
            admit_ratio("gatekeeper", "skewed"),
        )
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };
    let admit_passed = !admit_both
        || (admit_counts_identical
            && gate_uniform >= 2.0
            && gate_skewed >= 2.0
            && admit_uniform > 1.0
            && admit_skewed > 1.0);

    // The snapshot criterion: under the identical retain-then-mutate loop
    // the tree representation's per-op cost must be materially (≥ 2×) lower
    // than the flat mirror's — which, being a lower bound on the real flat
    // cost, makes the comparison conservative — and both loops must compute
    // the same final contents.
    let mirror_flat_over_tree = mirror_flat_per_op / mirror_tree_per_op;
    let snapshot_passed = mirror_flat_over_tree >= 2.0 && mirror_contents_identical;

    // The contention criterion, measured at threads=1 where the forced
    // contention is exactly deterministic. Under forced conflicts the
    // adaptive runtime must actually adapt (at least one mode switch, most
    // commits through the degraded section) and end up within a small
    // constant of the coarse baseline's per-op cost — the degraded section
    // *is* the coarse discipline, plus the mirror maintenance and mode-gate
    // bookkeeping that keep speculation resumable — while the non-adaptive
    // runtime must lose to the adaptive one by a wide margin. The parity
    // legs must show the armed-but-idle contention manager never firing and
    // costing nothing measurable (per-op parity within 10% at threads=1).
    let fallback_leg = |workload: &str, fallback: &str, threads: u64| {
        runs.iter()
            .find(|m| {
                m.engine == "speculative"
                    // Not the dedicated admission legs, which also pin the
                    // fallback off (their gate-pinning transactions exclude
                    // the degraded path — see `run_admission`).
                    && m.admit == "default"
                    && m.workload == workload
                    && m.fallback == fallback
                    && m.threads == threads
            })
            .expect("fallback leg ran")
    };
    let hot_adaptive = fallback_leg("hot", "on", 1);
    let hot_off = fallback_leg("hot", "off", 1);
    let hot_coarse_per_op = per_op("coarse_lock", "hot", 1);
    let hot_adaptive_over_coarse = hot_adaptive.per_op_ns() / hot_coarse_per_op;
    let hot_off_over_adaptive = hot_off.per_op_ns() / hot_adaptive.per_op_ns();
    let hot_degraded_share =
        hot_adaptive.degraded_commits as f64 / hot_adaptive.commits.max(1) as f64;
    let hot_adapted = hot_adaptive.mode_switches >= 1
        && hot_degraded_share >= 0.5
        && hot_off.mode_switches == 0
        && hot_off.degraded_commits == 0;
    let parity_uniform = fallback_leg("uniform", "on", 1).per_op_ns()
        / fallback_leg("uniform", "off", 1).per_op_ns();
    let parity_skewed =
        fallback_leg("skewed", "on", 1).per_op_ns() / fallback_leg("skewed", "off", 1).per_op_ns();
    // All eight parity legs (both workloads, both thread counts, on and
    // off): the mode machinery must never have fired.
    let parity_never_fired = [Workload::Uniform, Workload::Skewed].iter().all(|w| {
        [1u64, 4].iter().all(|&t| {
            ["on", "off"].iter().all(|fb| {
                let m = fallback_leg(w.name(), fb, t);
                m.mode_switches == 0 && m.degraded_commits == 0
            })
        })
    });
    let parity_within = |ratio: f64| (0.9..=1.1).contains(&ratio);
    let fallback_passed = hot_adapted
        && hot_adaptive_over_coarse <= HOT_ADAPTIVE_OVER_COARSE_MAX
        && hot_off_over_adaptive >= HOT_OFF_OVER_ADAPTIVE_MIN
        && parity_within(parity_uniform)
        && parity_within(parity_skewed)
        && parity_never_fired;

    let single_core = host_threads == 1;
    let classic_passed = if single_core {
        overhead_ratio_uniform >= 5.0 && overhead_ratio_skewed >= 5.0
    } else {
        spec_vs_coarse_t4 > 1.0
    };
    let passed = classic_passed && admit_passed && snapshot_passed && fallback_passed;
    println!();
    println!(
        "seed/speculative per-op overhead ratio: uniform {overhead_ratio_uniform:.1}x, \
         skewed {overhead_ratio_skewed:.1}x"
    );
    println!("speculative/coarse throughput at t=4 (uniform): {spec_vs_coarse_t4:.2}x");
    if admit_both {
        println!(
            "interp/bytecode end-to-end per-op ratio: uniform {admit_uniform:.2}x, \
             skewed {admit_skewed:.2}x (counts identical: {admit_counts_identical})"
        );
        println!(
            "interp/bytecode admission-only per-check ratio: uniform {gate_uniform:.2}x, \
             skewed {gate_skewed:.2}x"
        );
    }
    println!(
        "flat/tree snapshot-loop per-op ratio: {mirror_flat_over_tree:.1}x \
         (flat {mirror_flat_per_op:.0} ns/op, tree {mirror_tree_per_op:.0} ns/op, \
         contents identical: {mirror_contents_identical})"
    );
    println!(
        "hot leg (forced conflict every {hot_period} ops, t=1): adaptive/coarse per-op \
         {hot_adaptive_over_coarse:.2}x, off/adaptive per-op {hot_off_over_adaptive:.1}x, \
         degraded commit share {:.0}%, switches {}",
        hot_degraded_share * 100.0,
        hot_adaptive.mode_switches,
    );
    println!(
        "fallback parity (on/off per-op, t=1): uniform {parity_uniform:.3}x, \
         skewed {parity_skewed:.3}x (never fired: {parity_never_fired})"
    );
    println!(
        "acceptance ({}{}; tree >=2x lower snapshot-loop per-op than flat; \
         adaptive <={HOT_ADAPTIVE_OVER_COARSE_MAX}x coarse and \
         >={HOT_OFF_OVER_ADAPTIVE_MIN}x better than fallback-off under forced \
         contention, parity within 10%): {}",
        if single_core {
            "single-core host: >=5x lower per-op overhead than seed at t=1"
        } else {
            "multi-core host: speculative out-commits coarse at t=4"
        },
        if admit_both {
            "; compiled admission <=0.5x interp per-check, faster end-to-end, identical counts"
        } else {
            ""
        },
        if passed { "PASS" } else { "FAIL" }
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"options\": {{\"ops\": {ops}, \"seed_ops\": {seed_ops}, \"prefill\": {prefill}, \
         \"admit\": [{}], \"admit_ops\": {admit_ops}, \"admit_prefill\": {admit_prefill}, \"gate_checks\": {gate_checks}, \
         \"snap_ops\": {snap_ops}, \"snap_flat_ops\": {flat_ops}, \"snap_prefill\": {snap_prefill}, \
         \"snap_retained\": {MIRROR_RETAIN}, \
         \"hot_ops\": {hot_ops}, \"hot_conflict_period\": {hot_period}, \
         \"host_parallelism\": {host_threads}}},\n",
        admit
            .iter()
            .map(|&b| format!("\"{}\"", admit_label(b)))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        json.push_str(&m.json());
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"single_core_host\": {single_core}, \
         \"seed_over_speculative_per_op_uniform\": {overhead_ratio_uniform:.2}, \
         \"seed_over_speculative_per_op_skewed\": {overhead_ratio_skewed:.2}, \
         \"speculative_over_coarse_t4_uniform\": {spec_vs_coarse_t4:.3}, \
         \"admit_compared\": {admit_both}, \
         \"admit_interp_over_bytecode_uniform\": {admit_uniform:.2}, \
         \"admit_interp_over_bytecode_skewed\": {admit_skewed:.2}, \
         \"gate_interp_over_bytecode_uniform\": {gate_uniform:.2}, \
         \"gate_interp_over_bytecode_skewed\": {gate_skewed:.2}, \
         \"admit_counts_identical\": {admit_counts_identical}, \
         \"mirror_flat_over_tree_per_op\": {mirror_flat_over_tree:.2}, \
         \"mirror_flat_per_op_ns\": {mirror_flat_per_op:.1}, \
         \"mirror_tree_per_op_ns\": {mirror_tree_per_op:.1}, \
         \"mirror_contents_identical\": {mirror_contents_identical}, \
         \"hot_adaptive_over_coarse_per_op\": {hot_adaptive_over_coarse:.2}, \
         \"hot_adaptive_over_coarse_max\": {HOT_ADAPTIVE_OVER_COARSE_MAX}, \
         \"hot_off_over_adaptive_per_op\": {hot_off_over_adaptive:.2}, \
         \"hot_off_over_adaptive_min\": {HOT_OFF_OVER_ADAPTIVE_MIN}, \
         \"hot_degraded_commit_share\": {hot_degraded_share:.3}, \
         \"hot_adaptive_mode_switches\": {}, \
         \"fallback_parity_uniform_t1\": {parity_uniform:.3}, \
         \"fallback_parity_skewed_t1\": {parity_skewed:.3}, \
         \"fallback_parity_never_fired\": {parity_never_fired}, \
         \"fallback_passed\": {fallback_passed}, \
         \"passed\": {passed}}}\n",
        hot_adaptive.mode_switches,
    ));
    json.push('}');
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON report");
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
    assert!(passed, "acceptance criterion not met");
}
