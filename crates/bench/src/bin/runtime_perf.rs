//! Runtime workload benchmark: speculative vs coarse-lock vs the seed engine.
//!
//! Drives mixed set transactions (adds, membership tests, removes) through
//! three engines — the production [`SpeculativeRuntime`], the
//! [`CoarseLockRuntime`] baseline, and the seed-faithful reference engine
//! ([`semcommute_bench::seed_runtime`]) — at several thread counts and two
//! key distributions:
//!
//! * `uniform`: keys drawn from a large domain, so almost all transactions
//!   commute (the paper's motivating case: commutativity exposes
//!   parallelism);
//! * `skewed`: half the operations hit a handful of hot keys, forcing real
//!   conflicts, aborts, and inverse-driven rollback.
//!
//! The structure is pre-populated so the seed engine's per-operation
//! abstract-state clone has a realistic structure size to pay for. The seed
//! engine runs a reduced operation count (it is quadratic in practice) and
//! is compared on *per-committed-operation* time.
//!
//! Usage: `runtime_perf [--ops N] [--prefill N] [--seed-ops N] [--json PATH]`.
//! With the defaults the speculative and coarse legs together drive several
//! million mixed operations across the configurations. Emits the
//! measurements as JSON
//! (`BENCH_pr7.json` in CI) with an `acceptance` section recording the
//! single-core criterion: speculative per-op overhead at threads=1 must be
//! ≥ 5× lower than the seed engine's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use semcommute_bench::seed_runtime::SeedRuntime;
use semcommute_logic::Value;
use semcommute_runtime::{AnyStructure, CoarseLockRuntime, SpeculativeRuntime, TxnError};

/// Deterministic xorshift64* — reproducible workloads, no external crates.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Uniform,
    Skewed,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Skewed => "skewed",
        }
    }

    /// One transaction script: two operations, mixed kinds.
    fn transaction(self, rng: &mut XorShift, prefill: u64) -> Vec<(&'static str, Vec<Value>)> {
        let key = |rng: &mut XorShift| {
            let k = match self {
                Workload::Uniform => rng.below(prefill * 4),
                // Half the traffic on 16 hot keys.
                Workload::Skewed => {
                    if rng.below(2) == 0 {
                        rng.below(16)
                    } else {
                        rng.below(prefill * 4)
                    }
                }
            };
            Value::elem(k as u32 + 1)
        };
        (0..2)
            .map(|_| match rng.below(10) {
                0..=4 => ("add", vec![key(rng)]),
                5 | 6 => ("contains", vec![key(rng)]),
                _ => ("remove", vec![key(rng)]),
            })
            .collect()
    }
}

struct Measurement {
    engine: &'static str,
    workload: &'static str,
    threads: u64,
    target_ops: u64,
    committed_ops: u64,
    commits: u64,
    aborts: u64,
    conflicts: u64,
    wall_s: f64,
}

impl Measurement {
    fn committed_ops_per_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.committed_ops as f64 / self.wall_s
        } else {
            0.0
        }
    }

    fn per_op_ns(&self) -> f64 {
        if self.committed_ops > 0 {
            self.wall_s * 1e9 / self.committed_ops as f64
        } else {
            f64::INFINITY
        }
    }

    fn json(&self) -> String {
        format!(
            "    {{\"engine\": \"{}\", \"workload\": \"{}\", \"threads\": {}, \
             \"target_ops\": {}, \"committed_ops\": {}, \"commits\": {}, \"aborts\": {}, \
             \"conflicts\": {}, \"wall_s\": {:.6}, \"committed_ops_per_s\": {:.1}, \
             \"per_op_ns\": {:.1}}}",
            self.engine,
            self.workload,
            self.threads,
            self.target_ops,
            self.committed_ops,
            self.commits,
            self.aborts,
            self.conflicts,
            self.wall_s,
            self.committed_ops_per_s(),
            self.per_op_ns(),
        )
    }
}

fn prefilled(prefill: u64) -> AnyStructure {
    let mut s = AnyStructure::by_name("HashSet").unwrap();
    for k in 0..prefill {
        s.apply("add", &[Value::elem(k as u32 + 1)]).unwrap();
    }
    s
}

fn run_speculative(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    let rt = SpeculativeRuntime::new(prefilled(prefill));
    let per_thread = ops / threads / 2; // two ops per transaction
    let committed_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let committed_ops = &committed_ops;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    let done = rt.run(1_000, |txn| {
                        for (op, args) in &script {
                            txn.execute(op, args)?;
                        }
                        Ok(())
                    });
                    match done {
                        Ok(()) => {
                            committed_ops.fetch_add(script.len() as u64, Ordering::Relaxed);
                        }
                        Err(TxnError::RetriesExhausted) => {}
                        Err(e) => panic!("speculative workload failed: {e}"),
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    rt.check_invariants()
        .expect("invariants hold after the run");
    let stats = rt.stats();
    assert_eq!(stats.begun, stats.commits + stats.aborts);
    Measurement {
        engine: "speculative",
        workload: workload.name(),
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: committed_ops.load(Ordering::Relaxed),
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.conflicts,
        wall_s,
    }
}

fn run_coarse(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    let rt = CoarseLockRuntime::new(prefilled(prefill));
    let per_thread = ops / threads / 2;
    let committed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let committed = &committed;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    rt.run_transaction(|txn| {
                        for (op, args) in &script {
                            txn.execute(op, args).unwrap();
                        }
                    });
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let commits = committed.load(Ordering::Relaxed);
    Measurement {
        engine: "coarse_lock",
        workload: workload.name(),
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: commits * 2,
        commits,
        aborts: 0,
        conflicts: 0,
        wall_s,
    }
}

fn run_seed(workload: Workload, threads: u64, ops: u64, prefill: u64) -> Measurement {
    let rt = SeedRuntime::new(prefilled(prefill));
    let per_thread = ops / threads / 2;
    let next_txn = AtomicU64::new(1);
    let committed_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let next_txn = &next_txn;
            let committed_ops = &committed_ops;
            scope.spawn(move || {
                let mut rng = XorShift::new(0xfeed_beef ^ (thread << 40) ^ ops);
                for _ in 0..per_thread {
                    let script = workload.transaction(&mut rng, prefill);
                    let txn = next_txn.fetch_add(1, Ordering::Relaxed);
                    if rt.run_transaction(txn, &script, 1_000) {
                        committed_ops.fetch_add(script.len() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let stats = rt.stats();
    Measurement {
        engine: "seed",
        workload: workload.name(),
        threads,
        target_ops: per_thread * threads * 2,
        committed_ops: committed_ops.load(Ordering::Relaxed),
        commits: stats.commits,
        aborts: stats.aborts,
        conflicts: stats.aborts,
        wall_s,
    }
}

fn main() {
    let mut ops: u64 = 250_000;
    let mut seed_ops: u64 = 20_000;
    let mut prefill: u64 = 10_000;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--seed-ops" => {
                seed_ops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed-ops N")
            }
            "--prefill" => {
                prefill = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--prefill N")
            }
            "--json" => json_path = Some(args.next().expect("--json PATH")),
            other => panic!("unknown option {other}"),
        }
    }

    semcommute_bench::banner("runtime workload: speculative vs coarse-lock vs seed");
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    println!(
        "host parallelism: {host_threads}, ops: {ops}, prefill: {prefill}, seed ops: {seed_ops}"
    );

    let mut runs: Vec<Measurement> = Vec::new();
    for workload in [Workload::Uniform, Workload::Skewed] {
        for threads in [1, 2, 4, 8] {
            runs.push(run_speculative(workload, threads, ops, prefill));
            runs.push(run_coarse(workload, threads, ops, prefill));
            let last = runs.len() - 2;
            println!(
                "{:8} {:12} t={:2}  spec {:>12.0} ops/s ({:>7.0} ns/op, {} aborts)   coarse {:>12.0} ops/s ({:>7.0} ns/op)",
                workload.name(),
                "",
                threads,
                runs[last].committed_ops_per_s(),
                runs[last].per_op_ns(),
                runs[last].aborts,
                runs[last + 1].committed_ops_per_s(),
                runs[last + 1].per_op_ns(),
            );
        }
        // The seed engine is measured at threads=1 on a reduced op count —
        // its per-operation state clone makes full-size runs impractical,
        // which is the point of measuring it.
        runs.push(run_seed(workload, 1, seed_ops, prefill));
        let last = runs.len() - 1;
        println!(
            "{:8} {:12} t= 1  seed {:>13.0} ops/s ({:>7.0} ns/op) [reduced {} ops]",
            workload.name(),
            "",
            runs[last].committed_ops_per_s(),
            runs[last].per_op_ns(),
            seed_ops,
        );
    }

    // Acceptance: on a single-core host, the production engine at threads=1
    // must show ≥ 5× lower per-committed-op overhead than the seed engine;
    // on multi-core hosts, speculative must out-commit coarse at threads ≥ 4.
    let per_op = |engine: &str, workload: &str, threads: u64| {
        runs.iter()
            .find(|m| m.engine == engine && m.workload == workload && m.threads == threads)
            .map(|m| m.per_op_ns())
            .unwrap_or(f64::INFINITY)
    };
    let overhead_ratio_uniform = per_op("seed", "uniform", 1) / per_op("speculative", "uniform", 1);
    let overhead_ratio_skewed = per_op("seed", "skewed", 1) / per_op("speculative", "skewed", 1);
    let spec_vs_coarse_t4 = {
        let spec = runs
            .iter()
            .find(|m| m.engine == "speculative" && m.workload == "uniform" && m.threads == 4)
            .map(|m| m.committed_ops_per_s())
            .unwrap_or(0.0);
        let coarse = runs
            .iter()
            .find(|m| m.engine == "coarse_lock" && m.workload == "uniform" && m.threads == 4)
            .map(|m| m.committed_ops_per_s())
            .unwrap_or(f64::INFINITY);
        spec / coarse
    };
    let single_core = host_threads == 1;
    let passed = if single_core {
        overhead_ratio_uniform >= 5.0 && overhead_ratio_skewed >= 5.0
    } else {
        spec_vs_coarse_t4 > 1.0
    };
    println!();
    println!(
        "seed/speculative per-op overhead ratio: uniform {overhead_ratio_uniform:.1}x, \
         skewed {overhead_ratio_skewed:.1}x"
    );
    println!("speculative/coarse throughput at t=4 (uniform): {spec_vs_coarse_t4:.2}x");
    println!(
        "acceptance ({}): {}",
        if single_core {
            "single-core host: >=5x lower per-op overhead than seed at t=1"
        } else {
            "multi-core host: speculative out-commits coarse at t=4"
        },
        if passed { "PASS" } else { "FAIL" }
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"options\": {{\"ops\": {ops}, \"seed_ops\": {seed_ops}, \"prefill\": {prefill}, \
         \"host_parallelism\": {host_threads}}},\n"
    ));
    json.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        json.push_str(&m.json());
        json.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"acceptance\": {{\"single_core_host\": {single_core}, \
         \"seed_over_speculative_per_op_uniform\": {overhead_ratio_uniform:.2}, \
         \"seed_over_speculative_per_op_skewed\": {overhead_ratio_skewed:.2}, \
         \"speculative_over_coarse_t4_uniform\": {spec_vs_coarse_t4:.3}, \
         \"passed\": {passed}}}\n"
    ));
    json.push('}');
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write JSON report");
        println!("wrote {path}");
    } else {
        println!("{json}");
    }
    assert!(passed, "acceptance criterion not met");
}
