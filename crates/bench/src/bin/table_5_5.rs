//! Table 5.5: after commutativity conditions on AssociationList and HashTable.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.5 — After Commutativity Conditions on AssociationList and HashTable");
    println!(
        "{}",
        report::condition_table(InterfaceId::Map, ConditionKind::After)
    );
}
