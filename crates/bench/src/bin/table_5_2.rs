//! Table 5.2: before commutativity conditions on ListSet and HashSet.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.2 — Before Commutativity Conditions on ListSet and HashSet");
    println!(
        "{}",
        report::condition_table(InterfaceId::Set, ConditionKind::Before)
    );
}
