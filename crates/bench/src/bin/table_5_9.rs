//! Table 5.9: proof-language commands for the hard ArrayList testing methods.

use semcommute_bench::banner;
use semcommute_core::hints::hint_summary;
use semcommute_core::report;

fn main() {
    banner("Table 5.9 — Additional Proof Language Commands for the Hard ArrayList Methods");
    println!("{}", report::hint_table(&hint_summary()));
    println!(
        "Paper reference: 57 methods, 128 note + 51 assuming + 22 pickWitness = 201 commands."
    );
}
