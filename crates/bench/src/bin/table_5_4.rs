//! Table 5.4: before commutativity conditions on AssociationList and HashTable.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.4 — Before Commutativity Conditions on AssociationList and HashTable");
    println!(
        "{}",
        report::condition_table(InterfaceId::Map, ConditionKind::Before)
    );
}
