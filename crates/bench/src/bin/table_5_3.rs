//! Table 5.3: between commutativity conditions on ListSet and HashSet.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.3 — Between Commutativity Conditions on ListSet and HashSet");
    println!(
        "{}",
        report::condition_table(InterfaceId::Set, ConditionKind::Between)
    );
}
