//! Machine-readable performance snapshot of the verification pipeline.
//!
//! Runs the catalog verification (all four interfaces) and prints a JSON
//! report — wall-clock, obligations/sec, models checked, and dedup-cache
//! hits per interface — to stdout. With `--out FILE` the report is also
//! written to `FILE` (conventionally `BENCH_<label>.json` at the repo root),
//! so successive changes leave a comparable perf trail in version control.
//!
//! ```text
//! cargo run --release -p semcommute-bench --bin perf_json -- [limit] \
//!     [--seq-len N] [--threads N] [--prover-threads N] [--out FILE]
//! ```

use semcommute_bench::{perf_report_json, run_catalog_verification};
use semcommute_core::verify::VerifyOptions;

fn main() {
    let mut options = VerifyOptions::default();
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seq-len" => {
                options.seq_len = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seq-len needs a number");
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--prover-threads" => {
                options.prover_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--prover-threads needs a number");
            }
            "--out" => {
                out_path = Some(args.next().expect("--out needs a path"));
            }
            other => options.limit = Some(other.parse().expect("numeric limit expected")),
        }
    }

    let catalog = run_catalog_verification(&options);
    let json = perf_report_json(&catalog, &options);
    println!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, format!("{json}\n")).expect("writing the JSON report failed");
        eprintln!("wrote {path}");
    }
}
