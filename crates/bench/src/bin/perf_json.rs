//! Machine-readable performance snapshot of the verification pipeline.
//!
//! Runs the catalog verification (all four interfaces) and prints a JSON
//! report — wall-clock, obligations/sec, models checked, and dedup-cache
//! hits per interface — to stdout. With `--out FILE` the report is also
//! written to `FILE` (conventionally `BENCH_<label>.json` at the repo root),
//! so successive changes leave a comparable perf trail in version control.
//!
//! ```text
//! cargo run --release -p semcommute-bench --bin perf_json -- [limit] \
//!     [--seq-len N] [--threads N] [--threads-list N,M,...] \
//!     [--split-threshold N] [--orbit on|off|both] \
//!     [--evaluator tree|bytecode|both] [--out FILE]
//! ```
//!
//! `--threads-list 1,4` runs the catalog once per listed scheduler width and
//! emits one `{"runs": [...]}` document containing every measurement — the
//! shape of the committed `BENCH_pr3.json` snapshot. `--orbit both` crosses
//! the listed widths with the orbit-canonical and the unreduced enumerator,
//! which is how `BENCH_pr4.json` records the reduction's effect at both
//! widths in one document. `--evaluator both` further crosses every
//! combination with the batched bytecode backend and the tree-walk
//! reference evaluator — the shape of `BENCH_pr6.json`, which records the
//! bytecode speedup against the tree walk on identical workloads.

use std::path::Path;

use semcommute_bench::{
    parse_evaluator, parse_orbit, perf_report_json, perf_report_json_runs, run_catalog_verification,
};
use semcommute_core::verify::VerifyOptions;

const USAGE: &str = "\
usage: perf_json [LIMIT] [--seq-len N] [--threads N | --threads-list N,M,...]
                 [--split-threshold N] [--orbit on|off|both]
                 [--evaluator tree|bytecode|both] [--out FILE]

  LIMIT               verify only the first LIMIT conditions per interface
  --seq-len N         ArrayList sequence scope (default 4)
  --threads N         work-stealing scheduler width for a single run
  --threads-list N,M  one run per width, emitted as one {\"runs\": [...]} doc
  --split-threshold N unreduced-space size above which one obligation's
                      model search splits into stealable range tasks
  --orbit on|off|both orbit-canonical vs. unreduced enumeration (`both`
                      measures every width under each, in one doc)
  --evaluator WHICH   batched bytecode backend (default) vs. the tree-walk
                      reference evaluator; `both` crosses every combination
  --out FILE          also write the JSON report to FILE";

fn fail(message: &str) -> ! {
    eprintln!("error: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut options = VerifyOptions::default();
    let mut out_path: Option<String> = None;
    let mut threads_list: Option<Vec<usize>> = None;
    let mut threads_flag_set = false;
    let mut orbit_both = false;
    let mut evaluator_both = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orbit" => match args.next().as_deref() {
                Some("both") => orbit_both = true,
                Some(value) => match parse_orbit(value) {
                    Some(orbit) => {
                        // Last one wins, like every other repeated flag.
                        options.orbit = orbit;
                        orbit_both = false;
                    }
                    None => fail("--orbit needs `on`, `off`, or `both`"),
                },
                None => fail("--orbit needs `on`, `off`, or `both`"),
            },
            "--evaluator" => match args.next().as_deref() {
                Some("both") => evaluator_both = true,
                Some(value) => match parse_evaluator(value) {
                    Some(bytecode) => {
                        // Last one wins, like every other repeated flag.
                        options.bytecode = bytecode;
                        evaluator_both = false;
                    }
                    None => fail("--evaluator needs `tree`, `bytecode`, or `both`"),
                },
                None => fail("--evaluator needs `tree`, `bytecode`, or `both`"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--seq-len" => {
                options.seq_len = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--seq-len needs a number"));
            }
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--threads needs a number"));
                threads_flag_set = true;
            }
            "--threads-list" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| fail("--threads-list needs a comma-separated list"));
                let parsed: Option<Vec<usize>> =
                    list.split(',').map(|v| v.trim().parse().ok()).collect();
                match parsed {
                    Some(values) if !values.is_empty() => threads_list = Some(values),
                    _ => fail("--threads-list needs a comma-separated list of numbers"),
                }
            }
            "--split-threshold" => {
                options.split_threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--split-threshold needs a number"));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| fail("--out needs a path")));
            }
            other => {
                options.limit = Some(other.parse().unwrap_or_else(|_| {
                    fail(&format!(
                        "unrecognized argument `{other}` (expected a numeric limit)"
                    ))
                }));
            }
        }
    }

    if threads_list.is_some() && threads_flag_set {
        fail("--threads and --threads-list are mutually exclusive");
    }

    // Reject an unwritable --out before spending minutes on the measurement.
    if let Some(path) = &out_path {
        let parent = Path::new(path).parent().unwrap_or_else(|| Path::new(""));
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            fail(&format!(
                "--out {path}: parent directory `{}` does not exist",
                parent.display()
            ));
        }
        // Probe that the path itself is writable (read-only directory, path
        // is a directory, permissions): create-or-append touches the file
        // without truncating whatever snapshot is already there. A file the
        // probe itself created is removed again so an interrupted run never
        // leaves a zero-byte snapshot behind.
        let existed = Path::new(path).exists();
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Err(e) => fail(&format!("--out {path} is not writable: {e}")),
            Ok(_) => {
                if !existed {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }

    let orbit_modes: Vec<bool> = if orbit_both {
        vec![true, false]
    } else {
        vec![options.orbit]
    };
    let evaluator_modes: Vec<bool> = if evaluator_both {
        vec![true, false]
    } else {
        vec![options.bytecode]
    };
    let json = if threads_list.is_some() || orbit_both || evaluator_both {
        let widths = threads_list.unwrap_or_else(|| vec![options.threads]);
        let mut runs = Vec::new();
        for &bytecode in &evaluator_modes {
            for &orbit in &orbit_modes {
                for &threads in &widths {
                    let run_options = VerifyOptions {
                        threads,
                        orbit,
                        bytecode,
                        ..options.clone()
                    };
                    // Reset this thread's term arena between runs so a
                    // later run's keying is not warmed by an earlier run —
                    // each measurement matches what a standalone
                    // cold-process `--threads N` run would see. (Keying
                    // happens on the workers, but the sequential baseline
                    // keys here.)
                    semcommute_logic::with_arena(|arena| arena.clear());
                    let catalog = run_catalog_verification(&run_options);
                    runs.push((run_options, catalog));
                }
            }
        }
        perf_report_json_runs(&runs)
    } else {
        let catalog = run_catalog_verification(&options);
        perf_report_json(&catalog, &options)
    };
    println!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            fail(&format!("writing {path} failed: {e}"));
        }
        eprintln!("wrote {path}");
    }
}
