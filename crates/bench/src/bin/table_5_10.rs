//! Table 5.10: inverse operations, verified.

use semcommute_bench::banner;
use semcommute_core::inverse::{inverse_catalog, verify_inverse};
use semcommute_core::report;
use semcommute_core::verify::scope_for;
use semcommute_prover::Portfolio;

fn main() {
    banner("Table 5.10 — Inverse Operations");
    println!("{}", report::inverse_table());
    println!("Verifying the eight inverse testing methods:");
    let mut verified = 0;
    for inverse in inverse_catalog() {
        let prover = Portfolio::new(scope_for(inverse.interface, 4));
        let verdict = verify_inverse(&inverse, &prover);
        println!(
            "  {:<62} {}",
            inverse.to_string(),
            if verdict.is_valid() {
                "verified"
            } else {
                "FAILED"
            }
        );
        if verdict.is_valid() {
            verified += 1;
        }
    }
    println!("\n{verified}/8 inverse testing methods verified (paper: 8/8, all as generated).");
}
