//! Table 5.8: commutativity testing method verification times.
//!
//! Generates and verifies all 1530 testing methods (soundness and
//! completeness for each of the 765 conditions, counted per data structure)
//! and prints the per-structure verification time. Accepts an optional
//! per-interface condition limit, `--seq-len N`, and `--threads N`.

use semcommute_bench::{banner, parse_options, print_verification_table, run_full_verification};

fn main() {
    banner("Table 5.8 — Commutativity Testing Method Verification Times");
    let options = parse_options();
    println!(
        "threads: {}, ArrayList sequence scope: {}, limit: {:?}\n",
        options.threads, options.seq_len, options.limit
    );
    let reports = run_full_verification(&options);
    print_verification_table(&reports);
    let failing: usize = reports.iter().map(|r| r.failures().len()).sum();
    println!("unverified conditions: {failing}");
    let (structural, finite): (usize, usize) = reports.iter().fold((0, 0), |acc, r| {
        let (s, f) = r.prover_breakdown();
        (acc.0 + s, acc.1 + f)
    });
    println!("methods decided structurally: {structural}, via finite-model search: {finite}");
}
