//! Table 5.1: before/between/after commutativity conditions on Accumulator.

use semcommute_bench::banner;
use semcommute_core::{report, ConditionKind};
use semcommute_spec::InterfaceId;

fn main() {
    banner("Table 5.1 — Before/Between/After Commutativity Conditions on Accumulator");
    for kind in ConditionKind::ALL {
        println!(
            "{}",
            report::condition_table(InterfaceId::Accumulator, kind)
        );
    }
}
