//! A faithful port of the *seed* speculative runtime, kept as a measurement
//! reference.
//!
//! The production [`semcommute_runtime::SpeculativeRuntime`] replaced the
//! seed's hot path (one global structure mutex + one flat shared operation
//! log + a full abstract-state clone recorded per operation) with the sharded
//! in-flight index, pre-state projections, and per-transaction logs. To
//! measure what that bought *on the same host in the same run*, this module
//! preserves the seed engine exactly as it was:
//!
//! * every operation takes the global structure lock **and** the global log
//!   lock, and holds both through admission;
//! * admission builds a [`ConditionContext`] per logged entry, cloning the
//!   entry's full recorded `AbstractState`;
//! * every executed operation records `structure.abstract_state()` — an
//!   O(structure size) eager clone — as its pre-state;
//! * commit and abort rescan the whole shared log
//!   (`remove_transaction`-style retain-and-clone).
//!
//! The `runtime_perf` binary drives identical workloads through this engine
//! and the production engine and reports the per-operation overhead ratio in
//! `BENCH_pr7.json`.

use std::sync::Arc;

use parking_lot::Mutex;
use semcommute_core::concrete::{evaluate, ConditionContext};
use semcommute_core::{
    interface_catalog, inverse_catalog, CommutativityCondition, ConditionKind, InverseOperation,
};
use semcommute_logic::Value;
use semcommute_runtime::structure::AnyStructure;
use semcommute_spec::{AbstractState, InterfaceId};
use std::collections::HashMap;

/// The seed's log entry: the pre-state is a full eager [`AbstractState`]
/// clone, recorded unconditionally for every operation.
#[derive(Debug, Clone)]
struct SeedEntry {
    txn: u64,
    op: String,
    args: Vec<Value>,
    result: Option<Value>,
    pre_state: AbstractState,
}

/// The seed's gatekeeper: per-entry [`ConditionContext`] construction (full
/// state clone included) and the original `unwrap_or(false)` error masking.
struct SeedGatekeeper {
    conditions: HashMap<(String, String), CommutativityCondition>,
}

impl SeedGatekeeper {
    fn new(interface: InterfaceId) -> SeedGatekeeper {
        let mut conditions = HashMap::new();
        for condition in interface_catalog(interface) {
            if condition.kind == ConditionKind::Between
                && condition.first.recorded
                && condition.second.recorded
            {
                conditions.insert(
                    (condition.first.op.clone(), condition.second.op.clone()),
                    condition,
                );
            }
        }
        SeedGatekeeper { conditions }
    }

    fn admits(&self, entries: &[SeedEntry], txn: u64, op: &str, args: &[Value]) -> bool {
        entries.iter().filter(|e| e.txn != txn).all(|logged| {
            let Some(condition) = self.conditions.get(&(logged.op.clone(), op.to_string())) else {
                return false;
            };
            let ctx = ConditionContext {
                first_args: logged.args.clone(),
                second_args: args.to_vec(),
                initial_state: Some(logged.pre_state.clone()),
                intermediate_state: None,
                final_state: None,
                first_result: logged.result.clone(),
                second_result: None,
            };
            evaluate(condition, &ctx).unwrap_or(false)
        })
    }
}

struct SeedShared {
    structure: Mutex<AnyStructure>,
    log: Mutex<Vec<SeedEntry>>,
    gatekeeper: SeedGatekeeper,
    inverses: HashMap<String, InverseOperation>,
    stats: Mutex<SeedStats>,
}

/// Commit/abort/operation counters of a [`SeedRuntime`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SeedStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Operations executed.
    pub operations: u64,
}

/// The seed speculative runtime (see the module docs).
#[derive(Clone)]
pub struct SeedRuntime {
    shared: Arc<SeedShared>,
}

impl SeedRuntime {
    /// Wraps a concrete structure, seed style.
    pub fn new(structure: AnyStructure) -> SeedRuntime {
        let interface = structure.interface();
        SeedRuntime {
            shared: Arc::new(SeedShared {
                structure: Mutex::new(structure),
                log: Mutex::new(Vec::new()),
                gatekeeper: SeedGatekeeper::new(interface),
                inverses: inverse_catalog()
                    .into_iter()
                    .filter(|inv| inv.interface == interface)
                    .map(|inv| (inv.op.clone(), inv))
                    .collect(),
                stats: Mutex::new(SeedStats::default()),
            }),
        }
    }

    /// Runs one transaction of the given operations, retrying the whole
    /// script on conflict (seed discipline: abort, roll back, try again).
    /// Returns `true` once committed, `false` if the retry budget ran out.
    pub fn run_transaction(&self, txn: u64, script: &[(&str, Vec<Value>)], retries: usize) -> bool {
        let shared = &self.shared;
        'attempts: for _ in 0..=retries {
            let mut executed = 0usize;
            for (op, args) in script {
                // Seed hot path: structure lock, then log lock, held through
                // admission and apply.
                let mut structure = shared.structure.lock();
                let mut log = shared.log.lock();
                if !shared.gatekeeper.admits(&log, txn, op, args) {
                    drop(log);
                    self.undo(&mut structure, txn);
                    shared.stats.lock().aborts += 1;
                    drop(structure);
                    std::thread::yield_now();
                    continue 'attempts;
                }
                let pre_state = structure.abstract_state();
                let result = structure
                    .apply(op, args)
                    .expect("benchmark scripts are dispatch-valid");
                log.push(SeedEntry {
                    txn,
                    op: (*op).to_string(),
                    args: args.clone(),
                    result,
                    pre_state,
                });
                shared.stats.lock().operations += 1;
                executed += 1;
            }
            debug_assert_eq!(executed, script.len());
            // Commit: full-log retain-and-clone under both locks.
            let _structure = shared.structure.lock();
            shared.log.lock().retain(|e| e.txn != txn);
            shared.stats.lock().commits += 1;
            return true;
        }
        false
    }

    /// Seed rollback: extract this transaction's entries from the shared log
    /// (full scan) and undo them newest-first with the verified inverses.
    fn undo(&self, structure: &mut AnyStructure, txn: u64) {
        let mut mine = Vec::new();
        self.shared.log.lock().retain(|e| {
            if e.txn == txn {
                mine.push(e.clone());
                false
            } else {
                true
            }
        });
        for entry in mine.iter().rev() {
            let Some(inverse) = self.shared.inverses.get(&entry.op) else {
                continue;
            };
            let Some((op, args)) = inverse.concrete_call(&entry.args, entry.result.as_ref()) else {
                continue;
            };
            structure
                .apply(&op, &args)
                .expect("verified inverses always apply");
        }
    }

    /// The current abstract state.
    pub fn snapshot(&self) -> AbstractState {
        self.shared.structure.lock().abstract_state()
    }

    /// Counters so far.
    pub fn stats(&self) -> SeedStats {
        *self.shared.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_runtime_commits_disjoint_transactions() {
        let rt = SeedRuntime::new(AnyStructure::by_name("HashSet").unwrap());
        assert!(rt.run_transaction(1, &[("add", vec![Value::elem(1)])], 4));
        assert!(rt.run_transaction(2, &[("add", vec![Value::elem(2)])], 4));
        let stats = rt.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.operations, 2);
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set(
                [semcommute_logic::ElemId(1), semcommute_logic::ElemId(2)]
                    .into_iter()
                    .collect()
            )
        );
    }
}
