//! Abstract data structure states.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use semcommute_logic::{ElemId, Sort, Value};

/// The abstract state of a data structure, as used by the specifications.
///
/// This is the state the paper's commutativity conditions and inverse
/// operations are phrased over: a counter value for `Accumulator`, a set of
/// objects for `ListSet` / `HashSet`, a key→value map for `AssociationList` /
/// `HashTable`, and a sequence for `ArrayList`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbstractState {
    /// The counter value of an `Accumulator`.
    Counter(i64),
    /// The contents of a set data structure.
    Set(BTreeSet<ElemId>),
    /// The contents of a map data structure.
    Map(BTreeMap<ElemId, ElemId>),
    /// The contents of an `ArrayList`.
    List(Vec<ElemId>),
}

impl AbstractState {
    /// An empty state of the given sort (the state of a freshly constructed
    /// data structure).
    pub fn empty(sort: Sort) -> Option<AbstractState> {
        match sort {
            Sort::Int => Some(AbstractState::Counter(0)),
            Sort::Set => Some(AbstractState::Set(BTreeSet::new())),
            Sort::Map => Some(AbstractState::Map(BTreeMap::new())),
            Sort::Seq => Some(AbstractState::List(Vec::new())),
            _ => None,
        }
    }

    /// The logical sort of this state.
    pub fn sort(&self) -> Sort {
        match self {
            AbstractState::Counter(_) => Sort::Int,
            AbstractState::Set(_) => Sort::Set,
            AbstractState::Map(_) => Sort::Map,
            AbstractState::List(_) => Sort::Seq,
        }
    }

    /// The state as a value of the specification logic.
    pub fn to_value(&self) -> Value {
        match self {
            AbstractState::Counter(c) => Value::Int(*c),
            AbstractState::Set(s) => Value::Set(s.clone().into()),
            AbstractState::Map(m) => Value::Map(m.clone().into()),
            AbstractState::List(l) => Value::Seq(l.clone().into()),
        }
    }

    /// Reconstructs a state from a logical value.
    pub fn from_value(value: &Value) -> Option<AbstractState> {
        match value {
            Value::Int(c) => Some(AbstractState::Counter(*c)),
            Value::Set(s) => Some(AbstractState::Set(s.to_inner())),
            Value::Map(m) => Some(AbstractState::Map(m.to_inner())),
            Value::Seq(l) => Some(AbstractState::List(l.to_inner())),
            _ => None,
        }
    }

    /// The number of entries (the `size` abstract variable of the paper's
    /// specifications; the counter value for `Accumulator`).
    pub fn size(&self) -> i64 {
        match self {
            AbstractState::Counter(c) => *c,
            AbstractState::Set(s) => s.len() as i64,
            AbstractState::Map(m) => m.len() as i64,
            AbstractState::List(l) => l.len() as i64,
        }
    }

    /// Returns `true` if the state contains no `null` objects — the data
    /// structure representation invariant shared by every structure in the
    /// paper (operation preconditions require non-null arguments).
    pub fn null_free(&self) -> bool {
        match self {
            AbstractState::Counter(_) => true,
            AbstractState::Set(s) => s.iter().all(|e| !e.is_null()),
            AbstractState::Map(m) => m.iter().all(|(k, v)| !k.is_null() && !v.is_null()),
            AbstractState::List(l) => l.iter().all(|e| !e.is_null()),
        }
    }
}

impl fmt::Display for AbstractState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_value())
    }
}

impl From<AbstractState> for Value {
    fn from(s: AbstractState) -> Value {
        s.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_states_have_size_zero() {
        for sort in [Sort::Int, Sort::Set, Sort::Map, Sort::Seq] {
            let s = AbstractState::empty(sort).unwrap();
            assert_eq!(s.size(), 0);
            assert_eq!(s.sort(), sort);
            assert!(s.null_free());
        }
        assert!(AbstractState::empty(Sort::Bool).is_none());
    }

    #[test]
    fn value_round_trip() {
        let states = [
            AbstractState::Counter(7),
            AbstractState::Set([ElemId(1), ElemId(2)].into_iter().collect()),
            AbstractState::Map([(ElemId(1), ElemId(9))].into_iter().collect()),
            AbstractState::List(vec![ElemId(3), ElemId(3)]),
        ];
        for s in states {
            let v = s.to_value();
            assert_eq!(AbstractState::from_value(&v), Some(s.clone()));
            assert_eq!(Value::from(s.clone()), v);
        }
        assert_eq!(AbstractState::from_value(&Value::Bool(true)), None);
    }

    #[test]
    fn size_counts_entries() {
        assert_eq!(AbstractState::Counter(-4).size(), -4);
        assert_eq!(
            AbstractState::Set([ElemId(1), ElemId(2)].into_iter().collect()).size(),
            2
        );
        assert_eq!(AbstractState::List(vec![ElemId(1)]).size(), 1);
    }

    #[test]
    fn null_free_detects_null_entries() {
        use semcommute_logic::NULL_ELEM;
        assert!(!AbstractState::Set([NULL_ELEM].into_iter().collect()).null_free());
        assert!(!AbstractState::Map([(ElemId(1), NULL_ELEM)].into_iter().collect()).null_free());
        assert!(!AbstractState::List(vec![NULL_ELEM]).null_free());
        assert!(AbstractState::List(vec![ElemId(1)]).null_free());
    }

    #[test]
    fn display_matches_value_display() {
        let s = AbstractState::Set([ElemId(1)].into_iter().collect());
        assert_eq!(s.to_string(), "{o1}");
    }
}
