//! Abstract data structure specifications for `semcommute`.
//!
//! The paper's technique reasons about the *abstract* state of verified linked
//! data structure implementations: a `HashSet`'s abstract state is the set of
//! objects it contains, a `HashTable`'s is the key→value map, an `ArrayList`'s
//! is the sequence of stored objects, and an `Accumulator`'s is its counter
//! value. Every operation is specified by a precondition and a postcondition
//! over that abstract state (Figure 2-1 of the paper shows the Jahob
//! specification of `HashSet`).
//!
//! This crate provides:
//!
//! * [`AbstractState`] — the four abstract state shapes,
//! * [`OpSpec`] / [`InterfaceSpec`] — machine-readable operation
//!   specifications, written as terms of the specification logic
//!   (`semcommute-logic`). Each operation has a precondition, a *functional*
//!   postcondition (the new abstract state as a term over the old state and
//!   the arguments), and a result term; a Jahob-style relational `ensures`
//!   string is attached for documentation fidelity,
//! * the four concrete interfaces used in the paper's evaluation
//!   ([`accumulator_interface`], [`set_interface`], [`map_interface`],
//!   [`list_interface`]), and
//! * [`exec`] — an executable abstract interpreter that applies an operation
//!   to an abstract state by evaluating its specification terms. This is the
//!   single source of truth: the verifier, the conformance tests of the
//!   concrete implementations, and the speculative runtime all use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod interface;
pub mod interfaces;
pub mod state;

pub use exec::{apply_op, ExecError};
pub use interface::{InterfaceId, InterfaceSpec, OpSpec, STATE_VAR};
pub use interfaces::accumulator::accumulator_interface;
pub use interfaces::list::list_interface;
pub use interfaces::map::map_interface;
pub use interfaces::set::set_interface;
pub use interfaces::{all_interfaces, interface_by_id};
pub use state::AbstractState;
