//! The map interface implemented by `AssociationList` and `HashTable`.

use semcommute_logic::build::*;
use semcommute_logic::Sort;

use crate::interface::{InterfaceId, InterfaceSpec, OpSpec, STATE_VAR};

/// The map interface specification.
///
/// Operations (Chapter 5):
///
/// * `containsKey(k)` — returns `true` iff `k` is mapped,
/// * `get(k)` — returns the value for `k`, or `null` if unmapped,
/// * `put(k, v)` — maps `k` to `v`; returns the previous value or `null`,
/// * `remove(k)` — unmaps `k`; returns the previous value or `null`,
/// * `size()` — returns the number of key/value pairs.
pub fn map_interface() -> InterfaceSpec {
    let state = || var_map(STATE_VAR);
    let k = || var_elem("k");
    let v = || var_elem("v");
    InterfaceSpec {
        id: InterfaceId::Map,
        state_sort: Sort::Map,
        ops: vec![
            OpSpec::new("containsKey", Sort::Map)
                .param("k", Sort::Elem)
                .returns(Sort::Bool)
                .pre(neq(k(), null()))
                .result(map_has_key(state(), k()))
                .ensures("result = (EX v. (k, v) : contents)"),
            OpSpec::new("get", Sort::Map)
                .param("k", Sort::Elem)
                .returns(Sort::Elem)
                .pre(neq(k(), null()))
                .result(map_get(state(), k()))
                .ensures(
                    "((k, result) : contents & result ~= null) | \
                     (result = null & ~(EX v. (k, v) : contents))",
                ),
            OpSpec::new("put", Sort::Map)
                .param("k", Sort::Elem)
                .param("v", Sort::Elem)
                .returns(Sort::Elem)
                .pre(and2(neq(k(), null()), neq(v(), null())))
                .post(map_put(state(), k(), v()))
                .result(map_get(state(), k()))
                .ensures(
                    "contents = old contents - {(k, old contents k)} Un {(k, v)} & \
                     (result = old contents k | (result = null & k ~: dom (old contents)))",
                ),
            OpSpec::new("remove", Sort::Map)
                .param("k", Sort::Elem)
                .returns(Sort::Elem)
                .pre(neq(k(), null()))
                .post(map_remove(state(), k()))
                .result(map_get(state(), k()))
                .ensures(
                    "contents = old contents - {(k, old contents k)} & \
                     (result = old contents k | (result = null & k ~: dom (old contents)))",
                ),
            OpSpec::new("size", Sort::Map)
                .returns(Sort::Int)
                .result(map_size(state()))
                .ensures("result = size"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::apply_op;
    use crate::state::AbstractState;
    use semcommute_logic::{ElemId, Value};

    fn map_of(pairs: &[(u32, u32)]) -> AbstractState {
        AbstractState::Map(pairs.iter().map(|&(k, v)| (ElemId(k), ElemId(v))).collect())
    }

    #[test]
    fn put_returns_previous_value_or_null() {
        let iface = map_interface();
        let s0 = map_of(&[]);
        let (s1, r1) = apply_op(&iface, &s0, "put", &[Value::elem(1), Value::elem(10)]).unwrap();
        assert_eq!(s1, map_of(&[(1, 10)]));
        assert_eq!(r1, Some(Value::null()));
        let (s2, r2) = apply_op(&iface, &s1, "put", &[Value::elem(1), Value::elem(20)]).unwrap();
        assert_eq!(s2, map_of(&[(1, 20)]));
        assert_eq!(r2, Some(Value::elem(10)));
    }

    #[test]
    fn remove_returns_previous_value_or_null() {
        let iface = map_interface();
        let s0 = map_of(&[(1, 10), (2, 20)]);
        let (s1, r1) = apply_op(&iface, &s0, "remove", &[Value::elem(1)]).unwrap();
        assert_eq!(s1, map_of(&[(2, 20)]));
        assert_eq!(r1, Some(Value::elem(10)));
        let (s2, r2) = apply_op(&iface, &s1, "remove", &[Value::elem(1)]).unwrap();
        assert_eq!(s2, map_of(&[(2, 20)]));
        assert_eq!(r2, Some(Value::null()));
    }

    #[test]
    fn get_and_contains_key_and_size() {
        let iface = map_interface();
        let s0 = map_of(&[(1, 10)]);
        let (_, r) = apply_op(&iface, &s0, "get", &[Value::elem(1)]).unwrap();
        assert_eq!(r, Some(Value::elem(10)));
        let (_, r) = apply_op(&iface, &s0, "get", &[Value::elem(2)]).unwrap();
        assert_eq!(r, Some(Value::null()));
        let (_, r) = apply_op(&iface, &s0, "containsKey", &[Value::elem(1)]).unwrap();
        assert_eq!(r, Some(Value::Bool(true)));
        let (_, r) = apply_op(&iface, &s0, "size", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(1)));
    }

    #[test]
    fn null_keys_and_values_violate_preconditions() {
        let iface = map_interface();
        let s0 = map_of(&[]);
        assert!(apply_op(&iface, &s0, "get", &[Value::null()]).is_err());
        assert!(apply_op(&iface, &s0, "put", &[Value::null(), Value::elem(1)]).is_err());
        assert!(apply_op(&iface, &s0, "put", &[Value::elem(1), Value::null()]).is_err());
        assert!(apply_op(&iface, &s0, "remove", &[Value::null()]).is_err());
    }

    #[test]
    fn interface_shape_matches_the_paper() {
        let iface = map_interface();
        assert_eq!(iface.ops.len(), 5);
        assert_eq!(iface.update_ops().len(), 2);
        assert_eq!(
            iface.id.implementations(),
            &["AssociationList", "HashTable"]
        );
    }
}
