//! The set interface implemented by `ListSet` and `HashSet`.

use semcommute_logic::build::*;
use semcommute_logic::Sort;

use crate::interface::{InterfaceId, InterfaceSpec, OpSpec, STATE_VAR};

/// The set interface specification (Figure 2-1 of the paper).
///
/// Operations (Chapter 5):
///
/// * `add(v)` — adds `v`; returns `false` if it was already present and
///   `true` otherwise,
/// * `contains(v)` — returns `true` iff `v` is in the set,
/// * `remove(v)` — removes `v`; returns `true` iff it was present,
/// * `size()` — returns the number of elements.
pub fn set_interface() -> InterfaceSpec {
    let state = || var_set(STATE_VAR);
    let v = || var_elem("v");
    InterfaceSpec {
        id: InterfaceId::Set,
        state_sort: Sort::Set,
        ops: vec![
            OpSpec::new("add", Sort::Set)
                .param("v", Sort::Elem)
                .returns(Sort::Bool)
                .pre(neq(v(), null()))
                .post(set_add(state(), v()))
                .result(not_member(v(), state()))
                .ensures(
                    "(v ~: old contents --> contents = old contents Un {v} & \
                     size = old size + 1 & result) & \
                     (v : old contents --> contents = old contents & \
                     size = old size & ~result)",
                ),
            OpSpec::new("contains", Sort::Set)
                .param("v", Sort::Elem)
                .returns(Sort::Bool)
                .pre(neq(v(), null()))
                .result(member(v(), state()))
                .ensures("result = (v : contents)"),
            OpSpec::new("remove", Sort::Set)
                .param("v", Sort::Elem)
                .returns(Sort::Bool)
                .pre(neq(v(), null()))
                .post(set_remove(state(), v()))
                .result(member(v(), state()))
                .ensures(
                    "(v : old contents --> contents = old contents - {v} & \
                     size = old size - 1 & result) & \
                     (v ~: old contents --> contents = old contents & \
                     size = old size & ~result)",
                ),
            OpSpec::new("size", Sort::Set)
                .returns(Sort::Int)
                .result(card(state()))
                .ensures("result = size"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::apply_op;
    use crate::state::AbstractState;
    use semcommute_logic::{ElemId, Value};

    fn set_of(ids: &[u32]) -> AbstractState {
        AbstractState::Set(ids.iter().map(|&i| ElemId(i)).collect())
    }

    #[test]
    fn add_reports_whether_the_element_was_new() {
        let iface = set_interface();
        let s0 = set_of(&[1]);
        let (s1, r1) = apply_op(&iface, &s0, "add", &[Value::elem(2)]).unwrap();
        assert_eq!(s1, set_of(&[1, 2]));
        assert_eq!(r1, Some(Value::Bool(true)));
        let (s2, r2) = apply_op(&iface, &s1, "add", &[Value::elem(2)]).unwrap();
        assert_eq!(s2, set_of(&[1, 2]));
        assert_eq!(r2, Some(Value::Bool(false)));
    }

    #[test]
    fn remove_reports_whether_the_element_was_present() {
        let iface = set_interface();
        let s0 = set_of(&[1, 2]);
        let (s1, r1) = apply_op(&iface, &s0, "remove", &[Value::elem(1)]).unwrap();
        assert_eq!(s1, set_of(&[2]));
        assert_eq!(r1, Some(Value::Bool(true)));
        let (s2, r2) = apply_op(&iface, &s1, "remove", &[Value::elem(1)]).unwrap();
        assert_eq!(s2, set_of(&[2]));
        assert_eq!(r2, Some(Value::Bool(false)));
    }

    #[test]
    fn contains_and_size_observe_without_updating() {
        let iface = set_interface();
        let s0 = set_of(&[1, 2, 3]);
        let (s1, r1) = apply_op(&iface, &s0, "contains", &[Value::elem(2)]).unwrap();
        assert_eq!(s1, s0);
        assert_eq!(r1, Some(Value::Bool(true)));
        let (_, r2) = apply_op(&iface, &s0, "contains", &[Value::elem(9)]).unwrap();
        assert_eq!(r2, Some(Value::Bool(false)));
        let (_, r3) = apply_op(&iface, &s0, "size", &[]).unwrap();
        assert_eq!(r3, Some(Value::Int(3)));
    }

    #[test]
    fn null_arguments_violate_preconditions() {
        let iface = set_interface();
        let s0 = set_of(&[]);
        for op in ["add", "contains", "remove"] {
            assert!(apply_op(&iface, &s0, op, &[Value::null()]).is_err());
        }
    }

    #[test]
    fn interface_shape_matches_the_paper() {
        let iface = set_interface();
        assert_eq!(iface.ops.len(), 4);
        assert_eq!(iface.update_ops().len(), 2);
        assert_eq!(iface.id.implementations(), &["ListSet", "HashSet"]);
    }
}
