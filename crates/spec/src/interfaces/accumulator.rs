//! The `Accumulator` interface: a counter that clients can increase and read.

use semcommute_logic::build::*;
use semcommute_logic::Sort;

use crate::interface::{InterfaceId, InterfaceSpec, OpSpec, STATE_VAR};

/// The `Accumulator` interface specification.
///
/// Operations (Chapter 5 of the paper):
///
/// * `increase(v)` — adds the number `v` to the counter,
/// * `read()` — returns the value in the counter.
pub fn accumulator_interface() -> InterfaceSpec {
    let state = || var_int(STATE_VAR);
    InterfaceSpec {
        id: InterfaceId::Accumulator,
        state_sort: Sort::Int,
        ops: vec![
            OpSpec::new("increase", Sort::Int)
                .param("v", Sort::Int)
                .post(add(state(), var_int("v")))
                .ensures("value = old value + v"),
            OpSpec::new("read", Sort::Int)
                .returns(Sort::Int)
                .result(state())
                .ensures("result = value"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::apply_op;
    use crate::state::AbstractState;
    use semcommute_logic::Value;

    #[test]
    fn increase_and_read() {
        let iface = accumulator_interface();
        let s0 = AbstractState::Counter(0);
        let (s1, r1) = apply_op(&iface, &s0, "increase", &[Value::Int(5)]).unwrap();
        assert_eq!(s1, AbstractState::Counter(5));
        assert_eq!(r1, None);
        let (s2, r2) = apply_op(&iface, &s1, "read", &[]).unwrap();
        assert_eq!(s2, s1);
        assert_eq!(r2, Some(Value::Int(5)));
    }

    #[test]
    fn increase_accepts_negative_amounts() {
        let iface = accumulator_interface();
        let s0 = AbstractState::Counter(3);
        let (s1, _) = apply_op(&iface, &s0, "increase", &[Value::Int(-7)]).unwrap();
        assert_eq!(s1, AbstractState::Counter(-4));
    }

    #[test]
    fn read_is_an_observer() {
        let iface = accumulator_interface();
        assert!(!iface.op("read").unwrap().updates_state);
        assert!(iface.op("increase").unwrap().updates_state);
        assert_eq!(iface.update_ops().len(), 1);
    }
}
