//! The `ArrayList` interface: a map from a dense integer range to objects.

use semcommute_logic::build::*;
use semcommute_logic::Sort;

use crate::interface::{InterfaceId, InterfaceSpec, OpSpec, STATE_VAR};

/// The `ArrayList` interface specification.
///
/// Operations (Chapter 5):
///
/// * `addAt(i, v)` — shifts every element at index ≥ `i` up one position and
///   stores `v` at index `i`,
/// * `get(i)` — returns the element at index `i`,
/// * `indexOf(v)` — returns the index of the first occurrence of `v`, or `-1`,
/// * `lastIndexOf(v)` — returns the index of the last occurrence of `v`, or `-1`,
/// * `removeAt(i)` — removes the element at index `i`, shifting higher
///   elements down; returns the removed element,
/// * `set(i, v)` — replaces the element at index `i` with `v`; returns the
///   replaced element,
/// * `size()` — returns the number of elements.
pub fn list_interface() -> InterfaceSpec {
    let state = || var_seq(STATE_VAR);
    let i = || var_int("i");
    let v = || var_elem("v");
    let index_in_range = |inclusive_upper: bool| {
        let upper = if inclusive_upper {
            le(i(), seq_len(state()))
        } else {
            lt(i(), seq_len(state()))
        };
        and2(le(int(0), i()), upper)
    };
    InterfaceSpec {
        id: InterfaceId::List,
        state_sort: Sort::Seq,
        ops: vec![
            OpSpec::new("addAt", Sort::Seq)
                .param("i", Sort::Int)
                .param("v", Sort::Elem)
                .pre(and2(index_in_range(true), neq(v(), null())))
                .post(seq_insert_at(state(), i(), v()))
                .ensures(
                    "contents = (old contents)[0..i] @ [v] @ (old contents)[i..] & \
                     size = old size + 1",
                ),
            OpSpec::new("get", Sort::Seq)
                .param("i", Sort::Int)
                .returns(Sort::Elem)
                .pre(index_in_range(false))
                .result(seq_at(state(), i()))
                .ensures("result = contents[i]"),
            OpSpec::new("indexOf", Sort::Seq)
                .param("v", Sort::Elem)
                .returns(Sort::Int)
                .pre(neq(v(), null()))
                .result(seq_index_of(state(), v()))
                .ensures(
                    "(result = -1 & ~(EX j. contents[j] = v)) | \
                     (contents[result] = v & (ALL j < result. contents[j] ~= v))",
                ),
            OpSpec::new("lastIndexOf", Sort::Seq)
                .param("v", Sort::Elem)
                .returns(Sort::Int)
                .pre(neq(v(), null()))
                .result(seq_last_index_of(state(), v()))
                .ensures(
                    "(result = -1 & ~(EX j. contents[j] = v)) | \
                     (contents[result] = v & (ALL j > result. contents[j] ~= v))",
                ),
            OpSpec::new("removeAt", Sort::Seq)
                .param("i", Sort::Int)
                .returns(Sort::Elem)
                .pre(index_in_range(false))
                .post(seq_remove_at(state(), i()))
                .result(seq_at(state(), i()))
                .ensures(
                    "contents = (old contents)[0..i] @ (old contents)[i+1..] & \
                     size = old size - 1 & result = (old contents)[i]",
                ),
            OpSpec::new("set", Sort::Seq)
                .param("i", Sort::Int)
                .param("v", Sort::Elem)
                .returns(Sort::Elem)
                .pre(and2(index_in_range(false), neq(v(), null())))
                .post(seq_set_at(state(), i(), v()))
                .result(seq_at(state(), i()))
                .ensures(
                    "contents = (old contents)[i := v] & size = old size & \
                     result = (old contents)[i]",
                ),
            OpSpec::new("size", Sort::Seq)
                .returns(Sort::Int)
                .result(seq_len(state()))
                .ensures("result = size"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::apply_op;
    use crate::state::AbstractState;
    use semcommute_logic::{ElemId, Value};

    fn list_of(ids: &[u32]) -> AbstractState {
        AbstractState::List(ids.iter().map(|&i| ElemId(i)).collect())
    }

    #[test]
    fn add_at_shifts_elements_up() {
        let iface = list_interface();
        let s0 = list_of(&[1, 2, 3]);
        let (s1, r) = apply_op(&iface, &s0, "addAt", &[Value::Int(1), Value::elem(9)]).unwrap();
        assert_eq!(s1, list_of(&[1, 9, 2, 3]));
        assert_eq!(r, None);
        // Appending at the end is allowed (index = size).
        let (s2, _) = apply_op(&iface, &s1, "addAt", &[Value::Int(4), Value::elem(7)]).unwrap();
        assert_eq!(s2, list_of(&[1, 9, 2, 3, 7]));
    }

    #[test]
    fn remove_at_shifts_elements_down_and_returns_removed() {
        let iface = list_interface();
        let s0 = list_of(&[1, 2, 3]);
        let (s1, r) = apply_op(&iface, &s0, "removeAt", &[Value::Int(0)]).unwrap();
        assert_eq!(s1, list_of(&[2, 3]));
        assert_eq!(r, Some(Value::elem(1)));
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let iface = list_interface();
        let s0 = list_of(&[1, 2, 3]);
        let (s1, r) = apply_op(&iface, &s0, "set", &[Value::Int(2), Value::elem(8)]).unwrap();
        assert_eq!(s1, list_of(&[1, 2, 8]));
        assert_eq!(r, Some(Value::elem(3)));
    }

    #[test]
    fn index_queries() {
        let iface = list_interface();
        let s0 = list_of(&[5, 6, 5]);
        let (_, r) = apply_op(&iface, &s0, "indexOf", &[Value::elem(5)]).unwrap();
        assert_eq!(r, Some(Value::Int(0)));
        let (_, r) = apply_op(&iface, &s0, "lastIndexOf", &[Value::elem(5)]).unwrap();
        assert_eq!(r, Some(Value::Int(2)));
        let (_, r) = apply_op(&iface, &s0, "indexOf", &[Value::elem(9)]).unwrap();
        assert_eq!(r, Some(Value::Int(-1)));
        let (_, r) = apply_op(&iface, &s0, "get", &[Value::Int(1)]).unwrap();
        assert_eq!(r, Some(Value::elem(6)));
        let (_, r) = apply_op(&iface, &s0, "size", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(3)));
    }

    #[test]
    fn out_of_range_indices_violate_preconditions() {
        let iface = list_interface();
        let s0 = list_of(&[1, 2]);
        assert!(apply_op(&iface, &s0, "get", &[Value::Int(2)]).is_err());
        assert!(apply_op(&iface, &s0, "get", &[Value::Int(-1)]).is_err());
        assert!(apply_op(&iface, &s0, "removeAt", &[Value::Int(5)]).is_err());
        // addAt accepts index == size but not beyond.
        assert!(apply_op(&iface, &s0, "addAt", &[Value::Int(2), Value::elem(1)]).is_ok());
        assert!(apply_op(&iface, &s0, "addAt", &[Value::Int(3), Value::elem(1)]).is_err());
        assert!(apply_op(&iface, &s0, "set", &[Value::Int(2), Value::elem(1)]).is_err());
    }

    #[test]
    fn interface_shape_matches_the_paper() {
        let iface = list_interface();
        assert_eq!(iface.ops.len(), 7);
        assert_eq!(iface.update_ops().len(), 3);
        assert_eq!(iface.id.implementations(), &["ArrayList"]);
    }
}
