//! The four abstract interfaces evaluated in the paper.
//!
//! * [`accumulator::accumulator_interface`] — the `Accumulator` counter,
//! * [`set::set_interface`] — the set interface of `ListSet` / `HashSet`,
//! * [`map::map_interface`] — the map interface of `AssociationList` /
//!   `HashTable`,
//! * [`list::list_interface`] — the integer-indexed map interface of
//!   `ArrayList`.

pub mod accumulator;
pub mod list;
pub mod map;
pub mod set;

use crate::interface::{InterfaceId, InterfaceSpec};

/// All four interface specifications, in the paper's order.
pub fn all_interfaces() -> Vec<InterfaceSpec> {
    vec![
        accumulator::accumulator_interface(),
        set::set_interface(),
        map::map_interface(),
        list::list_interface(),
    ]
}

/// Looks up an interface specification by id.
pub fn interface_by_id(id: InterfaceId) -> InterfaceSpec {
    match id {
        InterfaceId::Accumulator => accumulator::accumulator_interface(),
        InterfaceId::Set => set::set_interface(),
        InterfaceId::Map => map::map_interface(),
        InterfaceId::List => list::list_interface(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_counts_match_chapter_5() {
        // Chapter 5: "there are 2 operations for Accumulator, 6 for HashSet and
        // ListSet, 7 for HashTable and AssociationList, and 9 for ArrayList",
        // where updating operations with a return value are counted twice (a
        // recorded and a discarded variant). The *base* operation counts are
        // therefore 2, 4, 5, and 7.
        let counts: Vec<usize> = all_interfaces().iter().map(|i| i.ops.len()).collect();
        assert_eq!(counts, vec![2, 4, 5, 7]);
    }

    #[test]
    fn interface_by_id_round_trips() {
        for id in InterfaceId::ALL {
            assert_eq!(interface_by_id(id).id, id);
        }
    }

    #[test]
    fn every_operation_is_well_sorted() {
        use semcommute_logic::ty::sort_of;
        for iface in all_interfaces() {
            for op in &iface.ops {
                assert_eq!(
                    sort_of(&op.precondition).unwrap(),
                    semcommute_logic::Sort::Bool,
                    "{}::{} precondition",
                    iface.name(),
                    op.name
                );
                assert_eq!(
                    sort_of(&op.post_state).unwrap(),
                    iface.state_sort,
                    "{}::{} post-state",
                    iface.name(),
                    op.name
                );
                if let (Some(result), Some(expected)) = (&op.result, op.result_sort) {
                    assert_eq!(
                        sort_of(result).unwrap(),
                        expected,
                        "{}::{} result",
                        iface.name(),
                        op.name
                    );
                }
            }
        }
    }

    #[test]
    fn observers_do_not_update_and_updates_do() {
        for iface in all_interfaces() {
            for op in &iface.ops {
                if op.updates_state {
                    assert_ne!(
                        op.post_state,
                        semcommute_logic::Term::var(crate::STATE_VAR, iface.state_sort),
                        "{}::{} marked updating but leaves state unchanged",
                        iface.name(),
                        op.name
                    );
                }
            }
        }
    }

    #[test]
    fn every_operation_has_a_jahob_ensures_doc() {
        for iface in all_interfaces() {
            for op in &iface.ops {
                assert!(
                    !op.ensures_doc.is_empty(),
                    "{}::{} is missing its ensures documentation",
                    iface.name(),
                    op.name
                );
            }
        }
    }
}
