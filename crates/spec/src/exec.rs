//! Executable abstract semantics.
//!
//! An operation is applied to an abstract state by *evaluating its
//! specification*: the precondition is checked, and then the post-state and
//! result terms are evaluated under a model binding [`STATE_VAR`] to the
//! current state and the formal parameters to the supplied arguments. Because
//! the same specification terms drive the verifier, this interpreter is the
//! executable ground truth that concrete implementations are tested against
//! and that the speculative runtime uses as its reference semantics.

use std::fmt;

use semcommute_logic::{eval, eval_bool, Model, Value};

use crate::interface::{InterfaceSpec, OpSpec, STATE_VAR};
use crate::state::AbstractState;

/// An error applying an operation to an abstract state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The named operation does not exist on the interface.
    NoSuchOperation(String),
    /// The number of arguments does not match the operation's arity.
    ArityMismatch {
        /// Operation name.
        op: String,
        /// Expected number of arguments.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// The supplied state has the wrong sort for the interface.
    StateSortMismatch,
    /// The operation's precondition is violated.
    PreconditionViolated {
        /// Operation name.
        op: String,
        /// The precondition, printed in Jahob-like syntax.
        precondition: String,
    },
    /// Evaluating the specification failed (should not happen for the built-in
    /// interfaces; indicates an ill-formed custom specification).
    Evaluation(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoSuchOperation(op) => write!(f, "no such operation `{op}`"),
            ExecError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(f, "`{op}` expects {expected} arguments, got {found}"),
            ExecError::StateSortMismatch => write!(f, "abstract state has the wrong sort"),
            ExecError::PreconditionViolated { op, precondition } => {
                write!(f, "precondition of `{op}` violated: {precondition}")
            }
            ExecError::Evaluation(e) => write!(f, "specification evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Builds the evaluation model for an operation application.
fn op_model(op: &OpSpec, state: &AbstractState, args: &[Value]) -> Model {
    let mut m = Model::new();
    m.insert(STATE_VAR, state.to_value());
    for ((name, _), value) in op.params.iter().zip(args) {
        m.insert(name.clone(), value.clone());
    }
    m
}

/// Applies `op_name(args)` to `state`, returning the new abstract state and
/// the return value (`None` for `void` operations).
///
/// # Errors
///
/// Returns an [`ExecError`] if the operation does not exist, the arguments do
/// not match its arity, the state has the wrong sort, or the precondition is
/// violated.
pub fn apply_op(
    iface: &InterfaceSpec,
    state: &AbstractState,
    op_name: &str,
    args: &[Value],
) -> Result<(AbstractState, Option<Value>), ExecError> {
    let op = iface
        .op(op_name)
        .ok_or_else(|| ExecError::NoSuchOperation(op_name.to_string()))?;
    if args.len() != op.arity() {
        return Err(ExecError::ArityMismatch {
            op: op_name.to_string(),
            expected: op.arity(),
            found: args.len(),
        });
    }
    if state.sort() != iface.state_sort {
        return Err(ExecError::StateSortMismatch);
    }
    let model = op_model(op, state, args);
    let pre =
        eval_bool(&op.precondition, &model).map_err(|e| ExecError::Evaluation(e.to_string()))?;
    if !pre {
        return Err(ExecError::PreconditionViolated {
            op: op_name.to_string(),
            precondition: op.precondition.to_string(),
        });
    }
    let post_value =
        eval(&op.post_state, &model).map_err(|e| ExecError::Evaluation(e.to_string()))?;
    let new_state = AbstractState::from_value(&post_value).ok_or(ExecError::StateSortMismatch)?;
    let result = match &op.result {
        Some(r) => Some(eval(r, &model).map_err(|e| ExecError::Evaluation(e.to_string()))?),
        None => None,
    };
    Ok((new_state, result))
}

/// Checks whether the precondition of `op_name(args)` holds in `state`.
///
/// # Errors
///
/// Returns an [`ExecError`] if the operation does not exist or its arity does
/// not match.
pub fn precondition_holds(
    iface: &InterfaceSpec,
    state: &AbstractState,
    op_name: &str,
    args: &[Value],
) -> Result<bool, ExecError> {
    let op = iface
        .op(op_name)
        .ok_or_else(|| ExecError::NoSuchOperation(op_name.to_string()))?;
    if args.len() != op.arity() {
        return Err(ExecError::ArityMismatch {
            op: op_name.to_string(),
            expected: op.arity(),
            found: args.len(),
        });
    }
    let model = op_model(op, state, args);
    eval_bool(&op.precondition, &model).map_err(|e| ExecError::Evaluation(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interfaces::map::map_interface;
    use crate::interfaces::set::set_interface;
    use semcommute_logic::ElemId;

    #[test]
    fn unknown_operation_and_arity_errors() {
        let iface = set_interface();
        let s = AbstractState::empty(iface.state_sort).unwrap();
        assert!(matches!(
            apply_op(&iface, &s, "frobnicate", &[]),
            Err(ExecError::NoSuchOperation(_))
        ));
        assert!(matches!(
            apply_op(&iface, &s, "add", &[]),
            Err(ExecError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn wrong_state_sort_is_rejected() {
        let iface = set_interface();
        let map_state = AbstractState::Map(Default::default());
        assert!(matches!(
            apply_op(&iface, &map_state, "size", &[]),
            Err(ExecError::StateSortMismatch)
        ));
    }

    #[test]
    fn precondition_check_matches_apply() {
        let iface = map_interface();
        let s = AbstractState::empty(iface.state_sort).unwrap();
        assert!(precondition_holds(&iface, &s, "get", &[Value::elem(1)]).unwrap());
        assert!(!precondition_holds(&iface, &s, "get", &[Value::null()]).unwrap());
        assert!(apply_op(&iface, &s, "get", &[Value::null()]).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let iface = set_interface();
        let s = AbstractState::Set([ElemId(1)].into_iter().collect());
        let err = apply_op(&iface, &s, "add", &[Value::null()]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("precondition"));
        assert!(msg.contains("add"));
    }

    #[test]
    fn observers_preserve_state_exactly() {
        let iface = set_interface();
        let s = AbstractState::Set([ElemId(1), ElemId(4)].into_iter().collect());
        let (s2, _) = apply_op(&iface, &s, "size", &[]).unwrap();
        assert_eq!(s, s2);
    }
}
