//! Operation and interface specifications.

use std::fmt;

use semcommute_logic::subst::subst_map;
use semcommute_logic::{build, substitute, Sort, Term};

/// The name of the abstract-state variable used inside specification terms.
///
/// Specifications are written over this variable plus the operation's formal
/// parameters; [`OpSpec::instantiate_pre`] and friends substitute actual
/// state/argument terms for them.
pub const STATE_VAR: &str = "state";

/// Identifies one of the four abstract interfaces of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InterfaceId {
    /// The `Accumulator` counter interface.
    Accumulator,
    /// The set interface implemented by `ListSet` and `HashSet`.
    Set,
    /// The map interface implemented by `AssociationList` and `HashTable`.
    Map,
    /// The integer-indexed map interface implemented by `ArrayList`.
    List,
}

impl InterfaceId {
    /// All interfaces, in the order used by the paper's tables.
    pub const ALL: [InterfaceId; 4] = [
        InterfaceId::Accumulator,
        InterfaceId::Set,
        InterfaceId::Map,
        InterfaceId::List,
    ];

    /// The names of the concrete data structures implementing this interface
    /// in the paper.
    pub fn implementations(self) -> &'static [&'static str] {
        match self {
            InterfaceId::Accumulator => &["Accumulator"],
            InterfaceId::Set => &["ListSet", "HashSet"],
            InterfaceId::Map => &["AssociationList", "HashTable"],
            InterfaceId::List => &["ArrayList"],
        }
    }
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterfaceId::Accumulator => "Accumulator",
            InterfaceId::Set => "Set",
            InterfaceId::Map => "Map",
            InterfaceId::List => "ArrayList",
        };
        f.write_str(s)
    }
}

/// The specification of one data structure operation.
///
/// The specification is *functional*: `post_state` and `result` are terms
/// denoting the new abstract state and the return value as functions of the
/// old state (the variable [`STATE_VAR`]) and the formal parameters. The
/// equivalent Jahob-style relational `ensures` clause is carried verbatim in
/// [`OpSpec::ensures_doc`] for documentation and table output.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    /// The operation name (e.g. `"add"`, `"put"`, `"removeAt"`).
    pub name: String,
    /// Formal parameters (name and sort), excluding the receiver.
    pub params: Vec<(String, Sort)>,
    /// The sort of the return value, or `None` for `void` operations.
    pub result_sort: Option<Sort>,
    /// Whether the operation may change the abstract state.
    pub updates_state: bool,
    /// Precondition over [`STATE_VAR`] and the parameters.
    pub precondition: Term,
    /// The new abstract state as a term over [`STATE_VAR`] and the parameters.
    /// Equal to `Var(STATE_VAR)` for pure observers.
    pub post_state: Term,
    /// The return value as a term over the *old* state and parameters;
    /// `None` for `void` operations.
    pub result: Option<Term>,
    /// The Jahob-style relational `ensures` clause, as written in the paper's
    /// specifications (documentation only).
    pub ensures_doc: String,
}

impl OpSpec {
    /// Starts building a specification for a named operation on a state of
    /// the given sort. By default the operation has no parameters, no return
    /// value, a `true` precondition, and leaves the state unchanged.
    pub fn new(name: impl Into<String>, state_sort: Sort) -> OpSpec {
        OpSpec {
            name: name.into(),
            params: Vec::new(),
            result_sort: None,
            updates_state: false,
            precondition: build::tru(),
            post_state: Term::var(STATE_VAR, state_sort),
            result: None,
            ensures_doc: String::new(),
        }
    }

    /// Adds a formal parameter.
    pub fn param(mut self, name: &str, sort: Sort) -> OpSpec {
        self.params.push((name.to_string(), sort));
        self
    }

    /// Declares the return sort.
    pub fn returns(mut self, sort: Sort) -> OpSpec {
        self.result_sort = Some(sort);
        self
    }

    /// Sets the precondition.
    pub fn pre(mut self, precondition: Term) -> OpSpec {
        self.precondition = precondition;
        self
    }

    /// Sets the post-state term and marks the operation as updating.
    pub fn post(mut self, post_state: Term) -> OpSpec {
        self.post_state = post_state;
        self.updates_state = true;
        self
    }

    /// Sets the result term.
    pub fn result(mut self, result: Term) -> OpSpec {
        self.result = Some(result);
        self
    }

    /// Attaches the Jahob-style relational `ensures` documentation string.
    pub fn ensures(mut self, doc: &str) -> OpSpec {
        self.ensures_doc = doc.to_string();
        self
    }

    /// The number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` if the operation returns a value.
    pub fn has_result(&self) -> bool {
        self.result_sort.is_some()
    }

    fn instantiation(
        &self,
        state: &Term,
        args: &[Term],
    ) -> std::collections::BTreeMap<String, Term> {
        assert_eq!(
            args.len(),
            self.params.len(),
            "operation `{}` expects {} arguments, got {}",
            self.name,
            self.params.len(),
            args.len()
        );
        let mut pairs: Vec<(String, Term)> = vec![(STATE_VAR.to_string(), state.clone())];
        for ((formal, _), actual) in self.params.iter().zip(args) {
            pairs.push((formal.clone(), actual.clone()));
        }
        subst_map(pairs)
    }

    /// The precondition with the formal state and parameters replaced by the
    /// given terms.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the operation's arity.
    pub fn instantiate_pre(&self, state: &Term, args: &[Term]) -> Term {
        substitute(&self.precondition, &self.instantiation(state, args))
    }

    /// The post-state term with the formal state and parameters replaced.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the operation's arity.
    pub fn instantiate_post(&self, state: &Term, args: &[Term]) -> Term {
        substitute(&self.post_state, &self.instantiation(state, args))
    }

    /// The result term with the formal state and parameters replaced, if the
    /// operation returns a value.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the operation's arity.
    pub fn instantiate_result(&self, state: &Term, args: &[Term]) -> Option<Term> {
        self.result
            .as_ref()
            .map(|r| substitute(r, &self.instantiation(state, args)))
    }

    /// A signature string such as `"put(k, v) -> obj"`, used in reports.
    pub fn signature(&self) -> String {
        let params: Vec<&str> = self.params.iter().map(|(n, _)| n.as_str()).collect();
        match self.result_sort {
            Some(sort) => format!("{}({}) -> {}", self.name, params.join(", "), sort),
            None => format!("{}({})", self.name, params.join(", ")),
        }
    }
}

/// The specification of a complete data structure interface.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSpec {
    /// Which interface this is.
    pub id: InterfaceId,
    /// The sort of the abstract state.
    pub state_sort: Sort,
    /// The operations, in the order listed in Chapter 5 of the paper.
    pub ops: Vec<OpSpec>,
}

impl InterfaceSpec {
    /// Looks up an operation by name.
    pub fn op(&self, name: &str) -> Option<&OpSpec> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// The operations that update the abstract state (those that need inverse
    /// operations, Table 5.10).
    pub fn update_ops(&self) -> Vec<&OpSpec> {
        self.ops.iter().filter(|o| o.updates_state).collect()
    }

    /// The operations that only observe the abstract state.
    pub fn observer_ops(&self) -> Vec<&OpSpec> {
        self.ops.iter().filter(|o| !o.updates_state).collect()
    }

    /// The interface name (matches [`InterfaceId`]'s display form).
    pub fn name(&self) -> String {
        self.id.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn add_spec() -> OpSpec {
        OpSpec::new("add", Sort::Set)
            .param("v", Sort::Elem)
            .returns(Sort::Bool)
            .pre(neq(var_elem("v"), null()))
            .post(set_add(var_set(STATE_VAR), var_elem("v")))
            .result(not_member(var_elem("v"), var_set(STATE_VAR)))
            .ensures("(v ~: old contents --> contents = old contents Un {v} & result)")
    }

    #[test]
    fn builder_populates_fields() {
        let op = add_spec();
        assert_eq!(op.name, "add");
        assert_eq!(op.arity(), 1);
        assert!(op.updates_state);
        assert!(op.has_result());
        assert_eq!(op.result_sort, Some(Sort::Bool));
        assert_eq!(op.signature(), "add(v) -> bool");
        assert!(op.ensures_doc.contains("old contents"));
    }

    #[test]
    fn instantiation_substitutes_state_and_args() {
        let op = add_spec();
        let state = var_set("sa0");
        let args = vec![var_elem("v2")];
        assert_eq!(
            op.instantiate_post(&state, &args),
            set_add(var_set("sa0"), var_elem("v2"))
        );
        assert_eq!(
            op.instantiate_result(&state, &args),
            Some(not_member(var_elem("v2"), var_set("sa0")))
        );
        assert_eq!(
            op.instantiate_pre(&state, &args),
            neq(var_elem("v2"), null())
        );
    }

    #[test]
    #[should_panic(expected = "expects 1 arguments")]
    fn wrong_arity_panics() {
        add_spec().instantiate_pre(&var_set("s"), &[]);
    }

    #[test]
    fn interface_lookup_and_classification() {
        let iface = InterfaceSpec {
            id: InterfaceId::Set,
            state_sort: Sort::Set,
            ops: vec![
                add_spec(),
                OpSpec::new("size", Sort::Set)
                    .returns(Sort::Int)
                    .result(card(var_set(STATE_VAR))),
            ],
        };
        assert!(iface.op("add").is_some());
        assert!(iface.op("missing").is_none());
        assert_eq!(iface.update_ops().len(), 1);
        assert_eq!(iface.observer_ops().len(), 1);
        assert_eq!(iface.name(), "Set");
    }

    #[test]
    fn interface_id_metadata() {
        assert_eq!(InterfaceId::ALL.len(), 4);
        assert_eq!(InterfaceId::Set.implementations(), &["ListSet", "HashSet"]);
        assert_eq!(InterfaceId::List.to_string(), "ArrayList");
    }

    #[test]
    fn void_operation_has_no_result() {
        let op = OpSpec::new("increase", Sort::Int)
            .param("v", Sort::Int)
            .post(add(var_int(STATE_VAR), var_int("v")));
        assert!(!op.has_result());
        assert_eq!(op.instantiate_result(&var_int("c"), &[int(3)]), None);
        assert_eq!(op.signature(), "increase(v)");
    }
}
