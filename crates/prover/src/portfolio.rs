//! The prover portfolio: structural prover first, finite-model prover second,
//! with a sharded obligation dedup cache in front of both.
//!
//! This mirrors the paper's "integrated reasoning" architecture, in which an
//! obligation is dispatched to a collection of cooperating reasoning systems
//! and the first conclusive answer wins.
//!
//! The catalog's generated testing methods produce many obligations that are
//! canonically identical (the same formula modulo already-performed
//! simplification). The portfolio therefore keys every verdict by the
//! 128-bit structural hash of the *simplified* obligation (definitions,
//! hypotheses, goal), mixed with the scope and back-end configuration, and
//! answers repeats from the cache. The cache is sharded by
//! `key % N_SHARDS` ([`VerdictCache`]) and shared between clones of the
//! portfolio — the verification scheduler runs one portfolio clone per
//! worker, so a verdict computed on any worker is reused by all of them
//! without funnelling every lookup through a single lock.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use semcommute_logic::with_arena;

use crate::finite::{FiniteModelProver, ModelSearch};
use crate::hints::{apply_hints, Hint, HintError};
use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::stats::ProofStats;
use crate::structural::prove_structural;
use crate::verdict::Verdict;

pub use crate::stats::ProverChoice as Choice;

/// Number of shards in a [`VerdictCache`]. Sixteen keeps the per-shard lock
/// essentially uncontended for the worker counts the scheduler runs with
/// (the canonical hash is uniform, so shard collisions between concurrent
/// workers are rare) while staying cheap to aggregate over.
pub const N_SHARDS: usize = 16;

/// A sharded map from canonical obligation keys to verdicts.
///
/// Shard `i` holds the keys with `key % N_SHARDS == i`, each behind its own
/// mutex, so concurrent workers publishing and consuming verdicts only
/// contend when their obligations actually land in the same shard. Clones
/// share the underlying shards.
#[derive(Debug, Clone, Default)]
pub struct VerdictCache {
    shards: Arc<[Mutex<HashMap<u128, Verdict>>; N_SHARDS]>,
}

impl VerdictCache {
    /// Creates an empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache::default()
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, Verdict>> {
        &self.shards[(key % N_SHARDS as u128) as usize]
    }

    /// Looks up the verdict cached under `key`.
    pub fn get(&self, key: u128) -> Option<Verdict> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .cloned()
    }

    /// Publishes a verdict under `key` (first writer wins; canonically equal
    /// obligations have equal verdicts, so racing writers are harmless).
    pub fn insert(&self, key: u128, verdict: Verdict) {
        self.shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert(verdict);
    }

    /// Number of verdicts currently held, summed over all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// `true` when no verdict is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when both caches share the same shards.
    pub fn shares_with(&self, other: &VerdictCache) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }
}

/// The combined prover: structural reasoning first, exhaustive finite-model
/// search second, with a canonical-hash verdict cache in front of both.
///
/// Clones share the verdict cache, so one `Portfolio` per worker thread is
/// the intended usage pattern (see [`crate::queue`]).
///
/// # Example
///
/// ```
/// use semcommute_logic::build::*;
/// use semcommute_prover::{Obligation, Portfolio};
///
/// // r = (v in s), s' = s Un {v}  |-  v in s'
/// let ob = Obligation::new("add_establishes_membership")
///     .define("r", member(var_elem("v"), var_set("s")))
///     .define("s_post", set_add(var_set("s"), var_elem("v")))
///     .goal(member(var_elem("v"), var_set("s_post")));
///
/// let portfolio = Portfolio::standard();
/// assert!(portfolio.prove(&ob).is_valid());
///
/// // A canonically identical obligation is answered from the cache.
/// let verdict = portfolio.prove(&ob);
/// assert!(verdict.is_valid());
/// assert_eq!(verdict.stats().cache_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Portfolio {
    scope: Scope,
    use_structural: bool,
    use_finite: bool,
    /// Canonical obligation key → verdict, sharded, shared across clones.
    cache: VerdictCache,
}

/// The outcome of [`Portfolio::start_keyed`]: either a verdict that needed
/// no model search, or a prepared [`ModelSearch`] the caller drives — whole
/// ([`ModelSearch::run`]) or split into range tasks
/// ([`ModelSearch::run_range`]).
#[derive(Debug)]
pub enum Started {
    /// The shared verdict cache already held the answer (returned with
    /// zeroed work counters and `cache_hits = 1`, as [`Portfolio::prove`]
    /// reports a hit). Not re-published.
    Cached(Verdict),
    /// Decided without a model search (structural proof, malformed
    /// obligation, disabled finite back-end, or a space over budget). The
    /// caller publishes via [`Portfolio::publish_keyed`].
    Decided(Verdict),
    /// A finite-model search is required; the caller runs it and publishes
    /// the finalized verdict via [`Portfolio::publish_keyed`]. Boxed: a
    /// prepared search (compiled obligation, lowered bytecode program,
    /// enumeration tables) is an order of magnitude larger than a verdict,
    /// and this variant is the rare one — most obligations are answered by
    /// the cache or the structural prover.
    Search(Box<ModelSearch>),
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::standard()
    }
}

impl Portfolio {
    /// Creates a portfolio with the given scope and both back-ends enabled.
    pub fn new(scope: Scope) -> Portfolio {
        Portfolio {
            scope,
            use_structural: true,
            use_finite: true,
            cache: VerdictCache::new(),
        }
    }

    /// Creates a portfolio with the standard scope.
    pub fn standard() -> Portfolio {
        Portfolio::new(Scope::standard())
    }

    /// Creates a portfolio with the small (test) scope.
    pub fn small() -> Portfolio {
        Portfolio::new(Scope::small())
    }

    /// Disables the structural prover (used by the prover-ablation benchmark).
    pub fn without_structural(mut self) -> Portfolio {
        self.use_structural = false;
        self
    }

    /// Disables the finite-model prover (structural only; many obligations
    /// will come back `Unknown`).
    pub fn without_finite(mut self) -> Portfolio {
        self.use_finite = false;
        self
    }

    /// The scope used by the finite-model back-end.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Replaces the scope. Cached verdicts stay usable: the scope is part of
    /// every canonical key, so verdicts computed under the old scope can
    /// never answer obligations proved under the new one.
    pub fn with_scope(mut self, scope: Scope) -> Portfolio {
        self.scope = scope;
        self
    }

    /// Replaces the dedup cache with `cache`, sharing its shards.
    ///
    /// The global obligation scheduler proves interfaces with different
    /// scopes through different portfolios; giving them one shared cache
    /// lets canonically identical obligations dedup across interfaces (the
    /// scope fingerprint inside the key keeps that sound).
    pub fn with_shared_cache(mut self, cache: &VerdictCache) -> Portfolio {
        self.cache = cache.clone();
        self
    }

    /// The portfolio's dedup cache (shared with clones).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// Number of verdicts currently held by the dedup cache.
    pub fn cached_verdicts(&self) -> usize {
        self.cache.len()
    }

    /// The canonical cache key of an obligation: a structural hash of its
    /// simplified definitions, hypotheses, and goal, mixed with the scope
    /// fingerprint and the back-end configuration. Stable across threads
    /// (the structural hash does not depend on arena ids; defined-variable
    /// names reuse the arena's cached symbol hashes), so a key computed by
    /// the scheduler on one worker addresses the same verdict everywhere.
    /// Thread count and split granularity are deliberately *not* part of the
    /// key: the range-split model search reports exactly the sequential
    /// scan's verdict (the minimum-position deciding event), so verdicts are
    /// shareable across every scheduling configuration. The evaluator
    /// backend (tree walk vs. bytecode) *is* part of the key, via
    /// [`Scope::fingerprint`]: the backends are proved bit-identical, but
    /// keying them apart means a backend bug can never leak a wrong verdict
    /// into the other backend's runs through the cache.
    pub fn canonical_key(&self, ob: &Obligation) -> u128 {
        use crate::scope::mix128 as mix;
        let config = (self.use_structural as u128) | ((self.use_finite as u128) << 1);
        with_arena(|arena| {
            let mut key: u128 = 0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C834;
            key = mix(key, self.scope.fingerprint());
            key = mix(key, config);
            for (name, term) in &ob.defines {
                let id = arena.intern(term);
                let simplified = arena.simplify_id(id);
                let name_sym = arena.sym(name);
                key = mix(key, arena.sym_hash(name_sym));
                key = mix(key, arena.structural_hash(simplified));
            }
            for h in &ob.hypotheses {
                let id = arena.intern(h);
                let simplified = arena.simplify_id(id);
                key = mix(key, arena.structural_hash(simplified));
            }
            let goal = arena.intern(&ob.goal);
            let goal_simplified = arena.simplify_id(goal);
            mix(key, arena.structural_hash(goal_simplified))
        })
    }

    /// Attempts to prove an obligation.
    ///
    /// Canonically identical obligations are answered from the shared dedup
    /// cache; the cached verdict is returned with zeroed work counters and
    /// `cache_hits = 1` so accumulated statistics stay meaningful.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        self.prove_keyed(self.canonical_key(ob), ob)
    }

    /// Attempts to prove an obligation whose canonical key the caller has
    /// already computed (the obligation scheduler keys every obligation once
    /// while deduplicating the work queue, so re-hashing here would be
    /// wasted work). `key` must come from [`Portfolio::canonical_key`] on a
    /// portfolio with the same scope and configuration.
    pub fn prove_keyed(&self, key: u128, ob: &Obligation) -> Verdict {
        match self.start_keyed(key, ob) {
            Started::Cached(verdict) => verdict,
            Started::Decided(verdict) => {
                self.publish_keyed(key, &verdict);
                verdict
            }
            Started::Search(search) => {
                let verdict = search.run();
                self.publish_keyed(key, &verdict);
                verdict
            }
        }
    }

    /// Starts proving a keyed obligation without committing to running a
    /// required model search on the calling thread: consults the shared
    /// cache and the structural prover, prepares the finite-model search
    /// otherwise. This is the scheduler's entry point for making one large
    /// obligation *splittable* — on [`Started::Search`] it turns the
    /// returned [`ModelSearch`] into stealable range tasks instead of
    /// calling [`ModelSearch::run`]. Callers must publish non-cached
    /// verdicts via [`Portfolio::publish_keyed`];
    /// [`Portfolio::prove_keyed`] is the run-it-here composition of the two.
    pub fn start_keyed(&self, key: u128, ob: &Obligation) -> Started {
        if let Some(verdict) = self.cache.get(key) {
            let mut hit = verdict;
            let prover = hit.stats().prover;
            *hit.stats_mut() = ProofStats {
                prover,
                cache_hits: 1,
                ..ProofStats::none()
            };
            return Started::Cached(hit);
        }
        if self.use_structural {
            if let Some(stats) = prove_structural(ob) {
                return Started::Decided(Verdict::Valid { stats });
            }
        }
        if !self.use_finite {
            return Started::Decided(Verdict::Unknown {
                reason:
                    "structural prover could not decide and the finite-model prover is disabled"
                        .to_string(),
                stats: ProofStats::none(),
            });
        }
        match FiniteModelProver::new(self.scope.clone()).begin(ob) {
            Err(verdict) => Started::Decided(verdict),
            Ok(search) => Started::Search(Box::new(search)),
        }
    }

    /// Publishes a verdict computed for [`Started::Decided`] or
    /// [`Started::Search`] into the shared dedup cache (first writer wins).
    pub fn publish_keyed(&self, key: u128, verdict: &Verdict) {
        self.cache.insert(key, verdict.clone());
    }

    /// Attempts to prove an obligation that carries proof hints.
    ///
    /// All side obligations introduced by the hints must be valid; their
    /// statistics are accumulated into the returned verdict. If a side
    /// obligation fails, its verdict is returned (with the side obligation's
    /// name available through the failing obligation).
    pub fn prove_with_hints(&self, ob: &Obligation, hints: &[Hint]) -> Result<Verdict, HintError> {
        let hinted = apply_hints(ob, hints)?;
        let mut accumulated = ProofStats::none();
        for side in &hinted.side_obligations {
            let verdict = self.prove(side);
            accumulated.merge(verdict.stats());
            if !verdict.is_valid() {
                let mut verdict = verdict;
                *verdict.stats_mut() = accumulated;
                return Ok(verdict);
            }
        }
        let mut verdict = self.prove(&hinted.main);
        accumulated.merge(verdict.stats());
        *verdict.stats_mut() = accumulated;
        Ok(verdict)
    }
}

/// Identifies which back-end proved an obligation (re-exported name used by
/// reports).
pub type ProverChoiceReport = crate::stats::ProverChoice;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProverChoice;
    use semcommute_logic::build::*;

    fn add_add_obligation() -> Obligation {
        Obligation::new("add_add")
            .define(
                "s1",
                set_add(set_add(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_add(set_add(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")))
    }

    #[test]
    fn structural_obligations_avoid_model_search() {
        let verdict = Portfolio::small().prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::Structural);
        assert_eq!(verdict.stats().models_checked, 0);
    }

    #[test]
    fn ablation_without_structural_still_valid_but_slower() {
        let verdict = Portfolio::small()
            .without_structural()
            .prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::FiniteModel);
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn structural_only_reports_unknown_when_undecided() {
        let ob = Obligation::new("needs_models").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().without_finite().prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn counterexamples_pass_through() {
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().prove(&ob);
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn hints_accumulate_statistics() {
        let ob = Obligation::new("t")
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s1")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_valid());
        // Both the side obligation and the main obligation were attempted.
        assert!(verdict.stats().models_checked > 0 || verdict.stats().prover != ProverChoice::None);
    }

    #[test]
    fn failing_side_obligation_is_reported() {
        let ob = Obligation::new("t").goal(tru());
        // A bogus note: claims v is always in s.
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn with_scope_changes_budget() {
        let p = Portfolio::small().with_scope(Scope::small().with_max_models(1));
        let ob = Obligation::new("budget").goal(eq(var_map("m"), var_map("n")));
        assert!(p.prove(&ob).is_unknown());
    }

    #[test]
    fn canonically_identical_obligations_hit_the_cache() {
        let p = Portfolio::small();
        let first = p.prove(&add_add_obligation());
        assert!(first.is_valid());
        assert_eq!(first.stats().cache_hits, 0);
        // Same obligation under a different name: same canonical form.
        let mut renamed = add_add_obligation();
        renamed.name = "another_name".to_string();
        let second = p.prove(&renamed);
        assert!(second.is_valid());
        assert_eq!(second.stats().cache_hits, 1);
        assert_eq!(second.stats().models_checked, 0);
        assert_eq!(p.cached_verdicts(), 1);
        // Clones share the cache.
        let clone = p.clone();
        let third = clone.prove(&add_add_obligation());
        assert_eq!(third.stats().cache_hits, 1);
    }

    #[test]
    fn cache_distinguishes_different_obligations() {
        let p = Portfolio::small();
        let valid = p.prove(&add_add_obligation());
        let bogus = p.prove(&Obligation::new("bogus").goal(member(var_elem("v"), var_set("s"))));
        assert!(valid.is_valid());
        assert!(bogus.is_counterexample());
        assert_eq!(p.cached_verdicts(), 2);
    }

    #[test]
    fn canonical_key_depends_on_scope_and_configuration() {
        let ob = add_add_obligation();
        let small = Portfolio::small();
        assert_eq!(small.canonical_key(&ob), small.canonical_key(&ob));
        assert_ne!(
            small.canonical_key(&ob),
            Portfolio::standard().canonical_key(&ob)
        );
        assert_ne!(
            small.canonical_key(&ob),
            Portfolio::small().without_structural().canonical_key(&ob)
        );
        // ... so one shared cache can safely serve differently-scoped
        // portfolios: a tiny-budget Unknown never answers the real scope.
        let cache = VerdictCache::new();
        let starved = Portfolio::small()
            .with_scope(Scope::small().with_max_models(1))
            .with_shared_cache(&cache);
        let real = Portfolio::small().with_shared_cache(&cache);
        let ob = Obligation::new("m").goal(eq(var_map("m"), var_map("n")));
        assert!(starved.prove(&ob).is_unknown());
        assert!(real.prove(&ob).is_counterexample());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shared_cache_is_shared_and_sharded() {
        let cache = VerdictCache::new();
        assert!(cache.is_empty());
        let a = Portfolio::small().with_shared_cache(&cache);
        let b = Portfolio::small().with_shared_cache(&cache);
        assert!(a.cache().shares_with(b.cache()));
        let first = a.prove(&add_add_obligation());
        assert_eq!(first.stats().cache_hits, 0);
        let second = b.prove(&add_add_obligation());
        assert_eq!(second.stats().cache_hits, 1);
        // Distinct obligations spread over the shards but stay countable.
        for i in 0..8 {
            let ob = Obligation::new("n").goal(eq(var_int("x"), int(i)));
            b.prove(&ob);
        }
        assert_eq!(cache.len(), 9);
    }

    #[test]
    fn prove_keyed_skips_rehashing_but_matches_prove() {
        let p = Portfolio::small();
        let ob = add_add_obligation();
        let key = p.canonical_key(&ob);
        let keyed = p.prove_keyed(key, &ob);
        assert!(keyed.is_valid());
        assert_eq!(p.prove(&ob).stats().cache_hits, 1);
    }
}
