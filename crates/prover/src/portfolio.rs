//! The prover portfolio: structural prover first, finite-model prover second.
//!
//! This mirrors the paper's "integrated reasoning" architecture, in which an
//! obligation is dispatched to a collection of cooperating reasoning systems
//! and the first conclusive answer wins.

use crate::finite::FiniteModelProver;
use crate::hints::{apply_hints, Hint, HintError};
use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::stats::{ProofStats, ProverChoice};
use crate::structural::prove_structural;
use crate::verdict::Verdict;

pub use crate::stats::ProverChoice as Choice;

/// The combined prover.
#[derive(Debug, Clone)]
pub struct Portfolio {
    scope: Scope,
    use_structural: bool,
    use_finite: bool,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::standard()
    }
}

impl Portfolio {
    /// Creates a portfolio with the given scope and both back-ends enabled.
    pub fn new(scope: Scope) -> Portfolio {
        Portfolio {
            scope,
            use_structural: true,
            use_finite: true,
        }
    }

    /// Creates a portfolio with the standard scope.
    pub fn standard() -> Portfolio {
        Portfolio::new(Scope::standard())
    }

    /// Creates a portfolio with the small (test) scope.
    pub fn small() -> Portfolio {
        Portfolio::new(Scope::small())
    }

    /// Disables the structural prover (used by the prover-ablation benchmark).
    pub fn without_structural(mut self) -> Portfolio {
        self.use_structural = false;
        self
    }

    /// Disables the finite-model prover (structural only; many obligations
    /// will come back `Unknown`).
    pub fn without_finite(mut self) -> Portfolio {
        self.use_finite = false;
        self
    }

    /// The scope used by the finite-model back-end.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Replaces the scope.
    pub fn with_scope(mut self, scope: Scope) -> Portfolio {
        self.scope = scope;
        self
    }

    /// Attempts to prove an obligation.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        if self.use_structural {
            if let Some(stats) = prove_structural(ob) {
                return Verdict::Valid { stats };
            }
        }
        if self.use_finite {
            FiniteModelProver::new(self.scope.clone()).prove(ob)
        } else {
            Verdict::Unknown {
                reason: "structural prover could not decide and the finite-model prover is disabled"
                    .to_string(),
                stats: ProofStats {
                    models_checked: 0,
                    elapsed: std::time::Duration::ZERO,
                    prover: ProverChoice::Structural,
                },
            }
        }
    }

    /// Attempts to prove an obligation that carries proof hints.
    ///
    /// All side obligations introduced by the hints must be valid; their
    /// statistics are accumulated into the returned verdict. If a side
    /// obligation fails, its verdict is returned (with the side obligation's
    /// name available through the failing obligation).
    pub fn prove_with_hints(&self, ob: &Obligation, hints: &[Hint]) -> Result<Verdict, HintError> {
        let hinted = apply_hints(ob, hints)?;
        let mut accumulated = ProofStats::none();
        for side in &hinted.side_obligations {
            let verdict = self.prove(side);
            accumulated.merge(verdict.stats());
            if !verdict.is_valid() {
                let mut verdict = verdict;
                *verdict.stats_mut() = accumulated;
                return Ok(verdict);
            }
        }
        let mut verdict = self.prove(&hinted.main);
        accumulated.merge(verdict.stats());
        *verdict.stats_mut() = accumulated;
        Ok(verdict)
    }
}

/// Identifies which back-end proved an obligation (re-exported name used by
/// reports).
pub type ProverChoiceReport = ProverChoice;

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn add_add_obligation() -> Obligation {
        Obligation::new("add_add")
            .define(
                "s1",
                set_add(set_add(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_add(set_add(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")))
    }

    #[test]
    fn structural_obligations_avoid_model_search() {
        let verdict = Portfolio::small().prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::Structural);
        assert_eq!(verdict.stats().models_checked, 0);
    }

    #[test]
    fn ablation_without_structural_still_valid_but_slower() {
        let verdict = Portfolio::small()
            .without_structural()
            .prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::FiniteModel);
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn structural_only_reports_unknown_when_undecided() {
        let ob = Obligation::new("needs_models").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().without_finite().prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn counterexamples_pass_through() {
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().prove(&ob);
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn hints_accumulate_statistics() {
        let ob = Obligation::new("t")
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s1")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_valid());
        // Both the side obligation and the main obligation were attempted.
        assert!(verdict.stats().models_checked > 0 || verdict.stats().prover != ProverChoice::None);
    }

    #[test]
    fn failing_side_obligation_is_reported() {
        let ob = Obligation::new("t").goal(tru());
        // A bogus note: claims v is always in s.
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn with_scope_changes_budget() {
        let p = Portfolio::small().with_scope(Scope::small().with_max_models(1));
        let ob = Obligation::new("budget").goal(eq(var_map("m"), var_map("n")));
        assert!(p.prove(&ob).is_unknown());
    }
}
