//! The prover portfolio: structural prover first, finite-model prover second,
//! with an obligation dedup cache in front of both.
//!
//! This mirrors the paper's "integrated reasoning" architecture, in which an
//! obligation is dispatched to a collection of cooperating reasoning systems
//! and the first conclusive answer wins.
//!
//! The catalog's generated testing methods produce many obligations that are
//! canonically identical (the same formula modulo already-performed
//! simplification). The portfolio therefore keys every verdict by the
//! 128-bit structural hash of the *simplified* obligation (definitions,
//! hypotheses, goal) and answers repeats from the cache. The cache is shared
//! between clones of the portfolio — the verification driver clones one
//! portfolio per worker thread, so a verdict computed on any thread is
//! reused by all of them.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use semcommute_logic::with_arena;

use crate::finite::FiniteModelProver;
use crate::hints::{apply_hints, Hint, HintError};
use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::stats::{ProofStats, ProverChoice};
use crate::structural::prove_structural;
use crate::verdict::Verdict;

pub use crate::stats::ProverChoice as Choice;

/// The combined prover.
#[derive(Debug, Clone)]
pub struct Portfolio {
    scope: Scope,
    use_structural: bool,
    use_finite: bool,
    prover_threads: usize,
    /// Canonical obligation hash → verdict, shared across clones.
    cache: Arc<Mutex<HashMap<u128, Verdict>>>,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::standard()
    }
}

impl Portfolio {
    /// Creates a portfolio with the given scope and both back-ends enabled.
    pub fn new(scope: Scope) -> Portfolio {
        Portfolio {
            scope,
            use_structural: true,
            use_finite: true,
            prover_threads: 1,
            cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Creates a portfolio with the standard scope.
    pub fn standard() -> Portfolio {
        Portfolio::new(Scope::standard())
    }

    /// Creates a portfolio with the small (test) scope.
    pub fn small() -> Portfolio {
        Portfolio::new(Scope::small())
    }

    /// Disables the structural prover (used by the prover-ablation benchmark).
    pub fn without_structural(mut self) -> Portfolio {
        self.use_structural = false;
        self.cache = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// Disables the finite-model prover (structural only; many obligations
    /// will come back `Unknown`).
    pub fn without_finite(mut self) -> Portfolio {
        self.use_finite = false;
        self.cache = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// The scope used by the finite-model back-end.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Replaces the scope (verdicts cached under the old scope are dropped).
    pub fn with_scope(mut self, scope: Scope) -> Portfolio {
        self.scope = scope;
        self.cache = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// Sets the number of worker threads the finite-model back-end uses per
    /// obligation (see [`FiniteModelProver::with_threads`]).
    pub fn with_prover_threads(mut self, threads: usize) -> Portfolio {
        self.prover_threads = threads.max(1);
        self
    }

    /// Number of verdicts currently held by the dedup cache.
    pub fn cached_verdicts(&self) -> usize {
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// The canonical cache key of an obligation: a structural hash of its
    /// simplified definitions, hypotheses, and goal. Stable across threads
    /// (the hash does not depend on arena ids; defined-variable names reuse
    /// the arena's cached symbol hashes).
    fn canonical_key(&self, ob: &Obligation) -> u128 {
        fn mix(h: u128, x: u128) -> u128 {
            (h ^ x).wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013B) ^ (h >> 61)
        }
        with_arena(|arena| {
            let mut key: u128 = 0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C834;
            for (name, term) in &ob.defines {
                let id = arena.intern(term);
                let simplified = arena.simplify_id(id);
                let name_sym = arena.sym(name);
                key = mix(key, arena.sym_hash(name_sym));
                key = mix(key, arena.structural_hash(simplified));
            }
            for h in &ob.hypotheses {
                let id = arena.intern(h);
                let simplified = arena.simplify_id(id);
                key = mix(key, arena.structural_hash(simplified));
            }
            let goal = arena.intern(&ob.goal);
            let goal_simplified = arena.simplify_id(goal);
            mix(key, arena.structural_hash(goal_simplified))
        })
    }

    /// Attempts to prove an obligation.
    ///
    /// Canonically identical obligations are answered from the shared dedup
    /// cache; the cached verdict is returned with zeroed work counters and
    /// `cache_hits = 1` so accumulated statistics stay meaningful.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        let key = self.canonical_key(ob);
        {
            let cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(verdict) = cache.get(&key) {
                let mut hit = verdict.clone();
                *hit.stats_mut() = ProofStats {
                    models_checked: 0,
                    elapsed: std::time::Duration::ZERO,
                    prover: hit.stats().prover,
                    cache_hits: 1,
                };
                return hit;
            }
        }
        let verdict = self.prove_uncached(ob);
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, verdict.clone());
        verdict
    }

    fn prove_uncached(&self, ob: &Obligation) -> Verdict {
        if self.use_structural {
            if let Some(stats) = prove_structural(ob) {
                return Verdict::Valid { stats };
            }
        }
        if self.use_finite {
            FiniteModelProver::new(self.scope.clone())
                .with_threads(self.prover_threads)
                .prove(ob)
        } else {
            Verdict::Unknown {
                reason:
                    "structural prover could not decide and the finite-model prover is disabled"
                        .to_string(),
                stats: ProofStats {
                    models_checked: 0,
                    elapsed: std::time::Duration::ZERO,
                    prover: ProverChoice::Structural,
                    cache_hits: 0,
                },
            }
        }
    }

    /// Attempts to prove an obligation that carries proof hints.
    ///
    /// All side obligations introduced by the hints must be valid; their
    /// statistics are accumulated into the returned verdict. If a side
    /// obligation fails, its verdict is returned (with the side obligation's
    /// name available through the failing obligation).
    pub fn prove_with_hints(&self, ob: &Obligation, hints: &[Hint]) -> Result<Verdict, HintError> {
        let hinted = apply_hints(ob, hints)?;
        let mut accumulated = ProofStats::none();
        for side in &hinted.side_obligations {
            let verdict = self.prove(side);
            accumulated.merge(verdict.stats());
            if !verdict.is_valid() {
                let mut verdict = verdict;
                *verdict.stats_mut() = accumulated;
                return Ok(verdict);
            }
        }
        let mut verdict = self.prove(&hinted.main);
        accumulated.merge(verdict.stats());
        *verdict.stats_mut() = accumulated;
        Ok(verdict)
    }
}

/// Identifies which back-end proved an obligation (re-exported name used by
/// reports).
pub type ProverChoiceReport = ProverChoice;

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn add_add_obligation() -> Obligation {
        Obligation::new("add_add")
            .define(
                "s1",
                set_add(set_add(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_add(set_add(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")))
    }

    #[test]
    fn structural_obligations_avoid_model_search() {
        let verdict = Portfolio::small().prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::Structural);
        assert_eq!(verdict.stats().models_checked, 0);
    }

    #[test]
    fn ablation_without_structural_still_valid_but_slower() {
        let verdict = Portfolio::small()
            .without_structural()
            .prove(&add_add_obligation());
        assert!(verdict.is_valid());
        assert_eq!(verdict.stats().prover, ProverChoice::FiniteModel);
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn structural_only_reports_unknown_when_undecided() {
        let ob = Obligation::new("needs_models").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().without_finite().prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn counterexamples_pass_through() {
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = Portfolio::small().prove(&ob);
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn hints_accumulate_statistics() {
        let ob = Obligation::new("t")
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s1")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_valid());
        // Both the side obligation and the main obligation were attempted.
        assert!(verdict.stats().models_checked > 0 || verdict.stats().prover != ProverChoice::None);
    }

    #[test]
    fn failing_side_obligation_is_reported() {
        let ob = Obligation::new("t").goal(tru());
        // A bogus note: claims v is always in s.
        let hints = vec![Hint::Note(member(var_elem("v"), var_set("s")))];
        let verdict = Portfolio::small().prove_with_hints(&ob, &hints).unwrap();
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn with_scope_changes_budget() {
        let p = Portfolio::small().with_scope(Scope::small().with_max_models(1));
        let ob = Obligation::new("budget").goal(eq(var_map("m"), var_map("n")));
        assert!(p.prove(&ob).is_unknown());
    }

    #[test]
    fn canonically_identical_obligations_hit_the_cache() {
        let p = Portfolio::small();
        let first = p.prove(&add_add_obligation());
        assert!(first.is_valid());
        assert_eq!(first.stats().cache_hits, 0);
        // Same obligation under a different name: same canonical form.
        let mut renamed = add_add_obligation();
        renamed.name = "another_name".to_string();
        let second = p.prove(&renamed);
        assert!(second.is_valid());
        assert_eq!(second.stats().cache_hits, 1);
        assert_eq!(second.stats().models_checked, 0);
        assert_eq!(p.cached_verdicts(), 1);
        // Clones share the cache.
        let clone = p.clone();
        let third = clone.prove(&add_add_obligation());
        assert_eq!(third.stats().cache_hits, 1);
    }

    #[test]
    fn cache_distinguishes_different_obligations() {
        let p = Portfolio::small();
        let valid = p.prove(&add_add_obligation());
        let bogus = p.prove(&Obligation::new("bogus").goal(member(var_elem("v"), var_set("s"))));
        assert!(valid.is_valid());
        assert!(bogus.is_counterexample());
        assert_eq!(p.cached_verdicts(), 2);
    }
}
