//! The structural prover: inlining, normalization, and simplification.
//!
//! Many generated obligations are valid for purely algebraic reasons — for
//! example, the soundness of `add(v1)` / `add(v2)` commutativity reduces to
//! `(s ∪ {v1}) ∪ {v2} = (s ∪ {v2}) ∪ {v1}`, which holds independently of the
//! data structure state. The structural prover decides such obligations
//! without any model enumeration by:
//!
//! 1. inlining the functional definitions into the hypotheses and the goal,
//! 2. normalizing commutative update chains (`SetAdd` / `SetRemove` runs are
//!    sorted, since element insertions commute with insertions and removals
//!    with removals), and
//! 3. running the shared simplifier and checking whether the resulting
//!    implication is literally `true`.
//!
//! The structural prover is sound but deliberately incomplete; anything it
//! cannot discharge falls through to the finite-model prover.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use semcommute_logic::arena::{Sym, TermId};
use semcommute_logic::{build, substitute, with_arena, Term};

use crate::obligation::Obligation;
use crate::stats::ProofStats;

/// Attempts to prove the obligation structurally.
///
/// Returns `Some(stats)` if the obligation was proved, `None` if this prover
/// cannot decide it (which says nothing about validity).
///
/// The whole pipeline — inlining the definitions, normalizing set-update
/// runs, building the implication, simplifying — runs on the calling
/// thread's hash-consed term arena without ever reconstructing boxed trees,
/// so the repetitive obligations of a catalog run share all of their
/// rewriting work.
pub fn prove_structural(ob: &Obligation) -> Option<ProofStats> {
    let start = Instant::now();
    let proved = with_arena(|arena| {
        let mut inlined: HashMap<Sym, TermId> = HashMap::new();
        for (name, term) in &ob.defines {
            let id = arena.intern(term);
            let substituted = arena.substitute_id(id, &inlined);
            let expanded = arena.normalize_sets_id(substituted);
            let sym = arena.sym(name);
            inlined.insert(sym, expanded);
        }
        let mut hyps = Vec::with_capacity(ob.hypotheses.len());
        for h in &ob.hypotheses {
            let id = arena.intern(h);
            let substituted = arena.substitute_id(id, &inlined);
            hyps.push(arena.normalize_sets_id(substituted));
        }
        let goal_id = arena.intern(&ob.goal);
        let goal_sub = arena.substitute_id(goal_id, &inlined);
        let goal = arena.normalize_sets_id(goal_sub);
        let hyp = arena.and_ids(hyps);
        let formula = arena.implies_ids(hyp, goal);
        let simplified = arena.simplify_id(formula);
        arena.is_true_id(simplified)
    });
    if proved {
        Some(ProofStats::structural(start.elapsed()))
    } else {
        None
    }
}

/// Inlines the obligation's definitions into its hypotheses and goal,
/// normalizes update chains, and returns the single implication formula to be
/// proved.
pub fn inline_and_normalize(ob: &Obligation) -> Term {
    let mut inlined: BTreeMap<String, Term> = BTreeMap::new();
    for (name, term) in &ob.defines {
        let expanded = normalize(&substitute(term, &inlined));
        inlined.insert(name.clone(), expanded);
    }
    let hyps: Vec<Term> = ob
        .hypotheses
        .iter()
        .map(|h| normalize(&substitute(h, &inlined)))
        .collect();
    let goal = normalize(&substitute(&ob.goal, &inlined));
    build::implies(build::and(hyps), goal)
}

/// Normalizes a term by sorting maximal runs of `SetAdd` operations and of
/// `SetRemove` operations by their element term.
///
/// `(s ∪ {a}) ∪ {b}` and `(s ∪ {b}) ∪ {a}` denote the same set for every `a`,
/// `b`, and `s`, so sorting the run is semantics-preserving; the same holds
/// for runs of removals. Runs are *not* merged across an add/remove boundary
/// (removal of an element does not commute with its own insertion).
pub fn normalize(term: &Term) -> Term {
    let t = term.map_children(normalize);
    match t {
        Term::SetAdd(_, _) => sort_run(t, RunKind::Add),
        Term::SetRemove(_, _) => sort_run(t, RunKind::Remove),
        other => other,
    }
}

#[derive(PartialEq, Clone, Copy)]
enum RunKind {
    Add,
    Remove,
}

fn sort_run(term: Term, kind: RunKind) -> Term {
    // Collect the maximal run of same-kind updates.
    let mut elems = Vec::new();
    let mut base = term;
    loop {
        match (&base, kind) {
            (Term::SetAdd(s, v), RunKind::Add) => {
                elems.push((**v).clone());
                base = (**s).clone();
            }
            (Term::SetRemove(s, v), RunKind::Remove) => {
                elems.push((**v).clone());
                base = (**s).clone();
            }
            _ => break,
        }
    }
    // Idempotence: duplicate adds (or removes) of the same element collapse.
    elems.sort();
    elems.dedup();
    let mut rebuilt = base;
    for v in elems {
        rebuilt = match kind {
            RunKind::Add => build::set_add(rebuilt, v),
            RunKind::Remove => build::set_remove(rebuilt, v),
        };
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_logic::{eval, Model, Value};

    #[test]
    fn add_add_commutativity_is_structural() {
        // s1 = (s Un {v1}) Un {v2},  s2 = (s Un {v2}) Un {v1},  goal s1 = s2
        let ob = Obligation::new("add_add")
            .define(
                "s1",
                set_add(set_add(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_add(set_add(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")));
        assert!(prove_structural(&ob).is_some());
    }

    #[test]
    fn remove_remove_commutativity_is_structural() {
        let ob = Obligation::new("remove_remove")
            .define(
                "s1",
                set_remove(set_remove(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_remove(set_remove(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")));
        assert!(prove_structural(&ob).is_some());
    }

    #[test]
    fn add_remove_is_not_structural() {
        // (s Un {v1}) - {v2} vs (s - {v2}) Un {v1}: only equal when v1 != v2
        // or other conditions hold — the structural prover must not claim it.
        let ob = Obligation::new("add_remove")
            .define(
                "s1",
                set_remove(set_add(var_set("s"), var_elem("v1")), var_elem("v2")),
            )
            .define(
                "s2",
                set_add(set_remove(var_set("s"), var_elem("v2")), var_elem("v1")),
            )
            .goal(eq(var_set("s1"), var_set("s2")));
        assert!(prove_structural(&ob).is_none());
    }

    #[test]
    fn normalization_is_semantics_preserving() {
        let t = set_remove(
            set_add(set_add(var_set("s"), var_elem("b")), var_elem("a")),
            var_elem("c"),
        );
        let n = normalize(&t);
        let model = Model::from_bindings([
            ("s", Value::set_of([semcommute_logic::ElemId(5)])),
            ("a", Value::elem(1)),
            ("b", Value::elem(2)),
            ("c", Value::elem(2)),
        ]);
        assert_eq!(eval(&t, &model).unwrap(), eval(&n, &model).unwrap());
    }

    #[test]
    fn duplicate_adds_collapse() {
        let t = set_add(set_add(var_set("s"), var_elem("a")), var_elem("a"));
        let n = normalize(&t);
        assert_eq!(n, set_add(var_set("s"), var_elem("a")));
    }

    #[test]
    fn hypotheses_are_used_by_simplification() {
        // trivially true goal under a false hypothesis
        let ob = Obligation::new("vacuous")
            .assume(fls())
            .goal(eq(var_set("x"), var_set("y")));
        assert!(prove_structural(&ob).is_some());
    }

    #[test]
    fn inline_uses_earlier_definitions() {
        let ob = Obligation::new("chain")
            .define("a", set_add(var_set("s"), var_elem("v")))
            .define("b", set_add(var_set("a"), var_elem("w")))
            .define(
                "c",
                set_add(set_add(var_set("s"), var_elem("w")), var_elem("v")),
            )
            .goal(eq(var_set("b"), var_set("c")));
        assert!(prove_structural(&ob).is_some());
    }
}
