//! Scope (bound) configuration for the finite-model prover.

use std::sync::OnceLock;

/// The process-wide default for [`Scope::orbit`]: `true` (orbit-canonical
/// enumeration) unless the `SEMCOMMUTE_ORBIT` environment variable is set to
/// `off`, `0`, or `false` when first consulted.
///
/// The env override exists for the CI oracle leg: running the *whole* test
/// suite with the unreduced enumerator as the default is the cheapest way to
/// re-validate every scope-dependent test against the enumeration the orbit
/// reduction is proved equivalent to. Tests that pin exact
/// `models_checked` / `orbits_pruned` counts set the flag explicitly via
/// [`Scope::with_orbit`] instead of relying on this default.
pub fn default_orbit() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("SEMCOMMUTE_ORBIT").ok().as_deref(),
            Some("off" | "0" | "false")
        )
    })
}

/// The process-wide default for [`Scope::bytecode`]: `true` (flat register
/// bytecode with batched, column-wise candidate evaluation) unless the
/// `SEMCOMMUTE_BYTECODE` environment variable is set to `off`, `0`, or
/// `false` when first consulted.
///
/// Like [`default_orbit`], the env override exists for the CI oracle leg:
/// running the whole test suite with `SEMCOMMUTE_BYTECODE=off` re-validates
/// every prover-dependent test against the tree-walk evaluator the bytecode
/// backend is differentially tested against. Tests that compare the two
/// backends select them explicitly via [`Scope::with_bytecode`].
pub fn default_bytecode() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("SEMCOMMUTE_BYTECODE").ok().as_deref(),
            Some("off" | "0" | "false")
        )
    })
}

/// The 128-bit mixing step shared by [`Scope::fingerprint`] and the
/// portfolio's canonical obligation keys (an FNV-style multiply-xor fold);
/// keeping one definition guarantees the two stay in lockstep.
pub(crate) fn mix128(h: u128, x: u128) -> u128 {
    (h ^ x).wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013B) ^ (h >> 61)
}

/// Bounds for the finite-model search.
///
/// The relevant-universe argument (see the crate documentation and DESIGN.md)
/// says that for the counter / set / map fragment a counter-model, if one
/// exists, exists within a universe consisting of the obligation's named
/// element variables plus a small number of anonymous "padding" elements, with
/// collections containing at most a few entries beyond the named ones. The
/// scope records those paddings, plus the explicit sequence-length and integer
/// bounds used for the ArrayList fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Number of anonymous elements added to the universe beyond the named
    /// element variables of the obligation.
    pub elem_padding: usize,
    /// Maximum number of entries enumerated for set- and map-valued input
    /// variables (named elements always fit; this bounds anonymous content).
    pub max_collection_entries: usize,
    /// Maximum length enumerated for sequence-valued input variables.
    pub max_seq_len: usize,
    /// Inclusive lower bound for integer-valued input variables that are not
    /// recognizable as sequence indices.
    pub int_min: i64,
    /// Inclusive upper bound for integer-valued input variables.
    pub int_max: i64,
    /// Upper bound on the number of candidate models examined before the
    /// prover gives up with an `Unknown` verdict. Guards against accidental
    /// combinatorial explosions; the driver reports when it is hit.
    pub max_models: u64,
    /// Whether the input space is enumerated orbit-canonically: under each
    /// partition pattern the anonymous padding elements are interchangeable,
    /// so collection-valued candidate tuples are emitted only in the
    /// lex-least form under permutations of the padding block (see
    /// `prover::orbit`). `false` selects the unreduced enumerator — the
    /// oracle the differential soundness harness compares against.
    ///
    /// Candidate *positions* (the indices the scheduler's splittable range
    /// tasks and the minimum-position early-exit guard are defined over)
    /// always count the **unreduced** enumeration, in both modes — which is
    /// why split granularity and thread count never enter this fingerprint:
    /// they cannot change any verdict.
    pub orbit: bool,
    /// Whether obligations are evaluated by the flat register **bytecode**
    /// backend (`prover::bytecode`): each compiled obligation is lowered once
    /// to a flat instruction program and candidates are checked in batches of
    /// up to 256, column-wise, with boolean subprograms evaluated as 256-bit
    /// lanes. `false` selects the tree-walk evaluator
    /// (`prover::compiled::CompiledObligation::check`) — the bit-reproducible
    /// oracle the bytecode backend is differentially tested against.
    ///
    /// The two backends are required to report identical verdicts, counter
    /// models, `Unknown` reasons, and `models_checked` / `orbits_pruned`
    /// counts; the flag is nonetheless part of [`Scope::fingerprint`] so a
    /// cached verdict always records which evaluator produced it and a
    /// backend bug can never leak across the differential harness's legs
    /// through the verdict cache.
    pub bytecode: bool,
}

impl Scope {
    /// The default verification scope used by the catalog driver.
    pub fn standard() -> Scope {
        Scope {
            elem_padding: 2,
            max_collection_entries: 4,
            max_seq_len: 4,
            int_min: -2,
            int_max: 5,
            max_models: 50_000_000,
            orbit: default_orbit(),
            bytecode: default_bytecode(),
        }
    }

    /// A small scope for fast unit tests and counterexample demos.
    pub fn small() -> Scope {
        Scope {
            elem_padding: 1,
            max_collection_entries: 3,
            max_seq_len: 3,
            int_min: -1,
            int_max: 4,
            max_models: 5_000_000,
            orbit: default_orbit(),
            bytecode: default_bytecode(),
        }
    }

    /// A scope tuned for sequence-heavy (ArrayList) obligations: same element
    /// padding as [`Scope::standard`] but integer bounds wide enough to cover
    /// every index position of a maximal sequence plus one out-of-range value
    /// on each side.
    pub fn sequences(max_seq_len: usize) -> Scope {
        Scope {
            elem_padding: 2,
            max_collection_entries: max_seq_len,
            max_seq_len,
            int_min: -1,
            int_max: max_seq_len as i64 + 1,
            max_models: 200_000_000,
            orbit: default_orbit(),
            bytecode: default_bytecode(),
        }
    }

    /// Returns a copy with a different model budget.
    pub fn with_max_models(mut self, max_models: u64) -> Scope {
        self.max_models = max_models;
        self
    }

    /// Returns a copy with a different sequence length bound (and matching
    /// integer bounds).
    pub fn with_max_seq_len(mut self, max_seq_len: usize) -> Scope {
        self.max_seq_len = max_seq_len;
        self.int_max = self.int_max.max(max_seq_len as i64 + 1);
        self
    }

    /// Returns a copy with orbit-canonical enumeration switched on or off.
    pub fn with_orbit(mut self, orbit: bool) -> Scope {
        self.orbit = orbit;
        self
    }

    /// Returns a copy with the bytecode evaluation backend switched on or
    /// off (`false` selects the tree-walk oracle evaluator).
    pub fn with_bytecode(mut self, bytecode: bool) -> Scope {
        self.bytecode = bytecode;
        self
    }

    /// A 128-bit fingerprint of every bound in the scope.
    ///
    /// A finite-model verdict is only meaningful relative to the scope it was
    /// searched under, so the portfolio mixes this fingerprint into the
    /// canonical cache key of every obligation. That makes one sharded
    /// verdict cache safely shareable between portfolios with different
    /// scopes (the global obligation scheduler proves all four interfaces,
    /// under two different scopes, against a single cache).
    pub fn fingerprint(&self) -> u128 {
        let mut h: u128 = 0x6A09_E667_F3BC_C908_B2FB_1366_EA95_7D3E;
        h = mix128(h, self.elem_padding as u128);
        h = mix128(h, self.max_collection_entries as u128);
        h = mix128(h, self.max_seq_len as u128);
        h = mix128(h, self.int_min as u128);
        h = mix128(h, self.int_max as u128);
        h = mix128(h, self.max_models as u128);
        // Orbit-reduced and unreduced searches check different candidate
        // sets, so their verdicts can legitimately differ on obligations
        // with input-dependent evaluation errors (an error at a pruned,
        // non-canonical candidate). The enumerator choice is therefore part
        // of the fingerprint, and cached verdicts never cross the two modes.
        h = mix128(h, self.orbit as u128);
        // The evaluation backend is semantically transparent (the
        // differential harness pins bit-identical verdicts), but keying the
        // cache per backend means a backend bug can never propagate a wrong
        // verdict into the other backend's runs — each leg of the harness
        // answers only from verdicts its own evaluator produced.
        h = mix128(h, self.bytecode as u128);
        h
    }
}

impl Default for Scope {
    fn default() -> Self {
        Scope::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_standard() {
        assert_eq!(Scope::default(), Scope::standard());
    }

    #[test]
    fn small_is_smaller_than_standard() {
        let s = Scope::small();
        let d = Scope::standard();
        assert!(s.elem_padding <= d.elem_padding);
        assert!(s.max_collection_entries <= d.max_collection_entries);
        assert!(s.max_seq_len <= d.max_seq_len);
        assert!(s.max_models <= d.max_models);
    }

    #[test]
    fn sequences_scope_covers_all_indices() {
        let s = Scope::sequences(5);
        assert_eq!(s.max_seq_len, 5);
        assert!(s.int_min <= -1);
        assert!(s.int_max >= 6);
    }

    #[test]
    fn builders_adjust_fields() {
        let s = Scope::small().with_max_models(10).with_max_seq_len(6);
        assert_eq!(s.max_models, 10);
        assert_eq!(s.max_seq_len, 6);
        assert!(s.int_max >= 7);
    }

    #[test]
    fn fingerprint_distinguishes_scopes() {
        assert_eq!(Scope::small().fingerprint(), Scope::small().fingerprint());
        assert_ne!(
            Scope::small().fingerprint(),
            Scope::standard().fingerprint()
        );
        assert_ne!(
            Scope::small().fingerprint(),
            Scope::small().with_max_models(1).fingerprint()
        );
        assert_ne!(
            Scope::sequences(3).fingerprint(),
            Scope::sequences(4).fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_orbit_modes() {
        let on = Scope::small().with_orbit(true);
        let off = Scope::small().with_orbit(false);
        assert_ne!(on.fingerprint(), off.fingerprint());
        assert_eq!(on.with_orbit(false), off);
    }

    #[test]
    fn fingerprint_distinguishes_evaluation_backends() {
        let bytecode = Scope::small().with_bytecode(true);
        let tree = Scope::small().with_bytecode(false);
        assert_ne!(bytecode.fingerprint(), tree.fingerprint());
        assert_eq!(bytecode.with_bytecode(false), tree);
    }
}
