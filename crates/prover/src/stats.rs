//! Proof statistics and prover identification.

use std::fmt;
use std::time::Duration;

/// Which back-end produced a verdict.
///
/// The paper's verifier dispatches obligations to a portfolio of reasoning
/// systems (first-order provers, SMT solvers, MONA, BAPA); our portfolio has a
/// structural prover and a finite-model prover, plus the proof-hint machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProverChoice {
    /// No prover has produced the verdict (e.g. the obligation was rejected
    /// before any back-end ran).
    None,
    /// The structural (inline + normalize + simplify) prover.
    Structural,
    /// The finite-model (relevant-universe enumeration) prover.
    FiniteModel,
}

impl fmt::Display for ProverChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProverChoice::None => "none",
            ProverChoice::Structural => "structural",
            ProverChoice::FiniteModel => "finite-model",
        };
        f.write_str(s)
    }
}

/// Statistics about a proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStats {
    /// Number of candidate models examined by the finite-model prover
    /// (zero when the structural prover decided the obligation).
    pub models_checked: u64,
    /// Number of candidate models the finite-model prover skipped as
    /// non-canonical under the orbit reduction (zero with the reduction
    /// off): isomorphic renamings of anonymous padding elements whose
    /// canonical representative was checked instead. For a fully enumerated
    /// space, `models_checked + orbits_pruned` equals the unreduced
    /// enumeration size.
    pub orbits_pruned: u64,
    /// Wall-clock time spent on the obligation.
    pub elapsed: Duration,
    /// Which back-end produced the verdict.
    pub prover: ProverChoice,
    /// Number of obligations answered from the portfolio's dedup cache
    /// (a previously proved obligation with the same canonical form).
    pub cache_hits: u64,
    /// Number of candidate blocks executed by the batched bytecode evaluator
    /// (zero under the tree-walk evaluator). Each block evaluates up to 256
    /// candidate models column-wise.
    pub batches: u64,
    /// Number of candidate lanes the batched evaluator re-ran through the
    /// per-candidate scalar path (collection-valued registers, mixed-sort
    /// columns, or error recovery). Always at most `256 * batches`.
    pub batch_fallbacks: u64,
    /// Total bytecode instructions executed across all active lanes, summed
    /// over blocks. Divided by `models_checked` this gives the effective
    /// instructions-per-candidate figure reported by the perf harness.
    pub instrs_executed: u64,
    /// Evaluation errors encountered along the way that did *not* decide the
    /// verdict. A range-split model search stops at the deciding event with
    /// the minimum enumeration position, but subranges racing to the right
    /// of it may have observed errors first; those are retained here so a
    /// verdict that raced past failures still reports them. For a split
    /// search the counters in this struct are the *sums* over all
    /// subranges (`finalize` merges them); `merge` further accumulates
    /// across obligations.
    pub errors: Vec<String>,
}

impl ProofStats {
    /// Statistics for a structurally decided obligation.
    pub fn structural(elapsed: Duration) -> ProofStats {
        ProofStats {
            models_checked: 0,
            orbits_pruned: 0,
            elapsed,
            prover: ProverChoice::Structural,
            cache_hits: 0,
            batches: 0,
            batch_fallbacks: 0,
            instrs_executed: 0,
            errors: Vec::new(),
        }
    }

    /// Statistics for a finite-model decided obligation.
    pub fn finite(models_checked: u64, elapsed: Duration) -> ProofStats {
        ProofStats {
            models_checked,
            orbits_pruned: 0,
            elapsed,
            prover: ProverChoice::FiniteModel,
            cache_hits: 0,
            batches: 0,
            batch_fallbacks: 0,
            instrs_executed: 0,
            errors: Vec::new(),
        }
    }

    /// Empty statistics (no prover ran).
    pub fn none() -> ProofStats {
        ProofStats {
            models_checked: 0,
            orbits_pruned: 0,
            elapsed: Duration::ZERO,
            prover: ProverChoice::None,
            cache_hits: 0,
            batches: 0,
            batch_fallbacks: 0,
            instrs_executed: 0,
            errors: Vec::new(),
        }
    }

    /// Returns a copy carrying the given non-fatal evaluation errors.
    pub fn with_errors(mut self, errors: Vec<String>) -> ProofStats {
        self.errors = errors;
        self
    }

    /// Returns a copy with the given orbit-reduction pruning count.
    pub fn with_orbits_pruned(mut self, orbits_pruned: u64) -> ProofStats {
        self.orbits_pruned = orbits_pruned;
        self
    }

    /// Returns a copy with the given batched-bytecode execution counters.
    pub fn with_batch_counters(
        mut self,
        batches: u64,
        batch_fallbacks: u64,
        instrs_executed: u64,
    ) -> ProofStats {
        self.batches = batches;
        self.batch_fallbacks = batch_fallbacks;
        self.instrs_executed = instrs_executed;
        self
    }

    /// Merges another set of statistics into this one (summing counters and
    /// times, concatenating errors, keeping the "stronger" prover label).
    pub fn merge(&mut self, other: &ProofStats) {
        self.models_checked += other.models_checked;
        self.orbits_pruned += other.orbits_pruned;
        self.elapsed += other.elapsed;
        self.cache_hits += other.cache_hits;
        self.batches += other.batches;
        self.batch_fallbacks += other.batch_fallbacks;
        self.instrs_executed += other.instrs_executed;
        self.errors.extend(other.errors.iter().cloned());
        if other.prover > self.prover {
            self.prover = other.prover;
        }
    }
}

impl Default for ProofStats {
    fn default() -> Self {
        ProofStats::none()
    }
}

impl fmt::Display for ProofStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} models, {:.3}s)",
            self.prover,
            self.models_checked,
            self.elapsed.as_secs_f64()
        )?;
        if self.orbits_pruned > 0 {
            write!(f, " [{} orbit-pruned]", self.orbits_pruned)?;
        }
        if !self.errors.is_empty() {
            write!(f, " [{} non-fatal error(s)]", self.errors.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_prover() {
        assert_eq!(
            ProofStats::structural(Duration::ZERO).prover,
            ProverChoice::Structural
        );
        assert_eq!(ProofStats::finite(5, Duration::ZERO).models_checked, 5);
        assert_eq!(ProofStats::none().prover, ProverChoice::None);
        assert_eq!(ProofStats::default(), ProofStats::none());
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ProofStats::structural(Duration::from_millis(10));
        let b = ProofStats::finite(100, Duration::from_millis(20)).with_orbits_pruned(7);
        a.merge(&b);
        assert_eq!(a.models_checked, 100);
        assert_eq!(a.orbits_pruned, 7);
        assert_eq!(a.elapsed, Duration::from_millis(30));
        assert_eq!(a.prover, ProverChoice::FiniteModel);
        a.merge(&ProofStats::finite(1, Duration::ZERO).with_orbits_pruned(3));
        assert_eq!(a.orbits_pruned, 10);
        a.merge(&ProofStats::finite(0, Duration::ZERO).with_batch_counters(2, 5, 900));
        a.merge(&ProofStats::finite(0, Duration::ZERO).with_batch_counters(1, 0, 100));
        assert_eq!(
            (a.batches, a.batch_fallbacks, a.instrs_executed),
            (3, 5, 1000)
        );
    }

    #[test]
    fn display_mentions_pruning_only_when_present() {
        assert!(!ProofStats::finite(1, Duration::ZERO)
            .to_string()
            .contains("orbit-pruned"));
        assert!(ProofStats::finite(1, Duration::ZERO)
            .with_orbits_pruned(4)
            .to_string()
            .contains("4 orbit-pruned"));
    }

    #[test]
    fn display_mentions_prover_and_counts() {
        let s = ProofStats::finite(42, Duration::from_millis(1)).to_string();
        assert!(s.contains("finite-model"));
        assert!(s.contains("42"));
    }

    #[test]
    fn merge_concatenates_errors_and_display_counts_them() {
        let mut a =
            ProofStats::finite(1, Duration::ZERO).with_errors(vec!["worker 1 failed".into()]);
        let b = ProofStats::finite(2, Duration::ZERO).with_errors(vec!["worker 3 failed".into()]);
        a.merge(&b);
        assert_eq!(a.errors.len(), 2);
        assert!(a.to_string().contains("2 non-fatal error(s)"));
    }
}
