//! Flat register bytecode for compiled obligations: the batched evaluation
//! backend of the finite-model prover.
//!
//! [`crate::compiled::CompiledObligation::check`] walks a boxed `CTerm` tree
//! per candidate — per-node dispatch and pointer chasing, millions of times
//! per obligation. This module lowers the compiled form **once** to a flat
//! register [`Program`]: a `Vec` of instructions over dense `u32` registers,
//! with pooled constants, common subexpressions shared, and the
//! define/hypothesis interleaving of the step sequence preserved — a
//! hypothesis that fails still skips every later define, exactly as in the
//! tree walk (a failed `Instr::Check` ends the candidate; in the batched
//! executor it clears the candidate's lane from the active mask, which is the
//! block-level form of the same jump-to-end).
//!
//! Two executors run the program:
//!
//! * a **scalar** executor ([`Program::check`]) with one `Value` per
//!   register — same calling convention as the tree walk, used by the
//!   property harness and the microbenchmarks, and
//! * a **block** executor ([`Program::run_block`]) that evaluates up to
//!   [`LANES`] candidates at once, column-wise: each register holds a
//!   [`LANES`]-wide column, boolean columns are 256-bit masks (`u64x4`
//!   words) so comparisons and connectives amortize to a few word ops,
//!   integer columns are flat `i64` lanes, and whole-block-constant
//!   ("uniform") operands are evaluated once per block. Collection-valued
//!   registers and error paths fall back to per-candidate scalar execution
//!   of that instruction, lane by lane, in ascending lane order.
//!
//! Semantics mirror the reference evaluator **exactly** — totalization,
//! operand evaluation order, sort-check order and error strings,
//! `MAX_QUANTIFIER_RANGE`, and the first-deciding-event stopping rule. The
//! block executor reports only the *minimum-lane* deciding event of a block
//! (counter-model or evaluation error), which is precisely the event the
//! sequential tree walk would have stopped at; everything a later candidate
//! would have done is suppressed, so verdicts, counter-models, `Unknown`
//! reasons, and the `models_checked` / `orbits_pruned` counters stay
//! bit-identical to the tree-walk oracle at every thread count, split
//! threshold, and block boundary (pinned by `tests/diff_bytecode.rs` and
//! `tests/prop_bytecode.rs`). The tree walk remains the oracle; the
//! [`crate::scope::Scope::bytecode`] flag selects between them.

use std::collections::{HashMap, HashSet};

use semcommute_logic::eval::MAX_QUANTIFIER_RANGE;
use semcommute_logic::{ElemId, Model, PMap, PSeq, PSet, Term, Value, NULL_ELEM};

use crate::compiled::{CTerm, CompiledObligation, Step};
use crate::obligation::Obligation;
use crate::space::BlockBuf;

/// Register index.
type R = u32;

/// Number of candidate lanes evaluated per block by [`Program::run_block`].
pub const LANES: usize = 256;

/// A 256-lane bitmask: one bit per candidate lane, as four machine words.
pub type Lanes = [u64; 4];

/// The sort a [`Instr::Coerce`] assertion requires, with the exact wording
/// the reference evaluator uses in its error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    Bool,
    Int,
    Elem,
    Set,
    Map,
    Seq,
}

impl Kind {
    fn word(self) -> &'static str {
        // Must match `Sort`'s `Display` exactly — the reference evaluator
        // formats the expected sort through it.
        match self {
            Kind::Bool => "bool",
            Kind::Int => "int",
            Kind::Elem => "obj",
            Kind::Set => "obj set",
            Kind::Map => "(obj, obj) map",
            Kind::Seq => "obj seq",
        }
    }

    fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (Kind::Bool, Value::Bool(_))
                | (Kind::Int, Value::Int(_))
                | (Kind::Elem, Value::Elem(_))
                | (Kind::Set, Value::Set(_))
                | (Kind::Map, Value::Map(_))
                | (Kind::Seq, Value::Seq(_))
        )
    }
}

/// Checks that `v` has sort `kind`, reproducing the reference evaluator's
/// `"{ctx}: expected {kind}, found {sort}"` message on mismatch.
fn coerce_value(v: &Value, kind: Kind, ctx: &str) -> Result<(), String> {
    if kind.matches(v) {
        Ok(())
    } else {
        Err(format!(
            "{ctx}: expected {}, found {}",
            kind.word(),
            v.sort()
        ))
    }
}

/// Binary boolean connectives. Short-circuiting is *not* wanted here: the
/// reference evaluator evaluates every operand of `and` / `or` (interleaving
/// the bool checks), so the lowering emits all operand instructions and folds
/// with these total ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Bool2 {
    And,
    Or,
    Implies,
    Iff,
}

/// Binary integer operators (`Lt` / `Le` produce booleans, `Add` / `Sub`
/// wrap like the reference evaluator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Int2 {
    Add,
    Sub,
    Lt,
    Le,
}

/// Collection operators. Operands are stored in *evaluation order* (for
/// `Member` that is value first, then set — the reference order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CollOp {
    SetAdd,
    SetRemove,
    Member,
    Card,
    MapPut,
    MapRemove,
    MapGet,
    MapHasKey,
    MapSize,
    SeqInsertAt,
    SeqRemoveAt,
    SeqSetAt,
    SeqAt,
    SeqLen,
    SeqIndexOf,
    SeqLastIndexOf,
    SeqContains,
}

/// One bytecode instruction. Every value-producing instruction writes a
/// fresh output register (SSA-style), so instructions never clobber an
/// operand another instruction still needs — which is what lets the block
/// executor keep one column per register for a whole block.
#[derive(Debug, Clone)]
enum Instr {
    /// Pure sort assertion on a register: errors with the reference
    /// evaluator's `"{ctx}: expected .., found .."` message, otherwise a
    /// no-op (the register itself is the coerced value).
    Coerce {
        a: R,
        kind: Kind,
        ctx: &'static str,
    },
    /// A read of a slot that was never bound: always errors with the
    /// reference `"unbound slot {slot}"` message.
    Unbound {
        slot: u32,
    },
    Not {
        out: R,
        a: R,
    },
    Bool2 {
        op: Bool2,
        out: R,
        a: R,
        b: R,
    },
    Int2 {
        op: Int2,
        out: R,
        a: R,
        b: R,
    },
    Neg {
        out: R,
        a: R,
    },
    /// Runtime-sort-checked equality (`"cannot compare values of sorts .."`).
    Eq {
        out: R,
        a: R,
        b: R,
    },
    /// If-then-else; both branches are already evaluated (the reference
    /// evaluator evaluates both too), the branch-sort check
    /// (`"cannot compare values of sorts .."`) runs before selection.
    Ite {
        out: R,
        c: R,
        t: R,
        e: R,
    },
    /// A collection operation; unused trailing operands repeat `a`.
    Coll {
        op: CollOp,
        out: R,
        a: R,
        b: R,
        c: R,
    },
    /// Bounded integer quantifier. The body is a subprogram (an entry of
    /// [`Program`]'s body table) executed once per iteration with `binder`
    /// holding the iteration index; `body_out` is the body's boolean result
    /// register. Early exit on the deciding iteration, first error wins —
    /// exactly the reference loop.
    Quant {
        out: R,
        universal: bool,
        binder: R,
        lo: R,
        hi: R,
        body: u32,
        body_out: R,
    },
    /// Hypothesis check: `false` rejects the candidate (skipping every later
    /// instruction — the short-circuit that makes input-only precondition
    /// failures skip all define work), non-bool errors.
    Check {
        r: R,
    },
    /// Goal check, always the final instruction: `false` means the candidate
    /// is a counterexample.
    CheckGoal {
        r: R,
    },
}

/// Which step of the obligation an instruction range belongs to — the error
/// prefix (`"evaluating `x`: .."`, `"evaluating hypothesis: .."`,
/// `"evaluating goal: .."`) the reference evaluator wraps around failures.
#[derive(Debug, Clone)]
enum Region {
    Define(String),
    Hypothesis,
    Goal,
}

impl Region {
    fn wrap(&self, e: String) -> String {
        match self {
            Region::Define(name) => format!("evaluating `{name}`: {e}"),
            Region::Hypothesis => format!("evaluating hypothesis: {e}"),
            Region::Goal => format!("evaluating goal: {e}"),
        }
    }
}

/// Pooled-constant key: each distinct literal loads one register, once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Bool(bool),
    Int(i64),
    Null,
    EmptySet,
    EmptyMap,
    EmptySeq,
}

/// Value-numbering key for common-subexpression sharing. Keyed on operand
/// *registers*, so two occurrences share only when their operands already
/// share — and registers never change value once written, so reuse always
/// sees exactly what the first occurrence computed (or stops at the same
/// error the first occurrence raised). Quantifiers are never shared (their
/// binder registers are private), and keys created while lowering a
/// quantifier body are layered and popped with the body, so no outer
/// instruction can reuse a binder-dependent register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CseKey {
    Not(R),
    Bool2(Bool2, R, R),
    Int2(Int2, R, R),
    Neg(R),
    Eq(R, R),
    Ite(R, R, R),
    Coll(CollOp, R, R, R),
}

/// A compiled obligation lowered to a flat register program.
///
/// Built once per model search by [`Program::lower`]; executed per candidate
/// by [`Program::check`] (scalar) or per block of up to [`LANES`] candidates
/// by [`Program::run_block`].
#[derive(Debug, Clone)]
pub struct Program {
    /// Main instruction stream: defines, interleaved hypothesis checks, goal.
    instrs: Vec<Instr>,
    /// Quantifier body subprograms, referenced by [`Instr::Quant`].
    bodies: Vec<Vec<Instr>>,
    /// Pooled constants, loaded once per execution environment.
    consts: Vec<(R, Value)>,
    /// `(first instruction index, region)` pairs, ascending: the error-prefix
    /// region of every instruction, looked up by binary search on failure.
    regions: Vec<(u32, Region)>,
    /// Final slot-name → register mapping for the named (input + defined)
    /// slots, used to reconstruct counter-models. Where a define shadows an
    /// input slot this holds the define's register, matching the reference
    /// evaluator's overwritten environment slot.
    named: Vec<(String, R)>,
    reg_count: usize,
    input_count: usize,
}

struct Lower {
    /// Stack of instruction sinks: the main stream at the bottom, one per
    /// open quantifier body above it.
    sinks: Vec<Vec<Instr>>,
    bodies: Vec<Vec<Instr>>,
    consts: Vec<(R, Value)>,
    const_map: HashMap<ConstKey, R>,
    /// Slot index → register currently holding that slot's value.
    slot_reg: Vec<Option<R>>,
    /// Layered value-numbering maps (one layer per open quantifier body).
    cse: Vec<HashMap<CseKey, R>>,
    /// Layered already-asserted `(register, kind)` coercions.
    coerced: Vec<HashSet<(R, Kind)>>,
    next_reg: R,
}

impl Lower {
    fn fresh(&mut self) -> R {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn emit(&mut self, instr: Instr) {
        self.sinks.last_mut().expect("sink stack").push(instr);
    }

    fn const_reg(&mut self, key: ConstKey) -> R {
        if let Some(&r) = self.const_map.get(&key) {
            return r;
        }
        let value = match key {
            ConstKey::Bool(b) => Value::Bool(b),
            ConstKey::Int(i) => Value::Int(i),
            ConstKey::Null => Value::Elem(NULL_ELEM),
            ConstKey::EmptySet => Value::Set(semcommute_logic::PSet::new()),
            ConstKey::EmptyMap => Value::Map(semcommute_logic::PMap::new()),
            ConstKey::EmptySeq => Value::Seq(semcommute_logic::PSeq::new()),
        };
        let r = self.fresh();
        self.consts.push((r, value));
        self.const_map.insert(key, r);
        r
    }

    /// Emits a sort assertion unless the same `(register, kind)` pair was
    /// already asserted on this path. Skipping a repeat is
    /// observation-equivalent: registers are immutable once written, so the
    /// repeat would see the same value (and the first occurrence — which is
    /// also where the reference evaluator first checks — already decided).
    fn coerce(&mut self, a: R, kind: Kind, ctx: &'static str) {
        if self.coerced.iter().any(|layer| layer.contains(&(a, kind))) {
            return;
        }
        self.emit(Instr::Coerce { a, kind, ctx });
        self.coerced.last_mut().expect("layer").insert((a, kind));
    }

    /// Emits a value-producing instruction unless an equivalent one (same
    /// key) is already available; returns the result register either way.
    fn cse(&mut self, key: CseKey, build: impl FnOnce(R) -> Instr) -> R {
        if let Some(&r) = self.cse.iter().rev().find_map(|l| l.get(&key)) {
            return r;
        }
        let out = self.fresh();
        let instr = build(out);
        self.emit(instr);
        self.cse.last_mut().expect("layer").insert(key, out);
        out
    }

    /// Lowers a collection operation: operands in evaluation order, each
    /// followed by its sort assertion, exactly mirroring the reference
    /// evaluator's operand/check interleaving and context strings.
    fn coll(&mut self, op: CollOp, args: &[(&CTerm, Kind, &'static str)]) -> R {
        let mut regs = [0u32; 3];
        for (i, (term, kind, ctx)) in args.iter().enumerate() {
            let r = self.lower(term);
            self.coerce(r, *kind, ctx);
            regs[i] = r;
        }
        for i in args.len()..3 {
            regs[i] = regs[0];
        }
        let [a, b, c] = regs;
        self.cse(CseKey::Coll(op, a, b, c), |out| Instr::Coll {
            op,
            out,
            a,
            b,
            c,
        })
    }

    /// Lowers an `and` / `or` chain: each operand is evaluated then
    /// bool-checked *before* the next operand is evaluated (the reference
    /// interleaving), and the fold is total — no operand is skipped.
    fn chain(&mut self, op: Bool2, ctx: &'static str, cs: &[CTerm]) -> R {
        let empty = matches!(op, Bool2::And);
        let mut acc: Option<R> = None;
        for c in cs {
            let rc = self.lower(c);
            self.coerce(rc, Kind::Bool, ctx);
            acc = Some(match acc {
                None => rc,
                Some(a) => self.cse(CseKey::Bool2(op, a, rc), |out| Instr::Bool2 {
                    op,
                    out,
                    a,
                    b: rc,
                }),
            });
        }
        acc.unwrap_or_else(|| self.const_reg(ConstKey::Bool(empty)))
    }

    fn bool2(&mut self, op: Bool2, ctx: &'static str, a: &CTerm, b: &CTerm) -> R {
        let ra = self.lower(a);
        self.coerce(ra, Kind::Bool, ctx);
        let rb = self.lower(b);
        self.coerce(rb, Kind::Bool, ctx);
        self.cse(CseKey::Bool2(op, ra, rb), |out| Instr::Bool2 {
            op,
            out,
            a: ra,
            b: rb,
        })
    }

    fn int2(&mut self, op: Int2, ctx: &'static str, a: &CTerm, b: &CTerm) -> R {
        let ra = self.lower(a);
        self.coerce(ra, Kind::Int, ctx);
        let rb = self.lower(b);
        self.coerce(rb, Kind::Int, ctx);
        self.cse(CseKey::Int2(op, ra, rb), |out| Instr::Int2 {
            op,
            out,
            a: ra,
            b: rb,
        })
    }

    fn lower(&mut self, term: &CTerm) -> R {
        use CollOp as O;
        use Kind as K;
        match term {
            CTerm::Slot(i) => match self.slot_reg.get(*i as usize).copied().flatten() {
                Some(r) => r,
                None => {
                    // Defensive, like the reference: reading a never-bound
                    // slot errors at the read site. The dummy result
                    // register is never reached.
                    self.emit(Instr::Unbound { slot: *i });
                    self.fresh()
                }
            },
            CTerm::BoolLit(b) => self.const_reg(ConstKey::Bool(*b)),
            CTerm::IntLit(i) => self.const_reg(ConstKey::Int(*i)),
            CTerm::Null => self.const_reg(ConstKey::Null),
            CTerm::EmptySet => self.const_reg(ConstKey::EmptySet),
            CTerm::EmptyMap => self.const_reg(ConstKey::EmptyMap),
            CTerm::EmptySeq => self.const_reg(ConstKey::EmptySeq),
            CTerm::Not(a) => {
                let ra = self.lower(a);
                self.coerce(ra, K::Bool, "not");
                self.cse(CseKey::Not(ra), |out| Instr::Not { out, a: ra })
            }
            CTerm::Neg(a) => {
                let ra = self.lower(a);
                self.coerce(ra, K::Int, "neg");
                self.cse(CseKey::Neg(ra), |out| Instr::Neg { out, a: ra })
            }
            CTerm::And(cs) => self.chain(Bool2::And, "and", cs),
            CTerm::Or(cs) => self.chain(Bool2::Or, "or", cs),
            CTerm::Implies(a, b) => self.bool2(Bool2::Implies, "implies", a, b),
            CTerm::Iff(a, b) => self.bool2(Bool2::Iff, "iff", a, b),
            CTerm::Add(a, b) => self.int2(Int2::Add, "add", a, b),
            CTerm::Sub(a, b) => self.int2(Int2::Sub, "sub", a, b),
            CTerm::Lt(a, b) => self.int2(Int2::Lt, "lt", a, b),
            CTerm::Le(a, b) => self.int2(Int2::Le, "le", a, b),
            CTerm::Eq(a, b) => {
                let ra = self.lower(a);
                let rb = self.lower(b);
                self.cse(CseKey::Eq(ra, rb), |out| Instr::Eq { out, a: ra, b: rb })
            }
            CTerm::Ite(c, t, e) => {
                let rc = self.lower(c);
                self.coerce(rc, K::Bool, "ite condition");
                let rt = self.lower(t);
                let re = self.lower(e);
                self.cse(CseKey::Ite(rc, rt, re), |out| Instr::Ite {
                    out,
                    c: rc,
                    t: rt,
                    e: re,
                })
            }
            CTerm::Card(s) => self.coll(O::Card, &[(s, K::Set, "card")]),
            CTerm::MapSize(m) => self.coll(O::MapSize, &[(m, K::Map, "map size")]),
            CTerm::SeqLen(s) => self.coll(O::SeqLen, &[(s, K::Seq, "seq len")]),
            CTerm::SetAdd(s, v) => self.coll(
                O::SetAdd,
                &[(s, K::Set, "set add"), (v, K::Elem, "set add")],
            ),
            CTerm::SetRemove(s, v) => self.coll(
                O::SetRemove,
                &[(s, K::Set, "set remove"), (v, K::Elem, "set remove")],
            ),
            // The reference evaluates the *value* before the set for
            // `member`; operands stay in that order.
            CTerm::Member(v, s) => {
                self.coll(O::Member, &[(v, K::Elem, "member"), (s, K::Set, "member")])
            }
            CTerm::MapPut(m, k, v) => self.coll(
                O::MapPut,
                &[
                    (m, K::Map, "map put"),
                    (k, K::Elem, "map put key"),
                    (v, K::Elem, "map put value"),
                ],
            ),
            CTerm::MapRemove(m, k) => self.coll(
                O::MapRemove,
                &[(m, K::Map, "map remove"), (k, K::Elem, "map remove key")],
            ),
            CTerm::MapGet(m, k) => self.coll(
                O::MapGet,
                &[(m, K::Map, "map get"), (k, K::Elem, "map get key")],
            ),
            CTerm::MapHasKey(m, k) => self.coll(
                O::MapHasKey,
                &[(m, K::Map, "map has-key"), (k, K::Elem, "map has-key key")],
            ),
            CTerm::SeqInsertAt(s, i, v) => self.coll(
                O::SeqInsertAt,
                &[
                    (s, K::Seq, "seq insert-at"),
                    (i, K::Int, "seq insert-at index"),
                    (v, K::Elem, "seq insert-at value"),
                ],
            ),
            CTerm::SeqRemoveAt(s, i) => self.coll(
                O::SeqRemoveAt,
                &[
                    (s, K::Seq, "seq remove-at"),
                    (i, K::Int, "seq remove-at index"),
                ],
            ),
            CTerm::SeqSetAt(s, i, v) => self.coll(
                O::SeqSetAt,
                &[
                    (s, K::Seq, "seq set-at"),
                    (i, K::Int, "seq set-at index"),
                    (v, K::Elem, "seq set-at value"),
                ],
            ),
            CTerm::SeqAt(s, i) => self.coll(
                O::SeqAt,
                &[(s, K::Seq, "seq at"), (i, K::Int, "seq at index")],
            ),
            CTerm::SeqIndexOf(s, v) => self.coll(
                O::SeqIndexOf,
                &[
                    (s, K::Seq, "seq index-of"),
                    (v, K::Elem, "seq index-of value"),
                ],
            ),
            CTerm::SeqLastIndexOf(s, v) => self.coll(
                O::SeqLastIndexOf,
                &[
                    (s, K::Seq, "seq last-index-of"),
                    (v, K::Elem, "seq last-index-of value"),
                ],
            ),
            CTerm::SeqContains(s, v) => self.coll(
                O::SeqContains,
                &[
                    (s, K::Seq, "seq contains"),
                    (v, K::Elem, "seq contains value"),
                ],
            ),
            CTerm::Quantifier {
                universal,
                slot,
                lo,
                hi,
                body,
            } => {
                let rlo = self.lower(lo);
                self.coerce(rlo, K::Int, "quantifier lower bound");
                let rhi = self.lower(hi);
                self.coerce(rhi, K::Int, "quantifier upper bound");
                let binder = self.fresh();
                // The body is lowered into its own subprogram with its own
                // CSE layer: body instructions may *reuse* outer registers
                // (binder-independent work hoists out of the loop for
                // free), but nothing lowered inside the body leaks out.
                self.slot_reg[*slot as usize] = Some(binder);
                self.sinks.push(Vec::new());
                self.cse.push(HashMap::new());
                self.coerced.push(HashSet::new());
                let body_out = self.lower(body);
                self.coerce(body_out, K::Bool, "quantifier body");
                let body_instrs = self.sinks.pop().expect("body sink");
                self.cse.pop();
                self.coerced.pop();
                self.slot_reg[*slot as usize] = None;
                let body_idx = self.bodies.len() as u32;
                self.bodies.push(body_instrs);
                let out = self.fresh();
                self.emit(Instr::Quant {
                    out,
                    universal: *universal,
                    binder,
                    lo: rlo,
                    hi: rhi,
                    body: body_idx,
                    body_out,
                });
                out
            }
        }
    }
}

impl Program {
    /// Lowers a compiled obligation to its flat register program. Called
    /// once per model search; the program is then shared (immutably) by
    /// every range task scanning the search.
    pub fn lower(ob: &CompiledObligation) -> Program {
        let mut lw = Lower {
            sinks: vec![Vec::new()],
            bodies: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            slot_reg: {
                let mut slots: Vec<Option<R>> = vec![None; ob.slot_names.len()];
                for (i, slot) in slots.iter_mut().enumerate().take(ob.input_count) {
                    *slot = Some(i as R);
                }
                slots
            },
            cse: vec![HashMap::new()],
            coerced: vec![HashSet::new()],
            next_reg: ob.input_count as R,
        };
        let mut regions: Vec<(u32, Region)> = Vec::new();
        for step in &ob.steps {
            regions.push((
                lw.sinks[0].len() as u32,
                match step {
                    Step::Define(slot, _) => Region::Define(ob.slot_names[*slot as usize].clone()),
                    Step::Check(_) => Region::Hypothesis,
                },
            ));
            match step {
                Step::Define(slot, term) => {
                    let r = lw.lower(term);
                    lw.slot_reg[*slot as usize] = Some(r);
                }
                Step::Check(h) => {
                    let r = lw.lower(h);
                    lw.emit(Instr::Check { r });
                }
            }
        }
        regions.push((lw.sinks[0].len() as u32, Region::Goal));
        let goal = lw.lower(&ob.goal);
        lw.emit(Instr::CheckGoal { r: goal });

        let named = ob
            .slot_names
            .iter()
            .take(ob.named_slots)
            .enumerate()
            .filter_map(|(slot, name)| lw.slot_reg[slot].map(|r| (name.clone(), r)))
            .collect();
        Program {
            instrs: lw.sinks.pop().expect("main sink"),
            bodies: lw.bodies,
            consts: lw.consts,
            regions,
            named,
            reg_count: lw.next_reg as usize,
            input_count: ob.input_count,
        }
    }

    /// Number of instructions in the main stream (bodies excluded) — the
    /// static program size, reported by the microbenchmarks.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions (cannot happen for a
    /// lowered obligation — the goal check is always present).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Wraps a raw evaluation error with the error prefix of the region the
    /// failing instruction belongs to.
    fn wrap(&self, pc: usize, e: String) -> String {
        let idx = self
            .regions
            .partition_point(|(start, _)| *start as usize <= pc)
            .saturating_sub(1);
        self.regions[idx].1.wrap(e)
    }
}

// ---------------------------------------------------------------------------
// Pure operation semantics shared by the scalar and block executors.
// ---------------------------------------------------------------------------
//
// Every operand of these helpers has already passed its `Coerce` assertion
// (the lowering emits the assertion before the consuming instruction, exactly
// where the reference evaluator checks), so the sort-mismatch arms below are
// defensive "internal:" errors, not reference semantics. The *semantic*
// errors a pure instruction can raise are exactly the reference ones: the
// `Eq` sort comparison, the `Ite` branch merge, and the quantifier range
// guard.

fn bool_of(v: &Value) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("internal: expected bool, found {}", other.sort())),
    }
}

fn int_of(v: &Value) -> Result<i64, String> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(format!("internal: expected int, found {}", other.sort())),
    }
}

fn elem_of(v: &Value) -> Result<ElemId, String> {
    match v {
        Value::Elem(e) => Ok(*e),
        other => Err(format!("internal: expected elem, found {}", other.sort())),
    }
}

fn pset_of(v: &Value) -> Result<&PSet, String> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(format!("internal: expected set, found {}", other.sort())),
    }
}

fn pmap_of(v: &Value) -> Result<&PMap, String> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(format!("internal: expected map, found {}", other.sort())),
    }
}

fn pseq_of(v: &Value) -> Result<&PSeq, String> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(format!("internal: expected seq, found {}", other.sort())),
    }
}

fn apply_eq(a: &Value, b: &Value) -> Result<Value, String> {
    if a.sort() != b.sort() {
        return Err(format!(
            "cannot compare values of sorts {} and {}",
            a.sort(),
            b.sort()
        ));
    }
    Ok(Value::Bool(a == b))
}

fn apply_ite(c: &Value, t: &Value, e: &Value) -> Result<Value, String> {
    let c = bool_of(c)?;
    if t.sort() != e.sort() {
        // The reference evaluator reports branch-sort mismatches through the
        // same `IncomparableSorts` error as `Eq`.
        return Err(format!(
            "cannot compare values of sorts {} and {}",
            t.sort(),
            e.sort()
        ));
    }
    Ok(if c { t.clone() } else { e.clone() })
}

/// Applies a collection operation to already-sort-checked operands (in
/// evaluation order — for `Member` that is value, then set). Writes clone the
/// copy-on-write handle and mutate the clone; reads borrow in place.
fn apply_coll(op: CollOp, a: &Value, b: &Value, c: &Value) -> Result<Value, String> {
    Ok(match op {
        CollOp::SetAdd => {
            let mut s = pset_of(a)?.clone();
            s.insert(elem_of(b)?);
            Value::Set(s)
        }
        CollOp::SetRemove => {
            let mut s = pset_of(a)?.clone();
            s.remove(&elem_of(b)?);
            Value::Set(s)
        }
        CollOp::Member => Value::Bool(pset_of(b)?.contains(&elem_of(a)?)),
        CollOp::Card => Value::Int(pset_of(a)?.len() as i64),
        CollOp::MapPut => {
            let mut m = pmap_of(a)?.clone();
            m.insert(elem_of(b)?, elem_of(c)?);
            Value::Map(m)
        }
        CollOp::MapRemove => {
            let mut m = pmap_of(a)?.clone();
            m.remove(&elem_of(b)?);
            Value::Map(m)
        }
        CollOp::MapGet => Value::Elem(pmap_of(a)?.get(&elem_of(b)?).copied().unwrap_or(NULL_ELEM)),
        CollOp::MapHasKey => Value::Bool(pmap_of(a)?.contains_key(&elem_of(b)?)),
        CollOp::MapSize => Value::Int(pmap_of(a)?.len() as i64),
        CollOp::SeqInsertAt => {
            let mut s = pseq_of(a)?.clone();
            let i = int_of(b)?;
            let v = elem_of(c)?;
            let idx = i.clamp(0, s.len() as i64) as usize;
            s.insert(idx, v);
            Value::Seq(s)
        }
        CollOp::SeqRemoveAt => {
            let mut s = pseq_of(a)?.clone();
            let i = int_of(b)?;
            if i >= 0 && (i as usize) < s.len() {
                s.remove(i as usize);
            }
            Value::Seq(s)
        }
        CollOp::SeqSetAt => {
            let mut s = pseq_of(a)?.clone();
            let i = int_of(b)?;
            let v = elem_of(c)?;
            if i >= 0 && (i as usize) < s.len() {
                s.set(i as usize, v);
            }
            Value::Seq(s)
        }
        CollOp::SeqAt => {
            let s = pseq_of(a)?;
            let i = int_of(b)?;
            Value::Elem(if i >= 0 && (i as usize) < s.len() {
                s[i as usize]
            } else {
                NULL_ELEM
            })
        }
        CollOp::SeqLen => Value::Int(pseq_of(a)?.len() as i64),
        CollOp::SeqIndexOf => {
            let v = elem_of(b)?;
            Value::Int(
                pseq_of(a)?
                    .iter()
                    .position(|&e| e == v)
                    .map_or(-1, |i| i as i64),
            )
        }
        CollOp::SeqLastIndexOf => {
            let v = elem_of(b)?;
            Value::Int(
                pseq_of(a)?
                    .iter()
                    .rposition(|&e| e == v)
                    .map_or(-1, |i| i as i64),
            )
        }
        CollOp::SeqContains => Value::Bool(pseq_of(a)?.contains(&elem_of(b)?)),
    })
}

/// The operand registers of a value-producing pure instruction; unary
/// operations repeat the single operand. `Coerce`, `Unbound`, `Quant`,
/// `Check`, and `CheckGoal` are not pure and never reach the callers.
fn operands(instr: &Instr) -> [R; 3] {
    match *instr {
        Instr::Not { a, .. } | Instr::Neg { a, .. } => [a, a, a],
        Instr::Bool2 { a, b, .. } | Instr::Int2 { a, b, .. } | Instr::Eq { a, b, .. } => [a, b, a],
        Instr::Ite { c, t, e, .. } => [c, t, e],
        Instr::Coll { a, b, c, .. } => [a, b, c],
        _ => [0, 0, 0],
    }
}

/// The output register of a value-producing instruction.
fn out_reg(instr: &Instr) -> R {
    match *instr {
        Instr::Not { out, .. }
        | Instr::Bool2 { out, .. }
        | Instr::Int2 { out, .. }
        | Instr::Neg { out, .. }
        | Instr::Eq { out, .. }
        | Instr::Ite { out, .. }
        | Instr::Coll { out, .. }
        | Instr::Quant { out, .. } => out,
        _ => 0,
    }
}

/// Applies a pure instruction to its (already coerced) operand values.
fn apply(instr: &Instr, a: &Value, b: &Value, c: &Value) -> Result<Value, String> {
    match instr {
        Instr::Not { .. } => Ok(Value::Bool(!bool_of(a)?)),
        Instr::Bool2 { op, .. } => {
            let x = bool_of(a)?;
            let y = bool_of(b)?;
            Ok(Value::Bool(match op {
                Bool2::And => x & y,
                Bool2::Or => x | y,
                Bool2::Implies => !x | y,
                Bool2::Iff => x == y,
            }))
        }
        Instr::Int2 { op, .. } => {
            let x = int_of(a)?;
            let y = int_of(b)?;
            Ok(match op {
                Int2::Add => Value::Int(x.wrapping_add(y)),
                Int2::Sub => Value::Int(x.wrapping_sub(y)),
                Int2::Lt => Value::Bool(x < y),
                Int2::Le => Value::Bool(x <= y),
            })
        }
        Instr::Neg { .. } => Ok(Value::Int(int_of(a)?.wrapping_neg())),
        Instr::Eq { .. } => apply_eq(a, b),
        Instr::Ite { .. } => apply_ite(a, b, c),
        Instr::Coll { op, .. } => apply_coll(*op, a, b, c),
        _ => Err("internal: not a pure instruction".to_string()),
    }
}

// ---------------------------------------------------------------------------
// Scalar executor.
// ---------------------------------------------------------------------------

/// What a scalar instruction told the candidate loop to do next.
enum Flow {
    Continue,
    /// A hypothesis failed: the candidate is rejected, skip the rest.
    Reject,
    /// The goal failed: the candidate is a counterexample.
    Cex,
}

/// Reusable scalar execution environment: one [`Value`] per register,
/// constants preloaded. Created by [`Program::scalar_exec`], reused across
/// candidates (registers a candidate writes are rewritten before any read).
pub struct ScalarExec {
    regs: Vec<Value>,
}

impl Program {
    /// Creates a reusable scalar environment sized for this program.
    pub fn scalar_exec(&self) -> ScalarExec {
        let mut regs = vec![Value::Bool(false); self.reg_count];
        for (r, v) in &self.consts {
            regs[*r as usize] = v.clone();
        }
        ScalarExec { regs }
    }

    /// Checks one candidate, scalar: `inputs` are the input-variable values
    /// in compile order. Same contract as
    /// [`crate::compiled::CompiledObligation::check`] — `Ok(None)` when the
    /// candidate is not a counterexample, `Ok(Some(()))` when it is (call
    /// [`Program::reconstruct`] on the same environment for the model), and
    /// `Err` with the reference evaluator's exact message on an evaluation
    /// error.
    pub fn check(
        &self,
        inputs: &mut Vec<Value>,
        exec: &mut ScalarExec,
    ) -> Result<Option<()>, String> {
        debug_assert_eq!(inputs.len(), self.input_count);
        for (slot, value) in inputs.drain(..).enumerate() {
            exec.regs[slot] = value;
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            match self.exec_scalar(instr, &mut exec.regs) {
                Ok(Flow::Continue) => {}
                Ok(Flow::Reject) => return Ok(None),
                Ok(Flow::Cex) => return Ok(Some(())),
                Err(e) => return Err(self.wrap(pc, e)),
            }
        }
        Ok(None)
    }

    /// Executes one instruction against the scalar registers; errors are raw
    /// (unwrapped) and the caller applies the region prefix.
    fn exec_scalar(&self, instr: &Instr, regs: &mut [Value]) -> Result<Flow, String> {
        match instr {
            Instr::Coerce { a, kind, ctx } => {
                coerce_value(&regs[*a as usize], *kind, ctx)?;
            }
            Instr::Unbound { slot } => return Err(format!("unbound slot {slot}")),
            Instr::Check { r } => match &regs[*r as usize] {
                Value::Bool(true) => {}
                Value::Bool(false) => return Ok(Flow::Reject),
                other => return Err(format!("expected bool, found {}", other.sort())),
            },
            Instr::CheckGoal { r } => match &regs[*r as usize] {
                Value::Bool(true) => {}
                Value::Bool(false) => return Ok(Flow::Cex),
                other => return Err(format!("expected bool, found {}", other.sort())),
            },
            Instr::Quant { out, .. } => {
                let v = self.exec_quant_scalar(instr, regs)?;
                regs[*out as usize] = Value::Bool(v);
            }
            pure => {
                let [a, b, c] = operands(pure);
                let v = apply(
                    pure,
                    &regs[a as usize],
                    &regs[b as usize],
                    &regs[c as usize],
                )?;
                regs[out_reg(pure) as usize] = v;
            }
        }
        Ok(Flow::Continue)
    }

    /// Executes a quantifier instruction scalar-wise, mirroring the reference
    /// loop exactly: range guard, ascending iteration, early exit on the
    /// deciding iteration, first body error wins. The binder register is
    /// private to the body, so no save/restore is needed.
    fn exec_quant_scalar(&self, instr: &Instr, regs: &mut [Value]) -> Result<bool, String> {
        let Instr::Quant {
            universal,
            binder,
            lo,
            hi,
            body,
            body_out,
            ..
        } = instr
        else {
            return Err("internal: not a quantifier".to_string());
        };
        let lo = int_of(&regs[*lo as usize])?;
        let hi = int_of(&regs[*hi as usize])?;
        if hi - lo > MAX_QUANTIFIER_RANGE {
            return Err(format!(
                "quantifier range of width {} is too large to enumerate",
                hi - lo
            ));
        }
        let mut result = *universal;
        for i in lo..hi {
            regs[*binder as usize] = Value::Int(i);
            for body_instr in &self.bodies[*body as usize] {
                match self.exec_scalar(body_instr, regs)? {
                    Flow::Continue => {}
                    _ => return Err("internal: check inside quantifier body".to_string()),
                }
            }
            let b = bool_of(&regs[*body_out as usize])?;
            if *universal && !b {
                result = false;
                break;
            }
            if !*universal && b {
                result = true;
                break;
            }
        }
        Ok(result)
    }

    /// Rebuilds the named-variable [`Model`] (inputs plus computed defines)
    /// from the environment of the last [`Program::check`] call that
    /// returned `Ok(Some(()))`.
    pub fn reconstruct(&self, exec: &ScalarExec) -> Model {
        let mut model = Model::new();
        for (name, r) in &self.named {
            model.insert(name.clone(), exec.regs[*r as usize].clone());
        }
        model
    }

    /// Lowers a bare boolean formula to a goal-only program with a
    /// caller-supplied slot layout: `input_order[i]` becomes input slot `i`
    /// (register `i`). Free variables of the formula that are not listed
    /// compile to an unbound-variable instruction, so evaluating a formula whose inputs
    /// the caller cannot supply fails loudly instead of guessing — the same
    /// contract the reference evaluator's `Model` lookup has. Duplicate names
    /// resolve to the *last* occurrence, matching a `Model` built by
    /// inserting the slots in order.
    ///
    /// This is the entry point for callers outside the prover (the runtime's
    /// admission gatekeeper) that want the flat-register evaluation speed for
    /// a formula that is not a proof obligation.
    pub fn lower_formula(formula: &Term, input_order: &[String]) -> Program {
        let ob = Obligation::new("formula").goal(formula.clone());
        Program::lower(&CompiledObligation::compile(&ob, input_order))
    }

    /// Number of input slots (the length of the `input_order` the program was
    /// compiled with).
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Which input slots the compiled program actually reads, per slot index.
    ///
    /// A slot is *read* when some instruction (in the main stream or any
    /// quantifier body) consumes its register. Slots whose variable was
    /// eliminated by lowering never influence evaluation, so a caller may
    /// pass any placeholder value there — this is what lets the gatekeeper
    /// derive its `requires_pre_state` projection from the program instead of
    /// a syntactic free-variable scan.
    pub fn input_reads(&self) -> Vec<bool> {
        let mut reads = vec![false; self.input_count];
        let mut mark = |r: R| {
            if (r as usize) < reads.len() {
                reads[r as usize] = true;
            }
        };
        for instr in self.instrs.iter().chain(self.bodies.iter().flatten()) {
            // `operands()` repeats register 0 for non-value instructions, so
            // each variant lists its genuine reads explicitly here.
            match *instr {
                Instr::Coerce { a, .. } | Instr::Not { a, .. } | Instr::Neg { a, .. } => mark(a),
                Instr::Unbound { .. } => {}
                Instr::Bool2 { a, b, .. } | Instr::Int2 { a, b, .. } | Instr::Eq { a, b, .. } => {
                    mark(a);
                    mark(b);
                }
                Instr::Ite { c, t, e, .. } => {
                    mark(c);
                    mark(t);
                    mark(e);
                }
                Instr::Coll { a, b, c, .. } => {
                    mark(a);
                    mark(b);
                    mark(c);
                }
                Instr::Quant { lo, hi, .. } => {
                    mark(lo);
                    mark(hi);
                }
                Instr::Check { r } | Instr::CheckGoal { r } => mark(r),
            }
        }
        reads
    }

    /// Evaluates a goal-only program (from [`Program::lower_formula`]) as a
    /// boolean formula: `true` iff the goal holds on the given inputs.
    ///
    /// `inputs` are the input-slot values in compile order and are drained;
    /// `regs` is a caller-owned register buffer, grown to fit and reusable
    /// across calls **and across programs** — every register a given
    /// execution reads is rewritten (constants and inputs here, SSA
    /// temporaries by the instruction stream) before that read, so stale
    /// values from a previous evaluation can never leak into this one.
    ///
    /// # Errors
    ///
    /// Returns the reference evaluator's error (with the `"evaluating goal:"`
    /// region prefix) when the formula cannot be evaluated — an unbound slot,
    /// an ill-sorted operand, or an oversized quantifier range.
    pub fn eval_formula(
        &self,
        inputs: &mut Vec<Value>,
        regs: &mut Vec<Value>,
    ) -> Result<bool, String> {
        debug_assert_eq!(inputs.len(), self.input_count);
        self.prepare_regs(regs);
        for (slot, value) in inputs.drain(..).enumerate() {
            regs[slot] = value;
        }
        self.eval_in_regs(regs)
    }

    /// First half of the two-step form of
    /// [`eval_formula`](Program::eval_formula): grows `regs` to this
    /// program's register count and writes the constant pool. The caller then
    /// places the input-slot values in `regs[0..input_count]` directly —
    /// skipping slots [`input_reads`](Program::input_reads) marks unread,
    /// whose registers no instruction ever touches — and finishes with
    /// [`eval_in_regs`](Program::eval_in_regs). Constant registers never
    /// overlap input slots, so the two fills commute.
    pub fn prepare_regs(&self, regs: &mut Vec<Value>) {
        if regs.len() < self.reg_count {
            regs.resize(self.reg_count, Value::Bool(false));
        }
        for (r, v) in &self.consts {
            regs[*r as usize] = v.clone();
        }
    }

    /// Second half of the two-step form of
    /// [`eval_formula`](Program::eval_formula): runs the instruction stream
    /// over registers prepared by [`prepare_regs`](Program::prepare_regs)
    /// and filled by the caller.
    ///
    /// # Errors
    ///
    /// As [`eval_formula`](Program::eval_formula).
    pub fn eval_in_regs(&self, regs: &mut [Value]) -> Result<bool, String> {
        for (pc, instr) in self.instrs.iter().enumerate() {
            match self.exec_scalar(instr, regs) {
                Ok(Flow::Continue) => {}
                // A goal-only program has no hypothesis checks, so the only
                // non-continue flow is the goal deciding `false`.
                Ok(Flow::Reject) | Ok(Flow::Cex) => return Ok(false),
                Err(e) => {
                    // `eval_bool` reports a non-bool formula with a
                    // `"formula:"` context; the goal check is that check.
                    let e = if matches!(instr, Instr::CheckGoal { .. }) {
                        format!("formula: {e}")
                    } else {
                        e
                    };
                    return Err(self.wrap(pc, e));
                }
            }
        }
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Lane-mask helpers.
// ---------------------------------------------------------------------------

fn mask_zero() -> Lanes {
    [0; 4]
}

/// A mask with bits `0..n` set (`n` ≤ [`LANES`]).
fn lanes_up_to(n: usize) -> Lanes {
    let mut m = [0u64; 4];
    for (w, word) in m.iter_mut().enumerate() {
        let base = w * 64;
        *word = if n >= base + 64 {
            u64::MAX
        } else if n > base {
            (1u64 << (n - base)) - 1
        } else {
            0
        };
    }
    m
}

fn mask_and(a: Lanes, b: Lanes) -> Lanes {
    [a[0] & b[0], a[1] & b[1], a[2] & b[2], a[3] & b[3]]
}

fn mask_or(a: Lanes, b: Lanes) -> Lanes {
    [a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3]]
}

fn mask_not(a: Lanes) -> Lanes {
    [!a[0], !a[1], !a[2], !a[3]]
}

fn mask_is_empty(m: &Lanes) -> bool {
    m.iter().all(|w| *w == 0)
}

fn mask_popcount(m: &Lanes) -> u64 {
    m.iter().map(|w| w.count_ones() as u64).sum()
}

fn lane_bit(m: &Lanes, lane: usize) -> bool {
    m[lane / 64] & (1u64 << (lane % 64)) != 0
}

fn set_lane_bit(m: &mut Lanes, lane: usize, value: bool) {
    let bit = 1u64 << (lane % 64);
    if value {
        m[lane / 64] |= bit;
    } else {
        m[lane / 64] &= !bit;
    }
}

/// Index of the lowest set bit, if any — the *minimum lane*, which is the
/// candidate the sequential walk would reach first.
fn first_lane(m: &Lanes) -> Option<usize> {
    for (w, word) in m.iter().enumerate() {
        if *word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

/// Iterates the set lanes of a mask in ascending order.
struct LaneIter {
    mask: Lanes,
    word: usize,
}

impl LaneIter {
    fn new(mask: Lanes) -> LaneIter {
        LaneIter { mask, word: 0 }
    }
}

impl Iterator for LaneIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word < 4 {
            let w = self.mask[self.word];
            if w != 0 {
                self.mask[self.word] &= w - 1;
                return Some(self.word * 64 + w.trailing_zeros() as usize);
            }
            self.word += 1;
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Block executor.
// ---------------------------------------------------------------------------

/// One register's column across a block of candidate lanes.
#[derive(Debug, Clone)]
enum Col {
    /// The same value in every lane: constants, block-constant inputs
    /// (enumeration varies the trailing variables fastest, so leading
    /// variables are uniform for long runs of candidates), and results of
    /// all-uniform operations — evaluated once per block.
    Uniform(Value),
    /// A boolean column as a 256-bit mask.
    Bools(Lanes),
    /// An integer column, one `i64` per lane.
    Ints(Box<[i64; LANES]>),
    /// Per-lane values (collections, elements, mixed sorts).
    Values(Vec<Value>),
}

/// An integer view of a column for the vectorized arithmetic paths.
enum IntsView<'a> {
    Arr(&'a [i64; LANES]),
    Splat(i64),
}

impl IntsView<'_> {
    fn get(&self, lane: usize) -> i64 {
        match self {
            IntsView::Arr(a) => a[lane],
            IntsView::Splat(i) => *i,
        }
    }
}

/// A full-width boolean mask view of a column, when one exists. Bits at
/// lanes holding non-boolean values are zero; callers only consume bits of
/// lanes known (via the preceding `Coerce`) to hold booleans.
fn bool_view(col: &Col) -> Option<Lanes> {
    match col {
        Col::Bools(m) => Some(*m),
        Col::Uniform(Value::Bool(b)) => Some(if *b { [u64::MAX; 4] } else { mask_zero() }),
        Col::Values(vs) => {
            let mut m = mask_zero();
            for (lane, v) in vs.iter().enumerate() {
                if matches!(v, Value::Bool(true)) {
                    set_lane_bit(&mut m, lane, true);
                }
            }
            Some(m)
        }
        _ => None,
    }
}

fn ints_view(col: &Col) -> Option<IntsView<'_>> {
    match col {
        Col::Ints(a) => Some(IntsView::Arr(a)),
        Col::Uniform(Value::Int(i)) => Some(IntsView::Splat(*i)),
        _ => None,
    }
}

/// The owned value of a column at one lane.
fn lane_value(col: &Col, lane: usize) -> Value {
    match col {
        Col::Uniform(v) => v.clone(),
        Col::Bools(m) => Value::Bool(lane_bit(m, lane)),
        Col::Ints(a) => Value::Int(a[lane]),
        Col::Values(vs) => vs[lane].clone(),
    }
}

/// A borrowed view of a column at one lane; `Bools` / `Ints` lanes are
/// materialized into `scratch`, `Uniform` / `Values` lanes are borrowed in
/// place (so collection reads keep their no-refcount borrow path).
fn lane_ref<'a>(col: &'a Col, lane: usize, scratch: &'a mut Value) -> &'a Value {
    match col {
        Col::Uniform(v) => v,
        Col::Values(vs) => &vs[lane],
        Col::Bools(m) => {
            *scratch = Value::Bool(lane_bit(m, lane));
            scratch
        }
        Col::Ints(a) => {
            *scratch = Value::Int(a[lane]);
            scratch
        }
    }
}

/// The column variant an instruction's output register uses — fixed per
/// instruction so per-lane writes within one block never flip a column's
/// representation mid-instruction (which would drop already-written lanes).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Bool,
    Int,
    Other,
}

fn out_shape(instr: &Instr) -> Shape {
    match instr {
        Instr::Not { .. } | Instr::Bool2 { .. } | Instr::Eq { .. } | Instr::Quant { .. } => {
            Shape::Bool
        }
        Instr::Int2 { op, .. } => match op {
            Int2::Add | Int2::Sub => Shape::Int,
            Int2::Lt | Int2::Le => Shape::Bool,
        },
        Instr::Neg { .. } => Shape::Int,
        Instr::Coll { op, .. } => match op {
            CollOp::Member | CollOp::MapHasKey | CollOp::SeqContains => Shape::Bool,
            CollOp::Card
            | CollOp::MapSize
            | CollOp::SeqLen
            | CollOp::SeqIndexOf
            | CollOp::SeqLastIndexOf => Shape::Int,
            _ => Shape::Other,
        },
        _ => Shape::Other,
    }
}

fn ensure_bools(col: &mut Col) -> &mut Lanes {
    if !matches!(col, Col::Bools(_)) {
        *col = Col::Bools(mask_zero());
    }
    match col {
        Col::Bools(m) => m,
        _ => unreachable!(),
    }
}

fn ensure_ints(col: &mut Col) -> &mut [i64; LANES] {
    if !matches!(col, Col::Ints(_)) {
        *col = Col::Ints(Box::new([0; LANES]));
    }
    match col {
        Col::Ints(a) => a,
        _ => unreachable!(),
    }
}

fn ensure_values(col: &mut Col) -> &mut Vec<Value> {
    if !matches!(col, Col::Values(_)) {
        *col = Col::Values(vec![Value::Bool(false); LANES]);
    }
    match col {
        Col::Values(vs) => vs,
        _ => unreachable!(),
    }
}

/// Writes one lane of a column, converting the column to the instruction's
/// output shape on first write (stale lanes from an earlier block are never
/// read: a lane is only read where it was written under this block's active
/// mask).
fn write_lane(col: &mut Col, lane: usize, shape: Shape, v: Value) {
    match (shape, v) {
        (Shape::Bool, Value::Bool(b)) => set_lane_bit(ensure_bools(col), lane, b),
        (Shape::Int, Value::Int(i)) => ensure_ints(col)[lane] = i,
        (_, v) => ensure_values(col)[lane] = v,
    }
}

/// The boolean mask of a column under `active`, for `Check` / `CheckGoal`.
///
/// Returns the mask plus the minimum active lane holding a non-boolean (with
/// the reference `"expected bool, found .."` message). When an error lane is
/// reported, the mask bits *below* it are valid — the caller applies them to
/// the lanes the sequential walk would still have reached before the error.
fn mask_col(col: &Col, active: Lanes) -> (Lanes, Option<(usize, String)>) {
    let err_at = |lane: usize, v: &Value| {
        (
            mask_zero(),
            Some((lane, format!("expected bool, found {}", v.sort()))),
        )
    };
    match col {
        Col::Bools(m) => (*m, None),
        Col::Uniform(Value::Bool(b)) => (if *b { [u64::MAX; 4] } else { mask_zero() }, None),
        Col::Uniform(v) => match first_lane(&active) {
            Some(lane) => err_at(lane, v),
            None => (mask_zero(), None),
        },
        Col::Ints(_) => match first_lane(&active) {
            Some(lane) => err_at(lane, &Value::Int(0)),
            None => (mask_zero(), None),
        },
        Col::Values(vs) => {
            let mut m = mask_zero();
            for lane in LaneIter::new(active) {
                match &vs[lane] {
                    Value::Bool(b) => set_lane_bit(&mut m, lane, *b),
                    other => {
                        return (
                            m,
                            Some((lane, format!("expected bool, found {}", other.sort()))),
                        )
                    }
                }
            }
            (m, None)
        }
    }
}

/// Reusable block execution state: one `Col` per register, the active-lane
/// mask, and the batch counters reported through
/// [`crate::stats::ProofStats`]. Created by [`Program::block_exec`], reused
/// across blocks.
pub struct BlockExec {
    cols: Vec<Col>,
    /// Lanes still in play: cleared by failed hypotheses and (at and above
    /// the error lane) by evaluation errors.
    active: Lanes,
    /// Lanes whose goal evaluated to `false` — counterexamples.
    cex: Lanes,
    /// Lanes that executed at least one instruction on the per-lane scalar
    /// fallback path within the current block.
    fallback: Lanes,
    batches: u64,
    fallback_lanes: u64,
    instrs_executed: u64,
}

/// The deciding event of one block: the *minimum-lane* counterexample or
/// evaluation error — exactly the event the sequential reference walk would
/// have stopped at. The lane indexes into the block that was executed.
#[derive(Debug)]
pub enum BlockEvent {
    /// The goal failed at this lane; reconstruct the model with
    /// [`Program::reconstruct_lane`].
    Counterexample(usize),
    /// Evaluation failed at this lane, with the reference evaluator's exact
    /// (wrapped) message.
    Error(usize, String),
}

impl BlockExec {
    /// Number of blocks executed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Number of candidate lanes that took the per-lane scalar fallback for
    /// at least one instruction (collection-valued or mixed-sort columns,
    /// quantifiers).
    pub fn fallback_lanes(&self) -> u64 {
        self.fallback_lanes
    }

    /// Total main-stream instructions executed, counted once per *active
    /// lane* (quantifier-body instructions are not counted separately).
    pub fn instrs_executed(&self) -> u64 {
        self.instrs_executed
    }
}

impl Program {
    /// Creates a reusable block-execution environment sized for this
    /// program, constants preloaded as uniform columns.
    pub fn block_exec(&self) -> BlockExec {
        let mut cols = vec![Col::Uniform(Value::Bool(false)); self.reg_count];
        for (r, v) in &self.consts {
            cols[*r as usize] = Col::Uniform(v.clone());
        }
        BlockExec {
            cols,
            active: mask_zero(),
            cex: mask_zero(),
            fallback: mask_zero(),
            batches: 0,
            fallback_lanes: 0,
            instrs_executed: 0,
        }
    }

    /// Executes the program over one materialized block of candidates,
    /// column-wise. Returns the block's minimum-lane deciding event, if any;
    /// `None` means every candidate in the block passed (hypothesis-rejected
    /// or goal-satisfied) without errors.
    pub fn run_block(&self, block: &BlockBuf, exec: &mut BlockExec) -> Option<BlockEvent> {
        let lanes = block.lanes();
        debug_assert_eq!(block.width(), self.input_count);
        debug_assert!(lanes <= LANES);
        exec.batches += 1;
        exec.active = lanes_up_to(lanes);
        exec.cex = mask_zero();
        exec.fallback = mask_zero();
        self.load_inputs(block, lanes, exec);

        let mut error: Option<(usize, String)> = None;
        for (pc, instr) in self.instrs.iter().enumerate() {
            if mask_is_empty(&exec.active) {
                break;
            }
            exec.instrs_executed += mask_popcount(&exec.active);
            if let Err((lane, raw)) = self.exec_col(instr, exec) {
                // The sequential walk would have stopped at this candidate:
                // suppress this lane and every lane above it, keep executing
                // the lanes below (an earlier-lane event still outranks
                // this error), and keep only the minimum-lane error.
                exec.active = mask_and(exec.active, lanes_up_to(lane));
                error = Some((lane, self.wrap(pc, raw)));
            }
        }
        exec.fallback_lanes += mask_popcount(&exec.fallback);

        match (first_lane(&exec.cex), error) {
            (Some(c), Some((e, _))) if c < e => Some(BlockEvent::Counterexample(c)),
            (_, Some((e, msg))) => Some(BlockEvent::Error(e, msg)),
            (Some(c), None) => Some(BlockEvent::Counterexample(c)),
            (None, None) => None,
        }
    }

    /// Loads the block's input variables into the first `input_count`
    /// columns: an all-equal column becomes `Uniform` (evaluated once per
    /// block downstream), otherwise integers and booleans get packed lanes
    /// and everything else a per-lane `Values` column.
    fn load_inputs(&self, block: &BlockBuf, lanes: usize, exec: &mut BlockExec) {
        for var in 0..self.input_count {
            let first = block.value(0, var);
            let uniform = (1..lanes).all(|lane| block.value(lane, var) == first);
            exec.cols[var] = if uniform {
                Col::Uniform(first.clone())
            } else if (0..lanes).all(|lane| matches!(block.value(lane, var), Value::Int(_))) {
                let mut a = Box::new([0i64; LANES]);
                for (lane, out) in a.iter_mut().enumerate().take(lanes) {
                    if let Value::Int(i) = block.value(lane, var) {
                        *out = *i;
                    }
                }
                Col::Ints(a)
            } else if (0..lanes).all(|lane| matches!(block.value(lane, var), Value::Bool(_))) {
                let mut m = mask_zero();
                for lane in 0..lanes {
                    if let Value::Bool(b) = block.value(lane, var) {
                        set_lane_bit(&mut m, lane, *b);
                    }
                }
                Col::Bools(m)
            } else {
                let mut vs = vec![Value::Bool(false); LANES];
                for (lane, out) in vs.iter_mut().enumerate().take(lanes) {
                    *out = block.value(lane, var).clone();
                }
                Col::Values(vs)
            };
        }
    }

    /// Executes one instruction column-wise over the active lanes. An error
    /// is `(lane, raw message)` for the *minimum* active lane that fails;
    /// for `Check`, the hypothesis mask is applied to the surviving lanes
    /// below the error lane before returning.
    fn exec_col(&self, instr: &Instr, exec: &mut BlockExec) -> Result<(), (usize, String)> {
        match instr {
            Instr::Coerce { a, kind, ctx } => {
                match &exec.cols[*a as usize] {
                    Col::Bools(_) => {
                        if *kind != Kind::Bool {
                            let lane = first_lane(&exec.active).unwrap_or(0);
                            let e = coerce_value(&Value::Bool(false), *kind, ctx).unwrap_err();
                            return Err((lane, e));
                        }
                    }
                    Col::Ints(_) => {
                        if *kind != Kind::Int {
                            let lane = first_lane(&exec.active).unwrap_or(0);
                            let e = coerce_value(&Value::Int(0), *kind, ctx).unwrap_err();
                            return Err((lane, e));
                        }
                    }
                    Col::Uniform(v) => {
                        if let Err(e) = coerce_value(v, *kind, ctx) {
                            return Err((first_lane(&exec.active).unwrap_or(0), e));
                        }
                    }
                    Col::Values(vs) => {
                        for lane in LaneIter::new(exec.active) {
                            if let Err(e) = coerce_value(&vs[lane], *kind, ctx) {
                                return Err((lane, e));
                            }
                        }
                    }
                }
                Ok(())
            }
            Instr::Unbound { slot } => Err((
                first_lane(&exec.active).unwrap_or(0),
                format!("unbound slot {slot}"),
            )),
            Instr::Check { r } => {
                let (m, err) = mask_col(&exec.cols[*r as usize], exec.active);
                exec.active = mask_and(exec.active, m);
                match err {
                    None => Ok(()),
                    Some((lane, e)) => Err((lane, e)),
                }
            }
            Instr::CheckGoal { r } => {
                let (m, err) = mask_col(&exec.cols[*r as usize], exec.active);
                exec.cex = mask_and(exec.active, mask_not(m));
                match err {
                    None => Ok(()),
                    Some((lane, e)) => {
                        // Mask bits at and above the error lane are not
                        // meaningful; only lanes the sequential walk would
                        // have reached first can be counterexamples.
                        exec.cex = mask_and(exec.cex, lanes_up_to(lane));
                        Err((lane, e))
                    }
                }
            }
            Instr::Quant { out, .. } => {
                exec.fallback = mask_or(exec.fallback, exec.active);
                let mut result = mask_zero();
                for lane in LaneIter::new(exec.active) {
                    match self.quant_lane(instr, lane, exec) {
                        Ok(b) => set_lane_bit(&mut result, lane, b),
                        Err(e) => {
                            exec.cols[*out as usize] = Col::Bools(result);
                            return Err((lane, e));
                        }
                    }
                }
                exec.cols[*out as usize] = Col::Bools(result);
                Ok(())
            }
            pure => self.exec_pure_col(pure, exec),
        }
    }
}

impl Program {
    /// Executes a value-producing pure instruction column-wise: an
    /// all-uniform fast path (evaluate once per block), vectorized boolean /
    /// integer paths over packed lanes, and a per-lane scalar fallback for
    /// everything else (collection columns, mixed sorts).
    fn exec_pure_col(&self, instr: &Instr, exec: &mut BlockExec) -> Result<(), (usize, String)> {
        let [ra, rb, rc] = operands(instr);
        let out = out_reg(instr) as usize;

        // All operands block-constant: evaluate once, result is uniform.
        if let (Col::Uniform(a), Col::Uniform(b), Col::Uniform(c)) = (
            &exec.cols[ra as usize],
            &exec.cols[rb as usize],
            &exec.cols[rc as usize],
        ) {
            let v =
                apply(instr, a, b, c).map_err(|e| (first_lane(&exec.active).unwrap_or(0), e))?;
            exec.cols[out] = Col::Uniform(v);
            return Ok(());
        }

        match instr {
            Instr::Not { a, .. } => {
                if let Some(m) = bool_view(&exec.cols[*a as usize]) {
                    exec.cols[out] = Col::Bools(mask_not(m));
                    return Ok(());
                }
            }
            Instr::Bool2 { op, a, b, .. } => {
                if let (Some(ma), Some(mb)) = (
                    bool_view(&exec.cols[*a as usize]),
                    bool_view(&exec.cols[*b as usize]),
                ) {
                    let m = match op {
                        Bool2::And => mask_and(ma, mb),
                        Bool2::Or => mask_or(ma, mb),
                        Bool2::Implies => mask_or(mask_not(ma), mb),
                        Bool2::Iff => {
                            mask_not([ma[0] ^ mb[0], ma[1] ^ mb[1], ma[2] ^ mb[2], ma[3] ^ mb[3]])
                        }
                    };
                    exec.cols[out] = Col::Bools(m);
                    return Ok(());
                }
            }
            Instr::Int2 { op, a, b, .. } => {
                if let (Some(va), Some(vb)) = (
                    ints_view(&exec.cols[*a as usize]),
                    ints_view(&exec.cols[*b as usize]),
                ) {
                    let col = match op {
                        Int2::Add | Int2::Sub => {
                            let mut arr = Box::new([0i64; LANES]);
                            for (lane, o) in arr.iter_mut().enumerate() {
                                let (x, y) = (va.get(lane), vb.get(lane));
                                *o = if matches!(op, Int2::Add) {
                                    x.wrapping_add(y)
                                } else {
                                    x.wrapping_sub(y)
                                };
                            }
                            Col::Ints(arr)
                        }
                        Int2::Lt | Int2::Le => {
                            let mut m = mask_zero();
                            for lane in 0..LANES {
                                let (x, y) = (va.get(lane), vb.get(lane));
                                let hit = if matches!(op, Int2::Lt) {
                                    x < y
                                } else {
                                    x <= y
                                };
                                set_lane_bit(&mut m, lane, hit);
                            }
                            Col::Bools(m)
                        }
                    };
                    exec.cols[out] = col;
                    return Ok(());
                }
            }
            Instr::Neg { a, .. } => {
                if let Some(va) = ints_view(&exec.cols[*a as usize]) {
                    let mut arr = Box::new([0i64; LANES]);
                    for (lane, o) in arr.iter_mut().enumerate() {
                        *o = va.get(lane).wrapping_neg();
                    }
                    exec.cols[out] = Col::Ints(arr);
                    return Ok(());
                }
            }
            Instr::Eq { a, b, .. } => {
                let (ca, cb) = (&exec.cols[*a as usize], &exec.cols[*b as usize]);
                // Packed lanes of the same representation are sort-uniform
                // by construction, so the reference sort check passes and
                // equality is a word / lanewise compare.
                if let (Some(ma), Some(mb)) = (bool_view(ca), bool_view(cb)) {
                    if matches!(ca, Col::Bools(_) | Col::Uniform(Value::Bool(_)))
                        && matches!(cb, Col::Bools(_) | Col::Uniform(Value::Bool(_)))
                    {
                        exec.cols[out] = Col::Bools(mask_not([
                            ma[0] ^ mb[0],
                            ma[1] ^ mb[1],
                            ma[2] ^ mb[2],
                            ma[3] ^ mb[3],
                        ]));
                        return Ok(());
                    }
                }
                if let (Some(va), Some(vb)) = (ints_view(ca), ints_view(cb)) {
                    let mut m = mask_zero();
                    for lane in 0..LANES {
                        set_lane_bit(&mut m, lane, va.get(lane) == vb.get(lane));
                    }
                    exec.cols[out] = Col::Bools(m);
                    return Ok(());
                }
            }
            _ => {}
        }

        // Per-lane scalar fallback, ascending lane order (first error is the
        // minimum-lane error).
        exec.fallback = mask_or(exec.fallback, exec.active);
        let shape = out_shape(instr);
        for lane in LaneIter::new(exec.active) {
            let v = {
                let mut s1 = Value::Bool(false);
                let mut s2 = Value::Bool(false);
                let mut s3 = Value::Bool(false);
                let a = lane_ref(&exec.cols[ra as usize], lane, &mut s1);
                let b = lane_ref(&exec.cols[rb as usize], lane, &mut s2);
                let c = lane_ref(&exec.cols[rc as usize], lane, &mut s3);
                apply(instr, a, b, c).map_err(|e| (lane, e))?
            };
            write_lane(&mut exec.cols[out], lane, shape, v);
        }
        Ok(())
    }

    /// Executes one instruction at a single lane (the scalar fallback inside
    /// a block, and the whole of quantifier-body execution). Errors are raw.
    fn exec_lane(&self, instr: &Instr, lane: usize, exec: &mut BlockExec) -> Result<(), String> {
        match instr {
            Instr::Coerce { a, kind, ctx } => {
                let mut s = Value::Bool(false);
                coerce_value(lane_ref(&exec.cols[*a as usize], lane, &mut s), *kind, ctx)
            }
            Instr::Unbound { slot } => Err(format!("unbound slot {slot}")),
            Instr::Check { .. } | Instr::CheckGoal { .. } => {
                Err("internal: check inside quantifier body".to_string())
            }
            Instr::Quant { out, .. } => {
                let b = self.quant_lane(instr, lane, exec)?;
                write_lane(
                    &mut exec.cols[*out as usize],
                    lane,
                    Shape::Bool,
                    Value::Bool(b),
                );
                Ok(())
            }
            pure => {
                let [ra, rb, rc] = operands(pure);
                let v = {
                    let mut s1 = Value::Bool(false);
                    let mut s2 = Value::Bool(false);
                    let mut s3 = Value::Bool(false);
                    let a = lane_ref(&exec.cols[ra as usize], lane, &mut s1);
                    let b = lane_ref(&exec.cols[rb as usize], lane, &mut s2);
                    let c = lane_ref(&exec.cols[rc as usize], lane, &mut s3);
                    apply(pure, a, b, c)?
                };
                write_lane(
                    &mut exec.cols[out_reg(pure) as usize],
                    lane,
                    out_shape(pure),
                    v,
                );
                Ok(())
            }
        }
    }

    /// Evaluates a quantifier at one lane, mirroring the reference loop
    /// exactly (range guard, ascending iteration, early exit, first error
    /// wins). Binder and body registers are written at this lane only.
    fn quant_lane(&self, instr: &Instr, lane: usize, exec: &mut BlockExec) -> Result<bool, String> {
        let Instr::Quant {
            universal,
            binder,
            lo,
            hi,
            body,
            body_out,
            ..
        } = instr
        else {
            return Err("internal: not a quantifier".to_string());
        };
        let lo = int_of(&lane_value(&exec.cols[*lo as usize], lane))?;
        let hi = int_of(&lane_value(&exec.cols[*hi as usize], lane))?;
        if hi - lo > MAX_QUANTIFIER_RANGE {
            return Err(format!(
                "quantifier range of width {} is too large to enumerate",
                hi - lo
            ));
        }
        let mut result = *universal;
        for i in lo..hi {
            write_lane(
                &mut exec.cols[*binder as usize],
                lane,
                Shape::Int,
                Value::Int(i),
            );
            for body_instr in &self.bodies[*body as usize] {
                self.exec_lane(body_instr, lane, exec)?;
            }
            let b = bool_of(&lane_value(&exec.cols[*body_out as usize], lane))?;
            if *universal && !b {
                result = false;
                break;
            }
            if !*universal && b {
                result = true;
                break;
            }
        }
        Ok(result)
    }

    /// Rebuilds the named-variable [`Model`] for one lane of the last
    /// [`Program::run_block`] call — valid for the lane of a
    /// [`BlockEvent::Counterexample`] (that lane executed every instruction,
    /// so all named registers are populated).
    pub fn reconstruct_lane(&self, exec: &BlockExec, lane: usize) -> Model {
        let mut model = Model::new();
        for (name, r) in &self.named {
            model.insert(name.clone(), lane_value(&exec.cols[*r as usize], lane));
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Obligation;
    use semcommute_logic::build::*;

    fn compare_scalar(ob: &Obligation, order: &[&str], inputs: Vec<Value>) {
        let order: Vec<String> = order.iter().map(|s| s.to_string()).collect();
        let compiled = CompiledObligation::compile(ob, &order);
        let program = Program::lower(&compiled);
        let mut tree_env = compiled.env();
        let mut exec = program.scalar_exec();
        let mut tree_inputs = inputs.clone();
        let mut bc_inputs = inputs;
        let tree = compiled.check(&mut tree_inputs, &mut tree_env);
        let bytecode = program.check(&mut bc_inputs, &mut exec);
        match (&tree, &bytecode) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("tree {tree:?} != bytecode {bytecode:?}"),
        }
        if let Ok(Some(())) = tree {
            assert_eq!(compiled.reconstruct(&tree_env), program.reconstruct(&exec));
        }
    }

    #[test]
    fn scalar_execution_matches_tree_walk() {
        let ob = Obligation::new("t")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        compare_scalar(
            &ob,
            &["v1", "v2", "s"],
            vec![Value::elem(1), Value::elem(1), Value::set_of([])],
        );
        compare_scalar(
            &ob,
            &["v1", "v2", "s"],
            vec![
                Value::elem(1),
                Value::elem(2),
                Value::set_of([semcommute_logic::ElemId(1)]),
            ],
        );
    }

    #[test]
    fn scalar_execution_matches_tree_walk_on_errors() {
        // Ill-sorted operand inside a define: identical wrapped message.
        let ob = Obligation::new("bad")
            .define("n", card(var_elem("v")))
            .goal(eq(var_int("n"), int(0)));
        compare_scalar(&ob, &["v"], vec![Value::elem(1)]);
        // Oversized quantifier range inside the goal.
        let ob = Obligation::new("wide").goal(forall_int(
            "i",
            int(0),
            int(MAX_QUANTIFIER_RANGE + 2),
            le(int(0), var_int("i")),
        ));
        compare_scalar(&ob, &[], vec![]);
    }

    #[test]
    fn hypothesis_rejection_skips_the_goal() {
        // The goal would error (card of an elem), but the false input-only
        // hypothesis rejects the candidate first — in both backends.
        let ob = Obligation::new("rejected")
            .assume(lt(var_int("i"), int(0)))
            .goal(eq(card(var_elem("v")), int(0)));
        compare_scalar(&ob, &["i", "v"], vec![Value::Int(3), Value::elem(1)]);
    }

    #[test]
    fn quantifiers_and_shadowing_match() {
        let ob = Obligation::new("q").goal(exists_int(
            "i",
            int(0),
            seq_len(var_seq("q")),
            and2(
                eq(seq_at(var_seq("q"), var_int("i")), var_elem("v")),
                forall_int("i", int(0), int(2), le(int(0), var_int("i"))),
            ),
        ));
        for (q, v) in [
            (
                Value::seq_of([semcommute_logic::ElemId(4), semcommute_logic::ElemId(7)]),
                Value::elem(7),
            ),
            (Value::seq_of([semcommute_logic::ElemId(4)]), Value::elem(7)),
        ] {
            compare_scalar(&ob, &["q", "v"], vec![q, v]);
        }
    }

    #[test]
    fn lowering_ends_with_the_goal_check() {
        let ob = Obligation::new("g").goal(eq(var_int("x"), int(0)));
        let compiled = CompiledObligation::compile(&ob, &["x".to_string()]);
        let program = Program::lower(&compiled);
        assert!(!program.is_empty());
        assert!(matches!(
            program.instrs.last(),
            Some(Instr::CheckGoal { .. })
        ));
    }

    #[test]
    fn common_subexpressions_are_shared() {
        // `card(s)` appears three times but is lowered once.
        let ob = Obligation::new("cse").goal(and2(
            le(card(var_set("s")), card(var_set("s"))),
            lt(int(-1), card(var_set("s"))),
        ));
        let compiled = CompiledObligation::compile(&ob, &["s".to_string()]);
        let program = Program::lower(&compiled);
        let cards = program
            .instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Coll {
                        op: CollOp::Card,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(cards, 1);
        compare_scalar(&ob, &["s"], vec![Value::set_of([])]);
    }

    #[test]
    fn lane_masks_cover_all_two_hundred_fifty_six_lanes() {
        assert_eq!(lanes_up_to(0), [0; 4]);
        assert_eq!(lanes_up_to(LANES), [u64::MAX; 4]);
        assert_eq!(mask_popcount(&lanes_up_to(100)), 100);
        assert_eq!(first_lane(&lanes_up_to(0)), None);
        let mut m = mask_zero();
        set_lane_bit(&mut m, 200, true);
        set_lane_bit(&mut m, 63, true);
        assert_eq!(first_lane(&m), Some(63));
        assert_eq!(LaneIter::new(m).collect::<Vec<_>>(), vec![63, 200]);
    }
}
