//! The finite-model prover: exhaustive counter-model search over the relevant
//! universe, runnable whole or as splittable position ranges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use semcommute_logic::{Model, Value};

use crate::bytecode::{BlockEvent, Program, LANES};
use crate::compiled::CompiledObligation;
use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::space::{BlockBuf, InputSpace};
use crate::stats::ProofStats;
use crate::verdict::Verdict;

/// The finite-model prover.
///
/// For each candidate model of the obligation's input variables (see
/// [`InputSpace`]), the prover computes the defined variables by evaluation —
/// exactly the computation the generated testing method would perform — and
/// then checks whether all hypotheses hold and the goal fails. If such a model
/// exists the obligation is invalid and the model is reported; if no candidate
/// model within the scope is a counter-model, the obligation is reported
/// valid.
///
/// For the counter / set / map fragment the scope-derived universe is
/// sufficient for this to be a complete decision procedure; for the sequence
/// fragment validity is relative to the sequence-length scope (reported in the
/// verdict statistics and by the verification driver).
///
/// [`FiniteModelProver::prove`] runs the whole search on the calling thread.
/// For intra-obligation parallelism, [`FiniteModelProver::begin`] prepares a
/// [`ModelSearch`] whose candidate space can be scanned as independent
/// unreduced-position ranges ([`ModelSearch::run_range`]) — the
/// work-stealing scheduler splits a large obligation into such range tasks
/// so idle workers can steal parts of one monolithic search.
#[derive(Debug, Clone, Default)]
pub struct FiniteModelProver {
    scope: Scope,
}

impl FiniteModelProver {
    /// Creates a prover with the given scope.
    pub fn new(scope: Scope) -> FiniteModelProver {
        FiniteModelProver { scope }
    }

    /// The scope used by this prover.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Prepares the counter-model search for an obligation: validates it,
    /// builds the input space, checks the model budget, and compiles the
    /// obligation to its slot-indexed form. Returns the verdict directly
    /// (`Err`) when the search cannot run at all — a malformed obligation or
    /// a space over budget.
    pub fn begin(&self, ob: &Obligation) -> Result<ModelSearch, Verdict> {
        let started = Instant::now();
        if let Err(msg) = ob.validate() {
            return Err(Verdict::Unknown {
                reason: format!("malformed obligation: {msg}"),
                stats: ProofStats::finite(0, started.elapsed()),
            });
        }
        let space = InputSpace::from_obligation(ob, self.scope.clone());
        let estimate = space.estimated_size();
        if estimate > self.scope.max_models as u128 {
            return Err(Verdict::Unknown {
                reason: format!(
                    "search space of ~{estimate} models exceeds the budget of {}",
                    self.scope.max_models
                ),
                stats: ProofStats::finite(0, started.elapsed()),
            });
        }
        // The obligation is compiled once per search: every variable
        // occurrence becomes a slot index, so the per-candidate loop never
        // builds a name-keyed model or looks anything up by string. The
        // compiled form holds no arena ids, so one search can be scanned
        // from many worker threads.
        let compiled = CompiledObligation::compile(ob, &space.var_order());
        // With the bytecode backend enabled the obligation is additionally
        // lowered to its flat register program, once per search; the scans
        // below then run candidates in batched 256-lane blocks instead of
        // tree-walking `eval_c` per candidate. The tree-walk form is kept
        // regardless: `replay` and the differential harnesses use it as the
        // bit-reproducible oracle.
        let program = self.scope.bytecode.then(|| Program::lower(&compiled));
        Ok(ModelSearch {
            compiled,
            space,
            program,
            // `estimate <= max_models` (a u64) was just checked.
            total: estimate as u64,
            started,
        })
    }

    /// Attempts to prove the obligation by exhaustive counter-model search
    /// on the calling thread. This is the bit-reproducible sequential form
    /// the range-split runs are differentially tested against.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        match self.begin(ob) {
            Err(verdict) => verdict,
            Ok(search) => search.run(),
        }
    }

    /// Evaluates the obligation under one explicit input model, returning
    /// `Some(full_model)` when the model is a counterexample. Used by tests
    /// and by the runtime crate to replay reported counterexamples.
    pub fn replay(&self, ob: &Obligation, input: &Model) -> Option<Model> {
        let order: Vec<String> = ob.input_vars().keys().cloned().collect();
        let compiled = crate::compiled::CompiledObligation::compile(ob, &order);
        let mut env = compiled.env();
        let mut buf: Vec<Value> = order
            .iter()
            .map(|name| input.get(name).cloned())
            .collect::<Option<_>>()?;
        match compiled.check(&mut buf, &mut env) {
            Ok(Some(())) => Some(compiled.reconstruct(&env)),
            _ => None,
        }
    }

    /// Returns the input model restricted to the obligation's input variables
    /// from a full counterexample model (inverse of the define computation).
    pub fn project_inputs(&self, ob: &Obligation, full: &Model) -> Model {
        let inputs = ob.input_vars();
        Model::from_bindings(
            full.iter()
                .filter(|(name, _)| inputs.contains_key(*name))
                .map(|(name, value)| (name.to_string(), value.clone())),
        )
    }
}

/// A prepared counter-model search: the compiled obligation plus its input
/// space, ready to be scanned whole ([`ModelSearch::run`]) or as
/// unreduced-position ranges ([`ModelSearch::run_range`]) that many worker
/// threads drive concurrently against one [`SearchShared`].
///
/// Positions are **unreduced** enumeration indices (see
/// [`crate::space::SpaceIter::position`]): deterministic, identical at every
/// thread count and split granularity, and — because the orbit-canonical
/// enumeration visits canonical candidates in unreduced-position order — the
/// deciding event with the minimum position is exactly the event the
/// sequential scan stops at. That is what makes a range-split search report
/// the *same* verdict, counter-model, and `Unknown` reason as the unsplit
/// sequential oracle, not merely an equivalent one.
#[derive(Debug)]
pub struct ModelSearch {
    compiled: CompiledObligation,
    space: InputSpace,
    /// The lowered register program, present iff the scope selects the
    /// bytecode backend ([`crate::scope::Scope::bytecode`]).
    program: Option<Program>,
    total: u64,
    started: Instant,
}

impl ModelSearch {
    /// The unreduced size of the candidate space: ranges partition
    /// `[0, total)`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Runs the whole search sequentially on the calling thread and returns
    /// the verdict. Equivalent to `run_range(0, total)` + finalize, but with
    /// no shared state or atomics — the reproducible oracle path.
    pub fn run(self) -> Verdict {
        if let Some(program) = self.program.as_ref() {
            return self.run_blocks(program);
        }
        let mut env = self.compiled.env();
        let mut buf = Vec::with_capacity(self.compiled.input_count());
        let mut it = self.space.iter();
        let mut checked: u64 = 0;
        while it.next_values(&mut buf) {
            checked += 1;
            match self.compiled.check(&mut buf, &mut env) {
                Ok(None) => continue,
                Ok(Some(())) => {
                    return Verdict::CounterModel {
                        model: self.compiled.reconstruct(&env),
                        stats: ProofStats::finite(checked, self.started.elapsed())
                            .with_orbits_pruned(it.orbits_pruned()),
                    }
                }
                Err(reason) => {
                    return Verdict::Unknown {
                        reason,
                        stats: ProofStats::finite(checked, self.started.elapsed())
                            .with_orbits_pruned(it.orbits_pruned()),
                    }
                }
            }
        }
        Verdict::Valid {
            stats: ProofStats::finite(checked, self.started.elapsed())
                .with_orbits_pruned(it.orbits_pruned()),
        }
    }

    /// The whole-search scan under the bytecode backend: candidates are
    /// materialized in blocks of up to [`LANES`] and executed column-wise.
    /// [`crate::bytecode::Program::run_block`] reports the minimum-lane
    /// deciding event of each block, which is exactly the candidate the
    /// per-candidate scan above stops at, so verdict, counter-model,
    /// `Unknown` reason, `models_checked`, and `orbits_pruned` all match
    /// the tree-walk oracle bit for bit.
    fn run_blocks(&self, program: &Program) -> Verdict {
        let mut it = self.space.iter();
        let mut block = BlockBuf::new();
        let mut exec = program.block_exec();
        let mut checked: u64 = 0;
        loop {
            let lanes = it.next_block(LANES, &mut block);
            if lanes == 0 {
                break;
            }
            match program.run_block(&block, &mut exec) {
                None => checked += lanes as u64,
                Some(BlockEvent::Counterexample(lane)) => {
                    return Verdict::CounterModel {
                        model: program.reconstruct_lane(&exec, lane),
                        stats: ProofStats::finite(
                            checked + lane as u64 + 1,
                            self.started.elapsed(),
                        )
                        .with_orbits_pruned(block.pruned_after(lane))
                        .with_batch_counters(
                            exec.batches(),
                            exec.fallback_lanes(),
                            exec.instrs_executed(),
                        ),
                    }
                }
                Some(BlockEvent::Error(lane, reason)) => {
                    return Verdict::Unknown {
                        reason,
                        stats: ProofStats::finite(
                            checked + lane as u64 + 1,
                            self.started.elapsed(),
                        )
                        .with_orbits_pruned(block.pruned_after(lane))
                        .with_batch_counters(
                            exec.batches(),
                            exec.fallback_lanes(),
                            exec.instrs_executed(),
                        ),
                    }
                }
            }
        }
        Verdict::Valid {
            stats: ProofStats::finite(checked, self.started.elapsed())
                .with_orbits_pruned(it.orbits_pruned())
                .with_batch_counters(
                    exec.batches(),
                    exec.fallback_lanes(),
                    exec.instrs_executed(),
                ),
        }
    }

    /// Scans the candidates whose unreduced position lies in `[lo, hi)`,
    /// recording what it finds into `shared`. Safe to call from many threads
    /// over disjoint ranges of one search.
    ///
    /// The scan stops early when `shared` already holds a deciding event at
    /// a position below the range (the sequential oracle would never have
    /// reached here) or below the scan's own cursor (nothing further in this
    /// range can change the verdict); in both cases the work skipped is work
    /// whose outcome is already irrelevant. On a deciding event the scan
    /// records it — [`SearchShared`] keeps the minimum-position one — and
    /// stops, exactly as the sequential scan stops at its first deciding
    /// event.
    pub fn run_range(&self, lo: u64, hi: u64, shared: &SearchShared) {
        if shared.deciding.load(Ordering::Relaxed) < lo {
            return;
        }
        if let Some(program) = self.program.as_ref() {
            return self.run_range_blocks(program, lo, hi, shared);
        }
        let mut it = self.space.range_iter(lo, hi);
        let mut env = self.compiled.env();
        let mut buf = Vec::with_capacity(self.compiled.input_count());
        let mut checked: u64 = 0;
        loop {
            let upos = it.position();
            if !it.next_values(&mut buf) {
                break;
            }
            checked += 1;
            match self.compiled.check(&mut buf, &mut env) {
                Ok(None) => {}
                Ok(Some(())) => {
                    shared.record_counterexample(upos, self.compiled.reconstruct(&env));
                    break;
                }
                Err(reason) => {
                    shared.record_error(upos, reason);
                    break;
                }
            }
            if shared.deciding.load(Ordering::Relaxed) < upos {
                break;
            }
        }
        shared.checked.fetch_add(checked, Ordering::Relaxed);
        shared
            .pruned
            .fetch_add(it.orbits_pruned(), Ordering::Relaxed);
    }

    /// The range scan under the bytecode backend. The deciding-event guard
    /// is polled once per block rather than once per candidate; that is
    /// count-identical to the per-candidate guard under any sequential
    /// execution order, because ranges are disjoint: a range either contains
    /// its own minimum-position event (both scans stop exactly there), lies
    /// entirely below the recorded minimum (both scan it fully), or starts
    /// above it (both skip it). At more than one thread the counters are
    /// racy in exactly the way the tree-walk scan's already are; the
    /// verdict, counter-model, and `Unknown` reason remain bit-identical
    /// because only the minimum-position event decides.
    fn run_range_blocks(&self, program: &Program, lo: u64, hi: u64, shared: &SearchShared) {
        let mut it = self.space.range_iter(lo, hi);
        let mut block = BlockBuf::new();
        let mut exec = program.block_exec();
        let mut checked: u64 = 0;
        // `Some` when a deciding event in this range fixed the pruned
        // counter at the event's lane; otherwise the iterator's total.
        let mut pruned_at_event: Option<u64> = None;
        loop {
            if shared.deciding.load(Ordering::Relaxed) < it.position() {
                break;
            }
            let lanes = it.next_block(LANES, &mut block);
            if lanes == 0 {
                break;
            }
            match program.run_block(&block, &mut exec) {
                None => checked += lanes as u64,
                Some(BlockEvent::Counterexample(lane)) => {
                    checked += lane as u64 + 1;
                    shared.record_counterexample(
                        block.position(lane),
                        program.reconstruct_lane(&exec, lane),
                    );
                    pruned_at_event = Some(block.pruned_after(lane));
                    break;
                }
                Some(BlockEvent::Error(lane, reason)) => {
                    checked += lane as u64 + 1;
                    shared.record_error(block.position(lane), reason);
                    pruned_at_event = Some(block.pruned_after(lane));
                    break;
                }
            }
        }
        shared.checked.fetch_add(checked, Ordering::Relaxed);
        shared.pruned.fetch_add(
            pruned_at_event.unwrap_or_else(|| it.orbits_pruned()),
            Ordering::Relaxed,
        );
        shared.batches.fetch_add(exec.batches(), Ordering::Relaxed);
        shared
            .batch_fallbacks
            .fetch_add(exec.fallback_lanes(), Ordering::Relaxed);
        shared
            .instrs_executed
            .fetch_add(exec.instrs_executed(), Ordering::Relaxed);
    }

    /// Assembles the verdict after every subrange of the search completed,
    /// merging the accumulated `ProofStats` (summed `models_checked` and
    /// `orbits_pruned`, wall-clock from [`FiniteModelProver::begin`] to
    /// now). Call exactly once, after the last subrange — it drains the
    /// shared findings.
    pub fn finalize(&self, shared: &SearchShared) -> Verdict {
        assemble_verdict(shared.take_outcome(), self.started.elapsed())
    }
}

/// The state shared by all subranges of one split model search: the
/// minimum-position deciding event (an `AtomicU64` early-exit guard over
/// unreduced positions) plus merged work counters.
#[derive(Debug)]
pub struct SearchShared {
    /// Lowest unreduced position at which a deciding event (counter-model
    /// or evaluation error) was recorded; `u64::MAX` when none. Subranges
    /// poll this to stop scanning positions the sequential oracle would
    /// never have reached.
    deciding: AtomicU64,
    /// Candidate models checked, summed over subranges.
    checked: AtomicU64,
    /// Candidates pruned as non-canonical, summed over subranges (each
    /// range counts exactly the pruned positions inside itself).
    pruned: AtomicU64,
    /// Bytecode blocks executed, summed over subranges (zero under the
    /// tree-walk backend).
    batches: AtomicU64,
    /// Lanes re-run through the scalar fallback, summed over subranges.
    batch_fallbacks: AtomicU64,
    /// Bytecode instructions executed across active lanes, summed over
    /// subranges.
    instrs_executed: AtomicU64,
    findings: Mutex<SearchFindings>,
}

#[derive(Debug, Default)]
struct SearchFindings {
    /// The counter-model with the lowest position observed so far.
    counterexample: Option<(u64, Model)>,
    /// Every evaluation error observed, with its position.
    errors: Vec<(u64, String)>,
}

impl Default for SearchShared {
    fn default() -> Self {
        SearchShared::new()
    }
}

impl SearchShared {
    /// Creates the shared state for one search (no event recorded).
    pub fn new() -> SearchShared {
        SearchShared {
            deciding: AtomicU64::new(u64::MAX),
            checked: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_fallbacks: AtomicU64::new(0),
            instrs_executed: AtomicU64::new(0),
            findings: Mutex::new(SearchFindings::default()),
        }
    }

    /// The position of the lowest deciding event recorded so far.
    pub fn deciding(&self) -> Option<u64> {
        match self.deciding.load(Ordering::SeqCst) {
            u64::MAX => None,
            p => Some(p),
        }
    }

    /// Records a counter-model found at unreduced position `upos`. Keeps
    /// the minimum-position one no matter the order in which racing
    /// subranges report.
    pub fn record_counterexample(&self, upos: u64, model: Model) {
        self.deciding.fetch_min(upos, Ordering::SeqCst);
        let mut f = self.findings.lock().unwrap_or_else(|p| p.into_inner());
        match &f.counterexample {
            Some((existing, _)) if *existing <= upos => {}
            _ => f.counterexample = Some((upos, model)),
        }
    }

    /// Records an evaluation error at unreduced position `upos`. Errors are
    /// deciding events too — the sequential scan stops at the first one — so
    /// the minimum also covers them; every error is retained for the
    /// verdict's statistics.
    pub fn record_error(&self, upos: u64, reason: String) {
        self.deciding.fetch_min(upos, Ordering::SeqCst);
        self.findings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .errors
            .push((upos, reason));
    }

    /// Drains the shared state into its merged outcome (errors sorted by
    /// position). Meant to be called once, by whoever retires the last
    /// subrange; the shared state is borrowed (not consumed) because the
    /// scheduler holds it behind an `Arc` shared with in-flight tasks.
    pub fn take_outcome(&self) -> SearchOutcome {
        let mut findings =
            std::mem::take(&mut *self.findings.lock().unwrap_or_else(|p| p.into_inner()));
        findings.errors.sort_by_key(|(upos, _)| *upos);
        SearchOutcome {
            checked: self.checked.load(Ordering::SeqCst),
            pruned: self.pruned.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            batch_fallbacks: self.batch_fallbacks.load(Ordering::SeqCst),
            instrs_executed: self.instrs_executed.load(Ordering::SeqCst),
            counterexample: findings.counterexample,
            errors: findings.errors,
        }
    }
}

/// The merged outcome of a (possibly split) model search.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Candidate models checked, summed over subranges.
    pub checked: u64,
    /// Candidates pruned as non-canonical, summed over subranges.
    pub pruned: u64,
    /// Bytecode blocks executed, summed over subranges (zero under the
    /// tree-walk backend).
    pub batches: u64,
    /// Lanes re-run through the scalar fallback, summed over subranges.
    pub batch_fallbacks: u64,
    /// Bytecode instructions executed across active lanes, summed over
    /// subranges.
    pub instrs_executed: u64,
    /// The minimum-position counter-model, if any was found.
    pub counterexample: Option<(u64, Model)>,
    /// Every evaluation error observed, sorted by position.
    pub errors: Vec<(u64, String)>,
}

/// Turns a merged [`SearchOutcome`] into the verdict the sequential scan of
/// the same space would report: the deciding event is the one with the
/// **minimum unreduced position** — a counter-model yields `CounterModel`, an
/// evaluation error yields `Unknown` with that error as the reason (ties
/// cannot occur: one position records one event). Events at higher positions
/// — which the sequential scan would never have reached — do not change the
/// verdict; errors among them are surfaced through [`ProofStats::errors`] so
/// a verdict that raced past failures still reports them.
pub fn assemble_verdict(outcome: SearchOutcome, elapsed: Duration) -> Verdict {
    let stats = ProofStats::finite(outcome.checked, elapsed)
        .with_orbits_pruned(outcome.pruned)
        .with_batch_counters(
            outcome.batches,
            outcome.batch_fallbacks,
            outcome.instrs_executed,
        );
    let error_decides = match (&outcome.counterexample, outcome.errors.first()) {
        (Some((cx, _)), Some((err, _))) => err < cx,
        (None, Some(_)) => true,
        _ => false,
    };
    if error_decides {
        let mut errors = outcome.errors;
        let (_, reason) = errors.remove(0);
        let non_fatal: Vec<String> = errors.into_iter().map(|(_, e)| e).collect();
        Verdict::Unknown {
            reason,
            stats: stats.with_errors(non_fatal),
        }
    } else if let Some((_, model)) = outcome.counterexample {
        let non_fatal: Vec<String> = outcome.errors.into_iter().map(|(_, e)| e).collect();
        Verdict::CounterModel {
            model,
            stats: stats.with_errors(non_fatal),
        }
    } else {
        Verdict::Valid { stats }
    }
}

/// Convenience: prove an obligation with [`Scope::standard`].
pub fn prove_finite(ob: &Obligation) -> Verdict {
    FiniteModelProver::new(Scope::standard()).prove(ob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_logic::Value;

    fn prover() -> FiniteModelProver {
        FiniteModelProver::new(Scope::small())
    }

    #[test]
    fn valid_obligation_is_proved() {
        // r = (v in s), s1 = s Un {v}  |-  v in s1
        let ob = Obligation::new("add_membership")
            .define("r", member(var_elem("v"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let verdict = prover().prove(&ob);
        assert!(verdict.is_valid(), "{verdict}");
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn invalid_obligation_yields_counterexample() {
        // claim: v in s  (false in general)
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = prover().prove(&ob);
        let model = verdict.counter_model().expect("counterexample expected");
        // In the counterexample v is indeed not a member of s.
        let v = model.get("v").unwrap().as_elem().unwrap();
        assert!(!model.get("s").unwrap().as_set().unwrap().contains(&v));
    }

    #[test]
    fn hypotheses_restrict_the_search() {
        // Under the hypothesis v in s, the goal v in s holds.
        let ob = Obligation::new("hyp")
            .assume(member(var_elem("v"), var_set("s")))
            .goal(member(var_elem("v"), var_set("s")));
        assert!(prover().prove(&ob).is_valid());
    }

    #[test]
    fn conditional_commutativity_of_add_and_contains() {
        // Between condition for contains(v1); add(v2):  v1 ~= v2 | r1a
        // soundness: under the condition, contains returns the same value
        // before and after the add.
        let cond = or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1a"));
        let ob = Obligation::new("contains_add_between_s")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(cond.clone())
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob).is_valid());

        // completeness: under the negated condition the return values differ.
        let ob_c = Obligation::new("contains_add_between_c")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(not(cond))
            .goal(neq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob_c).is_valid());

        // Without the condition, soundness fails and the counterexample has
        // v1 = v2 with v1 not in s.
        let ob_bad = Obligation::new("contains_add_unconditional")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        let verdict = prover().prove(&ob_bad);
        let model = verdict.counter_model().expect("counterexample expected");
        assert_eq!(model.get("v1"), model.get("v2"));
        assert_eq!(model.get("r1a"), Some(&Value::Bool(false)));
        assert_eq!(model.get("r1b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let tiny = Scope {
            max_models: 1,
            ..Scope::small()
        };
        let ob = Obligation::new("budget").goal(eq(var_set("s"), var_set("t")));
        let verdict = FiniteModelProver::new(tiny).prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn malformed_obligation_reports_unknown() {
        let ob = Obligation::new("cyclic").define("x", add(var_int("x"), int(1)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn eval_error_reports_unknown() {
        // ill-sorted goal: card of an element
        let ob = Obligation::new("illsorted").goal(eq(card(var_elem("v")), int(0)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn replay_and_project_round_trip() {
        let ob = Obligation::new("bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let p = prover();
        let verdict = p.prove(&ob);
        let full = verdict.counter_model().unwrap();
        let inputs = p.project_inputs(&ob, full);
        assert!(inputs.contains("v") && inputs.contains("s") && !inputs.contains("r"));
        let replayed = p.replay(&ob, &inputs).expect("still a counterexample");
        assert_eq!(replayed.get("r"), Some(&Value::Bool(false)));
    }

    /// Runs a prepared search as `parts` contiguous ranges (in the given
    /// completion order) and finalizes — the split execution the scheduler
    /// performs, minus the deques.
    fn run_split(ob: &Obligation, scope: Scope, parts: u64, order: &[u64]) -> Verdict {
        let search = FiniteModelProver::new(scope).begin(ob).expect("searchable");
        let total = search.total();
        let shared = SearchShared::new();
        let bounds = |i: u64| (i * total / parts, (i + 1) * total / parts);
        for &part in order {
            let (lo, hi) = bounds(part);
            search.run_range(lo, hi, &shared);
        }
        search.finalize(&shared)
    }

    #[test]
    fn range_split_search_agrees_with_sequential() {
        // A valid obligation: every split execution must enumerate the whole
        // space, and the merged counters must reconcile exactly with the
        // unsplit scan.
        let ob = Obligation::new("split_valid")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .assume(not(eq(var_elem("v1"), var_elem("v2"))))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        let sequential = FiniteModelProver::new(Scope::standard()).prove(&ob);
        assert!(sequential.is_valid());
        for parts in [2u64, 7, 64] {
            let order: Vec<u64> = (0..parts).rev().collect();
            let split = run_split(&ob, Scope::standard(), parts, &order);
            assert!(split.is_valid(), "{parts} parts: {split}");
            assert_eq!(
                split.stats().models_checked,
                sequential.stats().models_checked,
                "{parts} parts: subrange models_checked must sum to the unsplit count"
            );
            assert_eq!(
                split.stats().orbits_pruned,
                sequential.stats().orbits_pruned,
                "{parts} parts: subrange orbits_pruned must sum to the unsplit count"
            );
        }

        // An invalid obligation: the split search must report exactly the
        // sequential oracle's counter-model (the minimum-position one), even
        // when the range containing it completes last.
        let bogus = Obligation::new("split_bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let oracle = FiniteModelProver::new(Scope::standard()).prove(&bogus);
        let expected = oracle.counter_model().expect("counterexample expected");
        for parts in [3u64, 16] {
            let order: Vec<u64> = (0..parts).rev().collect();
            let split = run_split(&bogus, Scope::standard(), parts, &order);
            assert_eq!(
                split.counter_model().expect("counterexample expected"),
                expected,
                "{parts} parts: the reported counter-model drifted from the oracle"
            );
        }
    }

    /// The deciding event of a split search is the one at the minimum
    /// unreduced position, whichever kind it is — identical to where the
    /// sequential scan stops. Crafted so that position 0 errors (the bounded
    /// quantifier's range is one over `MAX_QUANTIFIER_RANGE` when `s = {}`)
    /// while a later position is a genuine counter-model: the sequential
    /// oracle reports `Unknown`, and so must every split execution, no
    /// matter which subrange completes first.
    #[test]
    fn split_search_reports_the_minimum_position_event() {
        let scope = Scope {
            elem_padding: 1,
            max_collection_entries: 1,
            max_seq_len: 1,
            int_min: 0,
            int_max: 2047,
            max_models: 5_000_000,
            // The position reasoning below depends on the exact enumeration
            // order; a one-element padding block makes the orbit reduction a
            // no-op anyway, so pin it off. The backend is irrelevant to the
            // positions, but pin the tree walk so the test stays a pure
            // oracle-path exercise.
            orbit: false,
            bytecode: false,
        };
        let quantifier = exists_int(
            "i",
            int(0),
            sub(
                int(semcommute_logic::eval::MAX_QUANTIFIER_RANGE + 1),
                card(var_set("s")),
            ),
            tru(),
        );
        let ob = Obligation::new("error_first").goal(and2(quantifier, lt(var_int("a"), int(-1))));
        let oracle = FiniteModelProver::new(scope.clone()).prove(&ob);
        let Verdict::Unknown { reason, .. } = &oracle else {
            panic!("the oracle stops at the position-0 error: {oracle}");
        };
        // Enumeration order: `a` is the high digit, `s in [{}, {e1}]` the
        // low one — even positions error (empty set widens the quantifier
        // past the limit), odd positions are counter-models. Subrange
        // `[1, 2)` finds the position-1 counter-model; `[0, 1)` the
        // position-0 error. Whichever completes first, the position-0 error
        // decides, exactly as in the oracle.
        let prover = FiniteModelProver::new(scope.clone());
        for first_range in [(1u64, 2u64), (0, 1)] {
            let search = prover.begin(&ob).expect("searchable");
            let shared = SearchShared::new();
            let second = if first_range == (0, 1) {
                (1, 2)
            } else {
                (0, 1)
            };
            search.run_range(first_range.0, first_range.1, &shared);
            search.run_range(second.0, second.1, &shared);
            let split = search.finalize(&shared);
            let Verdict::Unknown {
                reason: split_reason,
                ..
            } = &split
            else {
                panic!("a later counter-model displaced the deciding error: {split}");
            };
            assert_eq!(split_reason, reason);
        }

        // The mirrored obligation: position 0 is a counter-model (`s = {}`
        // keeps the quantifier in range, `a = 0` refutes the goal) and odd
        // positions error. The counter-model decides even when the
        // error-bearing subrange completes first — and the raced-past error
        // then surfaces as a non-fatal statistic.
        let quantifier = exists_int(
            "i",
            int(0),
            add(
                int(semcommute_logic::eval::MAX_QUANTIFIER_RANGE),
                card(var_set("s")),
            ),
            tru(),
        );
        let ob = Obligation::new("model_first").goal(and2(quantifier, lt(var_int("a"), int(-1))));
        let oracle = prover.prove(&ob);
        let expected = oracle.counter_model().expect("position 0 refutes the goal");
        let search = prover.begin(&ob).expect("searchable");
        let shared = SearchShared::new();
        search.run_range(1, 2, &shared); // records the position-1 error
        search.run_range(0, search.total(), &shared); // position-0 counter-model
        let split = search.finalize(&shared);
        assert_eq!(
            split.counter_model().expect("counter-model decides"),
            expected
        );
        assert!(
            !split.stats().errors.is_empty(),
            "the raced-past error must surface in the stats"
        );
        assert!(split.stats().errors[0].contains("quantifier range"));
    }

    /// Orbit reduction checks strictly fewer models, reports the skipped
    /// candidates, and reaches the same verdict — with the invariant that
    /// for a fully enumerated (valid) obligation the reduced and unreduced
    /// counts reconcile exactly: `checked_on + pruned_on == checked_off`.
    #[test]
    fn orbit_reduction_reconciles_with_the_unreduced_search() {
        let ob = Obligation::new("orbit_valid")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .assume(not(eq(var_elem("v1"), var_elem("v2"))))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        // Scope::standard has two padding elements, so the reduction bites.
        let on = FiniteModelProver::new(Scope::standard().with_orbit(true)).prove(&ob);
        let off = FiniteModelProver::new(Scope::standard().with_orbit(false)).prove(&ob);
        assert!(on.is_valid() && off.is_valid());
        assert!(on.stats().orbits_pruned > 0);
        assert_eq!(off.stats().orbits_pruned, 0);
        assert!(on.stats().models_checked < off.stats().models_checked);
        assert_eq!(
            on.stats().models_checked + on.stats().orbits_pruned,
            off.stats().models_checked,
        );

        // The range-split search agrees with the sequential one on both
        // counters: pruned positions are attributed to the unique subrange
        // containing them, so the sums reconcile exactly.
        let split = run_split(&ob, Scope::standard().with_orbit(true), 5, &[4, 2, 0, 1, 3]);
        assert!(split.is_valid());
        assert_eq!(split.stats().models_checked, on.stats().models_checked);
        assert_eq!(split.stats().orbits_pruned, on.stats().orbits_pruned);
    }

    /// A counterexample found under the reduction is canonical and is a
    /// model the unreduced oracle also refutes.
    #[test]
    fn orbit_counterexamples_replay_under_the_oracle() {
        let ob = Obligation::new("orbit_bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let on = FiniteModelProver::new(Scope::standard().with_orbit(true));
        let off = FiniteModelProver::new(Scope::standard().with_orbit(false));
        let verdict = on.prove(&ob);
        let full = verdict.counter_model().expect("counterexample expected");
        let inputs = on.project_inputs(&ob, full);
        assert!(off.replay(&ob, &inputs).is_some());
    }

    fn kind(v: &Verdict) -> &'static str {
        match v {
            Verdict::Valid { .. } => "valid",
            Verdict::CounterModel { .. } => "counter-model",
            Verdict::Unknown { .. } => "unknown",
        }
    }

    /// The bytecode backend reports bit-identical verdicts, counter-models,
    /// `Unknown` reasons, and work counters to the tree-walk oracle — whole
    /// or range-split, with the orbit reduction on or off — and its batch
    /// counters reconcile with the block size.
    #[test]
    fn bytecode_backend_matches_the_tree_walk() {
        let valid = Obligation::new("bc_valid")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .assume(not(eq(var_elem("v1"), var_elem("v2"))))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        let bogus = Obligation::new("bc_bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let illsorted = Obligation::new("bc_illsorted")
            .assume(lt(var_int("a"), int(1)))
            .goal(eq(card(var_elem("v")), int(0)));
        for ob in [&valid, &bogus, &illsorted] {
            for orbit in [true, false] {
                let scope = Scope::standard().with_orbit(orbit);
                let tree = FiniteModelProver::new(scope.clone().with_bytecode(false)).prove(ob);
                let bc = FiniteModelProver::new(scope.clone().with_bytecode(true)).prove(ob);
                assert_eq!(kind(&tree), kind(&bc), "{}", ob.name);
                assert_eq!(tree.counter_model(), bc.counter_model(), "{}", ob.name);
                if let (Verdict::Unknown { reason: a, .. }, Verdict::Unknown { reason: b, .. }) =
                    (&tree, &bc)
                {
                    assert_eq!(a, b)
                }
                assert_eq!(tree.stats().models_checked, bc.stats().models_checked);
                assert_eq!(tree.stats().orbits_pruned, bc.stats().orbits_pruned);
                assert_eq!(tree.stats().batches, 0);
                assert!(bc.stats().batches > 0, "{}", ob.name);
                assert!(bc.stats().batches <= bc.stats().models_checked / 256 + 1);
                assert!(bc.stats().instrs_executed > 0);

                // The same agreement holds for a split execution driven in
                // descending range order: the verdict matches the sequential
                // oracle, and the work counters match a tree-walk split with
                // the identical part structure and completion order (counts
                // legitimately exceed the sequential scan's when ranges run
                // before the deciding event is recorded).
                let order = [6, 5, 4, 3, 2, 1, 0];
                let split_bc = run_split(ob, scope.clone().with_bytecode(true), 7, &order);
                let split_tree = run_split(ob, scope.clone().with_bytecode(false), 7, &order);
                assert_eq!(kind(&tree), kind(&split_bc), "{}", ob.name);
                assert_eq!(
                    tree.counter_model(),
                    split_bc.counter_model(),
                    "{}",
                    ob.name
                );
                if let (Verdict::Unknown { reason: a, .. }, Verdict::Unknown { reason: b, .. }) =
                    (&tree, &split_bc)
                {
                    assert_eq!(a, b)
                }
                assert_eq!(
                    split_bc.stats().models_checked,
                    split_tree.stats().models_checked,
                    "{}",
                    ob.name
                );
                assert_eq!(
                    split_bc.stats().orbits_pruned,
                    split_tree.stats().orbits_pruned,
                    "{}",
                    ob.name
                );
            }
        }
    }

    #[test]
    fn integer_reasoning_within_scope() {
        // counter' = c + v; counter'' = counter' - v; goal counter'' = c
        let ob = Obligation::new("inverse_increase")
            .define("c1", add(var_int("c"), var_int("v")))
            .define("c2", sub(var_int("c1"), var_int("v")))
            .goal(eq(var_int("c2"), var_int("c")));
        assert!(prover().prove(&ob).is_valid());
    }
}
