//! The finite-model prover: exhaustive counter-model search over the relevant
//! universe.

use std::time::Instant;

use semcommute_logic::{eval, eval_bool, Model};

use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::space::InputSpace;
use crate::stats::ProofStats;
use crate::verdict::Verdict;

/// The finite-model prover.
///
/// For each candidate model of the obligation's input variables (see
/// [`InputSpace`]), the prover computes the defined variables by evaluation —
/// exactly the computation the generated testing method would perform — and
/// then checks whether all hypotheses hold and the goal fails. If such a model
/// exists the obligation is invalid and the model is reported; if no candidate
/// model within the scope is a counter-model, the obligation is reported
/// valid.
///
/// For the counter / set / map fragment the scope-derived universe is
/// sufficient for this to be a complete decision procedure; for the sequence
/// fragment validity is relative to the sequence-length scope (reported in the
/// verdict statistics and by the verification driver).
#[derive(Debug, Clone, Default)]
pub struct FiniteModelProver {
    scope: Scope,
}

impl FiniteModelProver {
    /// Creates a prover with the given scope.
    pub fn new(scope: Scope) -> FiniteModelProver {
        FiniteModelProver { scope }
    }

    /// The scope used by this prover.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Attempts to prove the obligation by exhaustive counter-model search.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        let start = Instant::now();
        if let Err(msg) = ob.validate() {
            return Verdict::Unknown {
                reason: format!("malformed obligation: {msg}"),
                stats: ProofStats::finite(0, start.elapsed()),
            };
        }
        let space = InputSpace::from_obligation(ob, self.scope.clone());
        let estimate = space.estimated_size();
        if estimate > self.scope.max_models as u128 {
            return Verdict::Unknown {
                reason: format!(
                    "search space of ~{estimate} models exceeds the budget of {}",
                    self.scope.max_models
                ),
                stats: ProofStats::finite(0, start.elapsed()),
            };
        }

        let mut checked: u64 = 0;
        for input in space.iter() {
            checked += 1;
            match self.check_model(ob, input) {
                ModelOutcome::NotApplicable | ModelOutcome::GoalHolds => continue,
                ModelOutcome::Counterexample(full) => {
                    return Verdict::CounterModel {
                        model: full,
                        stats: ProofStats::finite(checked, start.elapsed()),
                    }
                }
                ModelOutcome::Error(reason) => {
                    return Verdict::Unknown {
                        reason,
                        stats: ProofStats::finite(checked, start.elapsed()),
                    }
                }
            }
        }
        Verdict::Valid {
            stats: ProofStats::finite(checked, start.elapsed()),
        }
    }

    fn check_model(&self, ob: &Obligation, mut model: Model) -> ModelOutcome {
        // Compute the defined variables in order.
        for (name, term) in &ob.defines {
            match eval(term, &model) {
                Ok(value) => {
                    model.insert(name.clone(), value);
                }
                Err(e) => return ModelOutcome::Error(format!("evaluating `{name}`: {e}")),
            }
        }
        // Check the hypotheses.
        for h in &ob.hypotheses {
            match eval_bool(h, &model) {
                Ok(true) => {}
                Ok(false) => return ModelOutcome::NotApplicable,
                Err(e) => return ModelOutcome::Error(format!("evaluating hypothesis: {e}")),
            }
        }
        // Check the goal.
        match eval_bool(&ob.goal, &model) {
            Ok(true) => ModelOutcome::GoalHolds,
            Ok(false) => ModelOutcome::Counterexample(model),
            Err(e) => ModelOutcome::Error(format!("evaluating goal: {e}")),
        }
    }

    /// Evaluates the obligation under one explicit input model, returning
    /// `Some(full_model)` when the model is a counterexample. Used by tests
    /// and by the runtime crate to replay reported counterexamples.
    pub fn replay(&self, ob: &Obligation, input: &Model) -> Option<Model> {
        match self.check_model(ob, input.clone()) {
            ModelOutcome::Counterexample(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the input model restricted to the obligation's input variables
    /// from a full counterexample model (inverse of the define computation).
    pub fn project_inputs(&self, ob: &Obligation, full: &Model) -> Model {
        let inputs = ob.input_vars();
        Model::from_bindings(
            full.iter()
                .filter(|(name, _)| inputs.contains_key(*name))
                .map(|(name, value)| (name.to_string(), value.clone())),
        )
    }
}

enum ModelOutcome {
    /// A hypothesis was violated; the model is irrelevant.
    NotApplicable,
    /// Hypotheses and goal all hold.
    GoalHolds,
    /// Hypotheses hold but the goal fails: a counterexample.
    Counterexample(Model),
    /// Evaluation failed (ill-sorted term or unbounded variable).
    Error(String),
}

/// Convenience: prove an obligation with [`Scope::standard`].
pub fn prove_finite(ob: &Obligation) -> Verdict {
    FiniteModelProver::new(Scope::standard()).prove(ob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_logic::Value;

    fn prover() -> FiniteModelProver {
        FiniteModelProver::new(Scope::small())
    }

    #[test]
    fn valid_obligation_is_proved() {
        // r = (v in s), s1 = s Un {v}  |-  v in s1
        let ob = Obligation::new("add_membership")
            .define("r", member(var_elem("v"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let verdict = prover().prove(&ob);
        assert!(verdict.is_valid(), "{verdict}");
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn invalid_obligation_yields_counterexample() {
        // claim: v in s  (false in general)
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = prover().prove(&ob);
        let model = verdict.counter_model().expect("counterexample expected");
        // In the counterexample v is indeed not a member of s.
        let v = model.get("v").unwrap().as_elem().unwrap();
        assert!(!model.get("s").unwrap().as_set().unwrap().contains(&v));
    }

    #[test]
    fn hypotheses_restrict_the_search() {
        // Under the hypothesis v in s, the goal v in s holds.
        let ob = Obligation::new("hyp")
            .assume(member(var_elem("v"), var_set("s")))
            .goal(member(var_elem("v"), var_set("s")));
        assert!(prover().prove(&ob).is_valid());
    }

    #[test]
    fn conditional_commutativity_of_add_and_contains() {
        // Between condition for contains(v1); add(v2):  v1 ~= v2 | r1a
        // soundness: under the condition, contains returns the same value
        // before and after the add.
        let cond = or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1a"));
        let ob = Obligation::new("contains_add_between_s")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(cond.clone())
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob).is_valid());

        // completeness: under the negated condition the return values differ.
        let ob_c = Obligation::new("contains_add_between_c")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(not(cond))
            .goal(neq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob_c).is_valid());

        // Without the condition, soundness fails and the counterexample has
        // v1 = v2 with v1 not in s.
        let ob_bad = Obligation::new("contains_add_unconditional")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        let verdict = prover().prove(&ob_bad);
        let model = verdict.counter_model().expect("counterexample expected");
        assert_eq!(model.get("v1"), model.get("v2"));
        assert_eq!(model.get("r1a"), Some(&Value::Bool(false)));
        assert_eq!(model.get("r1b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let tiny = Scope {
            max_models: 1,
            ..Scope::small()
        };
        let ob = Obligation::new("budget")
            .goal(eq(var_set("s"), var_set("t")));
        let verdict = FiniteModelProver::new(tiny).prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn malformed_obligation_reports_unknown() {
        let ob = Obligation::new("cyclic").define("x", add(var_int("x"), int(1)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn eval_error_reports_unknown() {
        // ill-sorted goal: card of an element
        let ob = Obligation::new("illsorted").goal(eq(card(var_elem("v")), int(0)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn replay_and_project_round_trip() {
        let ob = Obligation::new("bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let p = prover();
        let verdict = p.prove(&ob);
        let full = verdict.counter_model().unwrap();
        let inputs = p.project_inputs(&ob, full);
        assert!(inputs.contains("v") && inputs.contains("s") && !inputs.contains("r"));
        let replayed = p.replay(&ob, &inputs).expect("still a counterexample");
        assert_eq!(replayed.get("r"), Some(&Value::Bool(false)));
    }

    #[test]
    fn integer_reasoning_within_scope() {
        // counter' = c + v; counter'' = counter' - v; goal counter'' = c
        let ob = Obligation::new("inverse_increase")
            .define("c1", add(var_int("c"), var_int("v")))
            .define("c2", sub(var_int("c1"), var_int("v")))
            .goal(eq(var_int("c2"), var_int("c")));
        assert!(prover().prove(&ob).is_valid());
    }
}
