//! The finite-model prover: exhaustive counter-model search over the relevant
//! universe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use semcommute_logic::{Model, Value};

use crate::obligation::Obligation;
use crate::scope::Scope;
use crate::space::InputSpace;
use crate::stats::ProofStats;
use crate::verdict::Verdict;

/// The finite-model prover.
///
/// For each candidate model of the obligation's input variables (see
/// [`InputSpace`]), the prover computes the defined variables by evaluation —
/// exactly the computation the generated testing method would perform — and
/// then checks whether all hypotheses hold and the goal fails. If such a model
/// exists the obligation is invalid and the model is reported; if no candidate
/// model within the scope is a counter-model, the obligation is reported
/// valid.
///
/// For the counter / set / map fragment the scope-derived universe is
/// sufficient for this to be a complete decision procedure; for the sequence
/// fragment validity is relative to the sequence-length scope (reported in the
/// verdict statistics and by the verification driver).
///
/// With [`FiniteModelProver::with_threads`] the candidate-model space is
/// sharded across scoped worker threads: worker `w` of `n` strides through
/// positions `w, w+n, w+2n, …` of the enumeration (skipped positions cost an
/// odometer increment, not a model allocation), and an `AtomicBool` stops all
/// workers as soon as any of them finds a counter-model or an error.
#[derive(Debug, Clone, Default)]
pub struct FiniteModelProver {
    scope: Scope,
    threads: usize,
}

impl FiniteModelProver {
    /// Creates a (single-threaded) prover with the given scope.
    pub fn new(scope: Scope) -> FiniteModelProver {
        FiniteModelProver { scope, threads: 1 }
    }

    /// Returns a copy searching with `threads` worker threads per obligation.
    ///
    /// Useful when obligations are proved one at a time; when many
    /// obligations are already being proved concurrently (the catalog
    /// driver), per-obligation threads only add oversubscription.
    pub fn with_threads(mut self, threads: usize) -> FiniteModelProver {
        self.threads = threads.max(1);
        self
    }

    /// The scope used by this prover.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The number of worker threads used per obligation.
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Attempts to prove the obligation by exhaustive counter-model search.
    pub fn prove(&self, ob: &Obligation) -> Verdict {
        let start = Instant::now();
        if let Err(msg) = ob.validate() {
            return Verdict::Unknown {
                reason: format!("malformed obligation: {msg}"),
                stats: ProofStats::finite(0, start.elapsed()),
            };
        }
        let space = InputSpace::from_obligation(ob, self.scope.clone());
        let estimate = space.estimated_size();
        if estimate > self.scope.max_models as u128 {
            return Verdict::Unknown {
                reason: format!(
                    "search space of ~{estimate} models exceeds the budget of {}",
                    self.scope.max_models
                ),
                stats: ProofStats::finite(0, start.elapsed()),
            };
        }

        // The obligation is compiled once per prove: every variable
        // occurrence becomes a slot index, so the per-candidate loop never
        // builds a name-keyed model or looks anything up by string.
        let compiled = crate::compiled::CompiledObligation::compile(ob, &space.var_order());

        // Sharding only pays off when the space is large enough to amortize
        // thread startup.
        let threads = if estimate >= 4_096 {
            self.threads().min(estimate as usize)
        } else {
            1
        };
        if threads > 1 {
            return self.prove_sharded(&compiled, &space, threads, start);
        }

        let mut env = compiled.env();
        let mut buf = Vec::with_capacity(compiled.input_count());
        let mut it = space.iter();
        let mut checked: u64 = 0;
        while it.next_values(&mut buf) {
            checked += 1;
            match compiled.check(&mut buf, &mut env) {
                Ok(None) => continue,
                Ok(Some(())) => {
                    return Verdict::CounterModel {
                        model: compiled.reconstruct(&env),
                        stats: ProofStats::finite(checked, start.elapsed())
                            .with_orbits_pruned(it.orbits_pruned()),
                    }
                }
                Err(reason) => {
                    return Verdict::Unknown {
                        reason,
                        stats: ProofStats::finite(checked, start.elapsed())
                            .with_orbits_pruned(it.orbits_pruned()),
                    }
                }
            }
        }
        Verdict::Valid {
            stats: ProofStats::finite(checked, start.elapsed())
                .with_orbits_pruned(it.orbits_pruned()),
        }
    }

    /// Counter-model search sharded across `threads` scoped workers.
    fn prove_sharded(
        &self,
        compiled: &crate::compiled::CompiledObligation,
        space: &InputSpace,
        threads: usize,
        start: Instant,
    ) -> Verdict {
        /// Worker findings, each tagged with its global enumeration index.
        /// A counter-model stops the whole search (any counter-model is a
        /// genuine one, so racing is sound); an evaluation error only stops
        /// the worker that hit it — stopping everyone could mask a real
        /// counter-model at a lower index and flip the verdict between runs.
        /// At the end a counter-model (lowest observed index) takes
        /// precedence over an error; every error is retained and surfaced
        /// through [`ProofStats::errors`] so a verdict that raced past
        /// failures still reports them.
        #[derive(Default)]
        struct Findings {
            counterexample: Option<(u64, Model)>,
            errors: Vec<(u64, String)>,
        }
        let stop = AtomicBool::new(false);
        let checked = AtomicU64::new(0);
        // Every worker's iterator traverses the same canonical sequence
        // (striding only changes which positions it *checks*), so each
        // worker observes the same pruning prefix up to where it stopped:
        // the per-run total is the maximum, not the sum.
        let orbits_pruned = AtomicU64::new(0);
        let findings: Mutex<Findings> = Mutex::new(Findings::default());

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (stop, checked, findings) = (&stop, &checked, &findings);
                let orbits_pruned = &orbits_pruned;
                scope.spawn(move || {
                    let mut it = space.iter();
                    it.skip_positions(worker);
                    let mut env = compiled.env();
                    let mut buf = Vec::with_capacity(compiled.input_count());
                    let mut index = worker as u64;
                    let mut local_checked = 0u64;
                    while it.next_values(&mut buf) {
                        local_checked += 1;
                        match compiled.check(&mut buf, &mut env) {
                            Ok(None) => {}
                            Ok(Some(())) => {
                                let model = compiled.reconstruct(&env);
                                let mut f = findings.lock().unwrap_or_else(|p| p.into_inner());
                                match &f.counterexample {
                                    Some((existing, _)) if *existing <= index => {}
                                    _ => f.counterexample = Some((index, model)),
                                }
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            Err(reason) => {
                                findings
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .errors
                                    .push((index, reason));
                                break;
                            }
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        it.skip_positions(threads - 1);
                        index += threads as u64;
                    }
                    checked.fetch_add(local_checked, Ordering::Relaxed);
                    orbits_pruned.fetch_max(it.orbits_pruned(), Ordering::Relaxed);
                });
            }
        });

        let checked = checked.load(Ordering::Relaxed);
        let mut findings = findings.into_inner().unwrap_or_else(|p| p.into_inner());
        findings.errors.sort_by_key(|(index, _)| *index);
        let errors: Vec<String> = findings
            .errors
            .iter()
            .map(|(_, reason)| reason.clone())
            .collect();
        let stats = ProofStats::finite(checked, start.elapsed())
            .with_orbits_pruned(orbits_pruned.into_inner())
            .with_errors(errors);
        if let Some((_, model)) = findings.counterexample {
            Verdict::CounterModel { model, stats }
        } else if let Some((_, reason)) = findings.errors.into_iter().next() {
            Verdict::Unknown { reason, stats }
        } else {
            Verdict::Valid { stats }
        }
    }

    /// Evaluates the obligation under one explicit input model, returning
    /// `Some(full_model)` when the model is a counterexample. Used by tests
    /// and by the runtime crate to replay reported counterexamples.
    pub fn replay(&self, ob: &Obligation, input: &Model) -> Option<Model> {
        let order: Vec<String> = ob.input_vars().keys().cloned().collect();
        let compiled = crate::compiled::CompiledObligation::compile(ob, &order);
        let mut env = compiled.env();
        let mut buf: Vec<Value> = order
            .iter()
            .map(|name| input.get(name).cloned())
            .collect::<Option<_>>()?;
        match compiled.check(&mut buf, &mut env) {
            Ok(Some(())) => Some(compiled.reconstruct(&env)),
            _ => None,
        }
    }

    /// Returns the input model restricted to the obligation's input variables
    /// from a full counterexample model (inverse of the define computation).
    pub fn project_inputs(&self, ob: &Obligation, full: &Model) -> Model {
        let inputs = ob.input_vars();
        Model::from_bindings(
            full.iter()
                .filter(|(name, _)| inputs.contains_key(*name))
                .map(|(name, value)| (name.to_string(), value.clone())),
        )
    }
}

/// Convenience: prove an obligation with [`Scope::standard`].
pub fn prove_finite(ob: &Obligation) -> Verdict {
    FiniteModelProver::new(Scope::standard()).prove(ob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_logic::Value;

    fn prover() -> FiniteModelProver {
        FiniteModelProver::new(Scope::small())
    }

    #[test]
    fn valid_obligation_is_proved() {
        // r = (v in s), s1 = s Un {v}  |-  v in s1
        let ob = Obligation::new("add_membership")
            .define("r", member(var_elem("v"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let verdict = prover().prove(&ob);
        assert!(verdict.is_valid(), "{verdict}");
        assert!(verdict.stats().models_checked > 0);
    }

    #[test]
    fn invalid_obligation_yields_counterexample() {
        // claim: v in s  (false in general)
        let ob = Obligation::new("bogus").goal(member(var_elem("v"), var_set("s")));
        let verdict = prover().prove(&ob);
        let model = verdict.counter_model().expect("counterexample expected");
        // In the counterexample v is indeed not a member of s.
        let v = model.get("v").unwrap().as_elem().unwrap();
        assert!(!model.get("s").unwrap().as_set().unwrap().contains(&v));
    }

    #[test]
    fn hypotheses_restrict_the_search() {
        // Under the hypothesis v in s, the goal v in s holds.
        let ob = Obligation::new("hyp")
            .assume(member(var_elem("v"), var_set("s")))
            .goal(member(var_elem("v"), var_set("s")));
        assert!(prover().prove(&ob).is_valid());
    }

    #[test]
    fn conditional_commutativity_of_add_and_contains() {
        // Between condition for contains(v1); add(v2):  v1 ~= v2 | r1a
        // soundness: under the condition, contains returns the same value
        // before and after the add.
        let cond = or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1a"));
        let ob = Obligation::new("contains_add_between_s")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(cond.clone())
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob).is_valid());

        // completeness: under the negated condition the return values differ.
        let ob_c = Obligation::new("contains_add_between_c")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .assume(not(cond))
            .goal(neq(var_bool("r1a"), var_bool("r1b")));
        assert!(prover().prove(&ob_c).is_valid());

        // Without the condition, soundness fails and the counterexample has
        // v1 = v2 with v1 not in s.
        let ob_bad = Obligation::new("contains_add_unconditional")
            .define("r1a", member(var_elem("v1"), var_set("s")))
            .define("s_post", set_add(var_set("s"), var_elem("v2")))
            .define("r1b", member(var_elem("v1"), var_set("s_post")))
            .goal(eq(var_bool("r1a"), var_bool("r1b")));
        let verdict = prover().prove(&ob_bad);
        let model = verdict.counter_model().expect("counterexample expected");
        assert_eq!(model.get("v1"), model.get("v2"));
        assert_eq!(model.get("r1a"), Some(&Value::Bool(false)));
        assert_eq!(model.get("r1b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let tiny = Scope {
            max_models: 1,
            ..Scope::small()
        };
        let ob = Obligation::new("budget").goal(eq(var_set("s"), var_set("t")));
        let verdict = FiniteModelProver::new(tiny).prove(&ob);
        assert!(verdict.is_unknown());
    }

    #[test]
    fn malformed_obligation_reports_unknown() {
        let ob = Obligation::new("cyclic").define("x", add(var_int("x"), int(1)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn eval_error_reports_unknown() {
        // ill-sorted goal: card of an element
        let ob = Obligation::new("illsorted").goal(eq(card(var_elem("v")), int(0)));
        assert!(prover().prove(&ob).is_unknown());
    }

    #[test]
    fn replay_and_project_round_trip() {
        let ob = Obligation::new("bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let p = prover();
        let verdict = p.prove(&ob);
        let full = verdict.counter_model().unwrap();
        let inputs = p.project_inputs(&ob, full);
        assert!(inputs.contains("v") && inputs.contains("s") && !inputs.contains("r"));
        let replayed = p.replay(&ob, &inputs).expect("still a counterexample");
        assert_eq!(replayed.get("r"), Some(&Value::Bool(false)));
    }

    #[test]
    fn sharded_search_agrees_with_sequential() {
        // A valid obligation over a space large enough to trigger sharding:
        // both provers must enumerate the whole space and agree on the count.
        let ob = Obligation::new("sharded_valid")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .assume(not(eq(var_elem("v1"), var_elem("v2"))))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        let sequential = FiniteModelProver::new(Scope::standard()).prove(&ob);
        let sharded = FiniteModelProver::new(Scope::standard())
            .with_threads(4)
            .prove(&ob);
        assert!(sequential.is_valid() && sharded.is_valid());
        assert_eq!(
            sequential.stats().models_checked,
            sharded.stats().models_checked,
            "a valid obligation must enumerate the full space in both modes"
        );

        // An invalid obligation: the sharded prover must still produce a real
        // counterexample (early exit makes the counts differ).
        let bogus = Obligation::new("sharded_bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let verdict = FiniteModelProver::new(Scope::standard())
            .with_threads(4)
            .prove(&bogus);
        let model = verdict.counter_model().expect("counterexample expected");
        assert!(!semcommute_logic::eval_bool(&member(var_elem("v"), var_set("s")), model).unwrap());
    }

    /// Regression test for the sharded search's error handling: an evaluation
    /// error on one worker must stop only that worker, so a racing error can
    /// never mask a genuine counter-model found by another worker — and the
    /// errors that did occur must surface in the verdict's statistics.
    ///
    /// The obligation is crafted so that, in enumeration order, even
    /// positions (`s = {}`) make the bounded quantifier's range one wider
    /// than `MAX_QUANTIFIER_RANGE` (an input-dependent evaluation error)
    /// while odd positions (`s = {e1}`) are genuine counter-models. With the
    /// striding shard split, worker 0 therefore errors on its very first
    /// candidate while worker 1 immediately finds a counter-model.
    #[test]
    fn racing_error_does_not_mask_counterexample() {
        let scope = Scope {
            elem_padding: 1,
            max_collection_entries: 1,
            max_seq_len: 1,
            int_min: 0,
            int_max: 2047, // 2048 ints x 2 sets = 4096 >= the sharding threshold
            max_models: 5_000_000,
            // The even/odd position reasoning below depends on the exact
            // enumeration order; a one-element padding block makes the
            // orbit reduction a no-op anyway, so pin it off.
            orbit: false,
        };
        let quantifier = exists_int(
            "i",
            int(0),
            sub(
                int(semcommute_logic::eval::MAX_QUANTIFIER_RANGE + 1),
                card(var_set("s")),
            ),
            tru(),
        );
        let ob = Obligation::new("racing_error").goal(and2(quantifier, lt(var_int("a"), int(-1))));
        for threads in [2, 4] {
            let verdict = FiniteModelProver::new(scope.clone())
                .with_threads(threads)
                .prove(&ob);
            let model = verdict.counter_model().unwrap_or_else(|| {
                panic!("{threads} threads: racing error masked the counter-model: {verdict}")
            });
            assert!(
                !model.get("s").unwrap().as_set().unwrap().is_empty(),
                "counter-models live at the odd (non-empty set) positions"
            );
            assert!(
                !verdict.stats().errors.is_empty(),
                "{threads} threads: the raced-past evaluation errors must surface in the stats"
            );
            assert!(verdict.stats().errors[0].contains("quantifier range"));
        }
    }

    /// Orbit reduction checks strictly fewer models, reports the skipped
    /// candidates, and reaches the same verdict — with the invariant that
    /// for a fully enumerated (valid) obligation the reduced and unreduced
    /// counts reconcile exactly: `checked_on + pruned_on == checked_off`.
    #[test]
    fn orbit_reduction_reconciles_with_the_unreduced_search() {
        let ob = Obligation::new("orbit_valid")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .assume(not(eq(var_elem("v1"), var_elem("v2"))))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        // Scope::standard has two padding elements, so the reduction bites.
        let on = FiniteModelProver::new(Scope::standard().with_orbit(true)).prove(&ob);
        let off = FiniteModelProver::new(Scope::standard().with_orbit(false)).prove(&ob);
        assert!(on.is_valid() && off.is_valid());
        assert!(on.stats().orbits_pruned > 0);
        assert_eq!(off.stats().orbits_pruned, 0);
        assert!(on.stats().models_checked < off.stats().models_checked);
        assert_eq!(
            on.stats().models_checked + on.stats().orbits_pruned,
            off.stats().models_checked,
        );

        // The sharded search agrees with the sequential one on both counters.
        let sharded = FiniteModelProver::new(Scope::standard().with_orbit(true))
            .with_threads(4)
            .prove(&ob);
        assert!(sharded.is_valid());
        assert_eq!(sharded.stats().models_checked, on.stats().models_checked);
        assert_eq!(sharded.stats().orbits_pruned, on.stats().orbits_pruned);
    }

    /// A counterexample found under the reduction is canonical and is a
    /// model the unreduced oracle also refutes.
    #[test]
    fn orbit_counterexamples_replay_under_the_oracle() {
        let ob = Obligation::new("orbit_bogus")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let on = FiniteModelProver::new(Scope::standard().with_orbit(true));
        let off = FiniteModelProver::new(Scope::standard().with_orbit(false));
        let verdict = on.prove(&ob);
        let full = verdict.counter_model().expect("counterexample expected");
        let inputs = on.project_inputs(&ob, full);
        assert!(off.replay(&ob, &inputs).is_some());
    }

    #[test]
    fn integer_reasoning_within_scope() {
        // counter' = c + v; counter'' = counter' - v; goal counter'' = c
        let ob = Obligation::new("inverse_increase")
            .define("c1", add(var_int("c"), var_int("v")))
            .define("c2", sub(var_int("c1"), var_int("v")))
            .goal(eq(var_int("c2"), var_int("c")));
        assert!(prover().prove(&ob).is_valid());
    }
}
