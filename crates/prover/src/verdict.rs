//! Verdicts produced by the provers.

use std::fmt;

use semcommute_logic::Model;

use crate::stats::ProofStats;

/// The outcome of attempting to prove an [`crate::Obligation`].
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The obligation is valid (within the scope used, for the sequence
    /// fragment; unconditionally for the counter/set/map fragment).
    Valid {
        /// Statistics about the proof attempt.
        stats: ProofStats,
    },
    /// A counter-model was found: under this assignment to the input
    /// variables all hypotheses hold but the goal is false.
    CounterModel {
        /// The counter-model (input variables plus the computed defined
        /// variables, so that reports show the full execution).
        model: Model,
        /// Statistics about the proof attempt.
        stats: ProofStats,
    },
    /// The prover could not decide the obligation (budget exceeded or an
    /// evaluation error such as an ill-sorted term).
    Unknown {
        /// Why the obligation could not be decided.
        reason: String,
        /// Statistics about the proof attempt.
        stats: ProofStats,
    },
}

impl Verdict {
    /// Returns `true` if the obligation was proved valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid { .. })
    }

    /// Returns `true` if a counter-model was found.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, Verdict::CounterModel { .. })
    }

    /// Returns `true` if the prover could not decide the obligation.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// Returns the counter-model, if any.
    pub fn counter_model(&self) -> Option<&Model> {
        match self {
            Verdict::CounterModel { model, .. } => Some(model),
            _ => None,
        }
    }

    /// Returns the statistics of the proof attempt.
    pub fn stats(&self) -> &ProofStats {
        match self {
            Verdict::Valid { stats }
            | Verdict::CounterModel { stats, .. }
            | Verdict::Unknown { stats, .. } => stats,
        }
    }

    /// Returns a mutable reference to the statistics of the proof attempt.
    pub fn stats_mut(&mut self) -> &mut ProofStats {
        match self {
            Verdict::Valid { stats }
            | Verdict::CounterModel { stats, .. }
            | Verdict::Unknown { stats, .. } => stats,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Valid { stats } => write!(f, "valid [{stats}]"),
            Verdict::CounterModel { model, stats } => {
                write!(f, "counterexample [{stats}]\n{model}")
            }
            Verdict::Unknown { reason, stats } => write!(f, "unknown: {reason} [{stats}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::Value;

    #[test]
    fn predicates_match_variants() {
        let v = Verdict::Valid {
            stats: ProofStats::none(),
        };
        assert!(v.is_valid() && !v.is_counterexample() && !v.is_unknown());
        let c = Verdict::CounterModel {
            model: Model::new(),
            stats: ProofStats::none(),
        };
        assert!(c.is_counterexample() && c.counter_model().is_some());
        let u = Verdict::Unknown {
            reason: "budget".into(),
            stats: ProofStats::none(),
        };
        assert!(u.is_unknown());
        assert!(v.counter_model().is_none());
    }

    #[test]
    fn display_includes_reason_and_model() {
        let mut model = Model::new();
        model.insert("x", Value::Int(3));
        let c = Verdict::CounterModel {
            model,
            stats: ProofStats::none(),
        };
        let s = c.to_string();
        assert!(s.contains("counterexample"));
        assert!(s.contains("x = 3"));
        let u = Verdict::Unknown {
            reason: "budget exceeded".into(),
            stats: ProofStats::none(),
        };
        assert!(u.to_string().contains("budget exceeded"));
    }

    #[test]
    fn stats_mut_allows_updating() {
        let mut v = Verdict::Valid {
            stats: ProofStats::none(),
        };
        v.stats_mut().models_checked = 7;
        assert_eq!(v.stats().models_checked, 7);
    }
}
