//! Orbit reduction over the anonymous padding block of the input space.
//!
//! Under one element-variable partition pattern (see [`crate::space`]), the
//! collection universe consists of the *named* element classes — the values
//! the pattern assigns to element variables, which hypotheses and goals can
//! therefore talk about — plus [`Scope::elem_padding`] *anonymous* padding
//! elements that no input variable denotes. The specification logic has no
//! element literals (only `null`, which is fixed separately), so no term can
//! distinguish two candidate models that differ by a permutation of the
//! padding elements applied uniformly to every collection value: evaluation
//! commutes with the relabeling ([`Value::map_elems`]), and the two models
//! refute exactly the same obligations.
//!
//! The orbit-canonical enumerator therefore emits one representative per
//! orbit of that permutation action: the tuple of collection-valued slots
//! that is **jointly lexicographically least** (by [`Value`]'s order, slot by
//! slot) among its images under all padding permutations. Canonicalization
//! must be joint — across all collection slots under one permutation — not
//! per slot: the action is diagonal, so reducing `({p1}, {p2})` slot-wise to
//! `({p1}, {p1})` would identify two models that are *not* isomorphic (one
//! has equal inputs, the other distinct ones) and the search would lose
//! counter-models. Named classes are excluded from the permutable block for
//! the same reason: an element variable (and through it every hypothesis
//! mentioning it) pins those identities.
//!
//! The check is incremental: the first slot at which some permutation's
//! image becomes strictly smaller decides non-canonicality for *every*
//! completion of that prefix, so the enumerator prunes the whole odometer
//! subtree in one step (the crate-internal `OrbitTables::violation`
//! check returns the deciding slot). With the candidate lists sorted by value, images are precomputed
//! as index tables and the per-candidate check is a handful of integer
//! comparisons.
//!
//! [`Scope::elem_padding`]: crate::scope::Scope::elem_padding
//! [`Value`]: semcommute_logic::Value
//! [`Value::map_elems`]: semcommute_logic::Value::map_elems

use std::ops::Range;

use semcommute_logic::{ElemId, Sort, Value};

/// The permutable block of anonymous padding element ids for an element
/// assignment whose largest named class is `max_named_class`, under
/// `elem_padding` anonymous elements: ids
/// `max_named_class + 1 ..= max_named_class + elem_padding`.
pub fn padding_block(max_named_class: u32, elem_padding: usize) -> Range<u32> {
    max_named_class + 1..max_named_class + 1 + elem_padding as u32
}

/// One permutation of a padding block. Ids inside the block map through the
/// table; every id outside the block (named classes, `null`) is fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPerm {
    block_start: u32,
    /// `table[i]` is the image of id `block_start + i`.
    table: Vec<u32>,
}

impl BlockPerm {
    /// Applies the permutation to one element id.
    pub fn apply_elem(&self, e: ElemId) -> ElemId {
        match (e.0 as u64).checked_sub(self.block_start as u64) {
            Some(offset) if (offset as usize) < self.table.len() => {
                ElemId(self.table[offset as usize])
            }
            _ => e,
        }
    }

    /// Applies the permutation to a value (element-wise on collections,
    /// identity on booleans and integers).
    pub fn apply_value(&self, v: &Value) -> Value {
        v.map_elems(|e| self.apply_elem(e))
    }

    /// `true` when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.table
            .iter()
            .enumerate()
            .all(|(i, &img)| img == self.block_start + i as u32)
    }
}

/// Every permutation of the given block, identity first. The block sizes in
/// practice are tiny (`elem_padding` is 1–4), so the factorial growth is
/// harmless; callers that only need the non-identity permutations skip the
/// first entry.
pub fn block_permutations(block: Range<u32>) -> Vec<BlockPerm> {
    let ids: Vec<u32> = block.clone().collect();
    let mut out = Vec::new();
    let mut current = ids.clone();
    permute(&mut current, 0, block.start, &mut out);
    // The recursion emits the identity first because each level tries the
    // unswapped choice first; assert rather than rely on it silently.
    debug_assert!(out.first().is_none_or(|p| p.is_identity()));
    out
}

fn permute(ids: &mut Vec<u32>, at: usize, block_start: u32, out: &mut Vec<BlockPerm>) {
    if at == ids.len() {
        out.push(BlockPerm {
            block_start,
            table: ids.clone(),
        });
        return;
    }
    for i in at..ids.len() {
        ids.swap(at, i);
        permute(ids, at + 1, block_start, out);
        ids.swap(at, i);
    }
}

/// `true` when the tuple of values is the lexicographically least member of
/// its orbit under permutations of `block` (joint, slot-by-slot comparison
/// in [`Value`]'s order). Non-collection slots are fixed points of the
/// action and compare equal, so they may be included freely.
///
/// This is the *definition* the enumerator's incremental index-table check
/// (the crate-internal `OrbitTables`) is tested against; the enumerator
/// never calls it.
pub fn is_canonical(values: &[Value], block: Range<u32>) -> bool {
    for perm in block_permutations(block).iter().skip(1) {
        for v in values {
            match perm.apply_value(v).cmp(v) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Greater => break,
                std::cmp::Ordering::Equal => {}
            }
        }
    }
    true
}

/// Precomputed pruning tables for one element assignment of a
/// [`crate::space::SpaceIter`] odometer.
///
/// Built against the iterator's candidate lists with every collection-valued
/// list sorted ascending by value, so index order *is* value order and the
/// canonicality check reduces to integer comparisons: the image of the
/// candidate at index `i` of collection slot `k` under non-identity
/// permutation `p` sits at index `image[p][k][i]` of the same (sorted) list
/// — candidate lists are closed under the padding permutations because the
/// bounds they enforce (cardinality, length) are permutation-invariant.
#[derive(Debug)]
pub(crate) struct OrbitTables {
    /// Odometer slot indices of the collection-valued variables, ascending.
    slots: Vec<usize>,
    /// `image[p][k][i]`: index of the permuted candidate (see type docs).
    image: Vec<Vec<Vec<u32>>>,
}

impl OrbitTables {
    /// Builds tables for `candidates` (one list per odometer slot, with the
    /// collection-valued ones sorted ascending). Returns `None` when there
    /// is nothing to reduce: a permutable block smaller than two, or no
    /// collection-valued slot.
    pub(crate) fn build(
        candidates: &[Vec<Value>],
        sorts: &[Sort],
        block: Range<u32>,
    ) -> Option<OrbitTables> {
        if block.len() < 2 {
            return None;
        }
        let slots: Vec<usize> = sorts
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Sort::Set | Sort::Map | Sort::Seq))
            .map(|(i, _)| i)
            .collect();
        if slots.is_empty() {
            return None;
        }
        let perms = block_permutations(block);
        let image = perms[1..]
            .iter()
            .map(|perm| {
                slots
                    .iter()
                    .map(|&slot| {
                        let list = &candidates[slot];
                        debug_assert!(list.is_sorted(), "collection candidates must be sorted");
                        list.iter()
                            .map(|v| {
                                let index = list.binary_search(&perm.apply_value(v)).expect(
                                    "candidate lists are closed under padding permutations",
                                );
                                index as u32
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Some(OrbitTables { slots, image })
    }

    /// Checks the candidate tuple at `positions` (one index per odometer
    /// slot). Returns `None` when the tuple is canonical, or
    /// `Some(deciding_slot)` — the smallest odometer slot at which some
    /// permutation's image becomes strictly lex-smaller, proving every
    /// completion of the prefix up to and including that slot non-canonical.
    pub(crate) fn violation(&self, positions: &[usize]) -> Option<usize> {
        let mut deciding: Option<usize> = None;
        for perm in &self.image {
            for (k, &slot) in self.slots.iter().enumerate() {
                if deciding.is_some_and(|d| slot >= d) {
                    // A violation at or before this slot is already known;
                    // this permutation can only decide later. Move on.
                    break;
                }
                let pos = positions[slot];
                match (perm[k][pos] as usize).cmp(&pos) {
                    std::cmp::Ordering::Less => {
                        deciding = Some(slot);
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
        deciding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Value {
        Value::set_of(ids.iter().map(|&i| ElemId(i)))
    }

    #[test]
    fn padding_block_sits_past_the_named_classes() {
        assert_eq!(padding_block(0, 2), 1..3);
        assert_eq!(padding_block(2, 2), 3..5);
        assert_eq!(padding_block(3, 0), 4..4);
    }

    #[test]
    fn block_permutations_count_and_identity_first() {
        assert_eq!(block_permutations(1..1).len(), 1);
        assert_eq!(block_permutations(1..2).len(), 1);
        assert_eq!(block_permutations(1..3).len(), 2);
        assert_eq!(block_permutations(1..4).len(), 6);
        for block in [1..1, 1..2, 1..3, 1..4, 3..6] {
            let perms = block_permutations(block.clone());
            assert!(perms[0].is_identity());
            // Each permutation maps the block onto itself.
            for p in &perms {
                let mut image: Vec<u32> =
                    block.clone().map(|e| p.apply_elem(ElemId(e)).0).collect();
                image.sort_unstable();
                assert_eq!(image, block.clone().collect::<Vec<u32>>());
            }
        }
    }

    #[test]
    fn apply_elem_fixes_everything_outside_the_block() {
        let swap = &block_permutations(3..5)[1];
        assert!(!swap.is_identity());
        assert_eq!(swap.apply_elem(ElemId(3)), ElemId(4));
        assert_eq!(swap.apply_elem(ElemId(4)), ElemId(3));
        assert_eq!(swap.apply_elem(ElemId(1)), ElemId(1));
        assert_eq!(swap.apply_elem(ElemId(7)), ElemId(7));
        assert_eq!(
            swap.apply_elem(semcommute_logic::NULL_ELEM),
            semcommute_logic::NULL_ELEM
        );
    }

    #[test]
    fn is_canonical_picks_one_representative_per_orbit() {
        // Block {1, 2}: the orbit { ({1}), ({2}) } has one canonical member.
        assert!(is_canonical(&[set(&[1])], 1..3));
        assert!(!is_canonical(&[set(&[2])], 1..3));
        // Fixed points are canonical.
        assert!(is_canonical(&[set(&[])], 1..3));
        assert!(is_canonical(&[set(&[1, 2])], 1..3));
        // Joint action: ({2}, {1}) maps to ({1}, {2}) which is smaller.
        assert!(is_canonical(&[set(&[1]), set(&[2])], 1..3));
        assert!(!is_canonical(&[set(&[2]), set(&[1])], 1..3));
        // Non-collection slots never decide.
        assert!(is_canonical(&[Value::Int(5), set(&[1])], 1..3));
        assert!(!is_canonical(&[Value::Int(5), set(&[2])], 1..3));
    }

    #[test]
    fn orbit_tables_agree_with_is_canonical_exhaustively() {
        // Two set slots and one int slot over universe {1, 2, 3} with block
        // {2, 3} (class 1 named): every position triple must be classified
        // exactly as the definitional check classifies its value tuple.
        let block = 2u32..4;
        let mut sets: Vec<Value> = vec![
            set(&[]),
            set(&[1]),
            set(&[2]),
            set(&[3]),
            set(&[1, 2]),
            set(&[1, 3]),
            set(&[2, 3]),
            set(&[1, 2, 3]),
        ];
        sets.sort();
        let ints: Vec<Value> = (0..2).map(Value::Int).collect();
        let candidates = vec![sets.clone(), ints.clone(), sets.clone()];
        let sorts = [Sort::Set, Sort::Int, Sort::Set];
        let tables = OrbitTables::build(&candidates, &sorts, block.clone()).unwrap();
        for a in 0..sets.len() {
            for (b, int_value) in ints.iter().enumerate() {
                for c in 0..sets.len() {
                    let positions = [a, b, c];
                    let values = vec![sets[a].clone(), int_value.clone(), sets[c].clone()];
                    assert_eq!(
                        tables.violation(&positions).is_none(),
                        is_canonical(&values, block.clone()),
                        "tuple {values:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn violation_reports_the_smallest_deciding_slot() {
        let block = 1u32..3;
        let mut sets: Vec<Value> = vec![set(&[]), set(&[1]), set(&[2]), set(&[1, 2])];
        sets.sort();
        let candidates = vec![sets.clone(), sets.clone()];
        let sorts = [Sort::Set, Sort::Set];
        let tables = OrbitTables::build(&candidates, &sorts, block).unwrap();
        let at = |v: &Value| sets.iter().position(|s| s == v).unwrap();
        // ({2}, {2}) is decided at slot 0 already: the swap sends it to
        // ({1}, {1}), strictly smaller in the first slot.
        assert_eq!(tables.violation(&[at(&set(&[2])), at(&set(&[2]))]), Some(0));
        // ({1}, {2}) ties at slot 0 under the swap and loses at slot 1? No:
        // the swap maps it to ({2}, {1}) which is *larger* at slot 0, so the
        // tuple is canonical.
        assert_eq!(tables.violation(&[at(&set(&[1])), at(&set(&[2]))]), None);
        // ({1,2}, {2}): the swap fixes slot 0 and improves slot 1.
        assert_eq!(
            tables.violation(&[at(&set(&[1, 2])), at(&set(&[2]))]),
            Some(1)
        );
    }

    /// The enumerator's range-split resume can land *inside* a pruned
    /// subtree (digits after the violating slot nonzero — a state a
    /// from-the-left scan never observes, because it bumps the whole
    /// subtree away in one step). The violation check must still report the
    /// same deciding slot: it only ever compares digits up to the slot it
    /// decides at, so suffix digits cannot change the answer.
    #[test]
    fn violation_is_prefix_decided_for_mid_subtree_resumes() {
        let block = 1u32..3;
        let mut sets: Vec<Value> = vec![set(&[]), set(&[1]), set(&[2]), set(&[1, 2])];
        sets.sort();
        let candidates = vec![sets.clone(), sets.clone()];
        let sorts = [Sort::Set, Sort::Set];
        let tables = OrbitTables::build(&candidates, &sorts, block).unwrap();
        let at = |v: &Value| sets.iter().position(|s| s == v).unwrap();
        // ({2}, *) violates at slot 0 for every suffix digit.
        let j = at(&set(&[2]));
        for suffix in 0..sets.len() {
            assert_eq!(tables.violation(&[j, suffix]), Some(0), "suffix {suffix}");
        }
    }

    #[test]
    fn trivial_blocks_and_scalar_spaces_build_no_tables() {
        let sets = vec![set(&[]), set(&[1])];
        assert!(OrbitTables::build(&[sets], &[Sort::Set], 1..2).is_none());
        let ints: Vec<Value> = (0..3).map(Value::Int).collect();
        assert!(OrbitTables::build(&[ints], &[Sort::Int], 1..3).is_none());
    }
}
