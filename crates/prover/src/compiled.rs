//! Slot-compiled obligations: the finite-model prover's fast evaluation path.
//!
//! The reference evaluator ([`mod@semcommute_logic::eval`]) looks free variables
//! up by name in a `BTreeMap`-backed [`Model`] and clones the whole model to
//! bind a quantifier variable. That is fine for one evaluation, but the
//! finite-model prover evaluates the same obligation under *millions* of
//! candidate models, so per-candidate name lookups, string-keyed map
//! construction, and quantifier model clones dominate the search.
//!
//! A [`CompiledObligation`] resolves every variable occurrence to a dense
//! *slot* index once, up front: candidate enumeration writes values straight
//! into a flat slot vector (no names, no maps), defined variables evaluate
//! into their slots, and quantifiers save/restore a single slot. Pure
//! collection *reads* with a slot operand (`member`, `card`, `len`, `get`,
//! `has-key`, `at`, `index-of`, `contains`) borrow the collection in place
//! instead of cloning the handle out of the slot, eliminating the atomic
//! refcount round-trip that dominated the read side after the persistent
//! copy-on-write payloads landed. Semantics (including the totalization of
//! partial operations, evaluation order, and the error cases) mirror the
//! reference evaluator exactly; the property tests cross-check
//! counterexamples against it.

use std::collections::HashMap;

use semcommute_logic::eval::MAX_QUANTIFIER_RANGE;
use semcommute_logic::{Model, PMap, PSeq, PSet, Term, Value, NULL_ELEM};

use crate::obligation::Obligation;

/// A term with every variable occurrence resolved to a slot index.
///
/// `pub(crate)` so the bytecode backend (`crate::bytecode`) can lower the
/// compiled form to its flat register program.
#[derive(Debug, Clone)]
pub(crate) enum CTerm {
    Slot(u32),
    BoolLit(bool),
    IntLit(i64),
    Null,
    EmptySet,
    EmptyMap,
    EmptySeq,
    Not(Box<CTerm>),
    Neg(Box<CTerm>),
    Card(Box<CTerm>),
    MapSize(Box<CTerm>),
    SeqLen(Box<CTerm>),
    And(Vec<CTerm>),
    Or(Vec<CTerm>),
    Implies(Box<CTerm>, Box<CTerm>),
    Iff(Box<CTerm>, Box<CTerm>),
    Eq(Box<CTerm>, Box<CTerm>),
    Add(Box<CTerm>, Box<CTerm>),
    Sub(Box<CTerm>, Box<CTerm>),
    Lt(Box<CTerm>, Box<CTerm>),
    Le(Box<CTerm>, Box<CTerm>),
    SetAdd(Box<CTerm>, Box<CTerm>),
    SetRemove(Box<CTerm>, Box<CTerm>),
    Member(Box<CTerm>, Box<CTerm>),
    MapPut(Box<CTerm>, Box<CTerm>, Box<CTerm>),
    MapRemove(Box<CTerm>, Box<CTerm>),
    MapGet(Box<CTerm>, Box<CTerm>),
    MapHasKey(Box<CTerm>, Box<CTerm>),
    SeqInsertAt(Box<CTerm>, Box<CTerm>, Box<CTerm>),
    SeqRemoveAt(Box<CTerm>, Box<CTerm>),
    SeqSetAt(Box<CTerm>, Box<CTerm>, Box<CTerm>),
    SeqAt(Box<CTerm>, Box<CTerm>),
    SeqIndexOf(Box<CTerm>, Box<CTerm>),
    SeqLastIndexOf(Box<CTerm>, Box<CTerm>),
    SeqContains(Box<CTerm>, Box<CTerm>),
    Ite(Box<CTerm>, Box<CTerm>, Box<CTerm>),
    Quantifier {
        universal: bool,
        slot: u32,
        lo: Box<CTerm>,
        hi: Box<CTerm>,
        body: Box<CTerm>,
    },
}

/// One step of the compiled evaluation program: compute a defined variable
/// into its slot, or check a hypothesis (bailing out of the candidate when
/// it fails).
///
/// Hypotheses are scheduled at the *earliest* point their referenced defines
/// are available — a hypothesis over input variables only (an index-bounds
/// precondition, say) runs before any define is computed, so the large
/// fraction of candidates that violate it never pays for the defines. The
/// finite search checks millions of candidates per obligation; skipping the
/// define computations for hypothesis-violating candidates is a measurable
/// share of the whole catalog's wall-clock.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    Define(u32, CTerm),
    Check(CTerm),
}

/// An obligation compiled against a fixed input-variable order.
#[derive(Debug, Clone)]
pub struct CompiledObligation {
    /// Slots `0..input_count` hold the input variables, in the order given to
    /// [`CompiledObligation::compile`] (the enumeration order of the space).
    pub(crate) input_count: usize,
    /// Defines and hypothesis checks, interleaved: definition order is
    /// preserved, hypothesis order is preserved, and each hypothesis sits
    /// immediately after the last define it depends on.
    pub(crate) steps: Vec<Step>,
    pub(crate) goal: CTerm,
    /// Slot index → variable name, for reconstructing counter-models.
    /// Quantifier-bound slots have synthetic names and are excluded from
    /// reconstruction.
    pub(crate) slot_names: Vec<String>,
    /// Number of named slots (inputs + defines); the rest are binder slots.
    pub(crate) named_slots: usize,
}

/// Evaluation environment: one value per slot, reused across candidates.
pub struct SlotEnv {
    values: Vec<Option<Value>>,
}

impl CompiledObligation {
    /// Compiles `ob` against the given input-variable order (name, sort per
    /// slot). Every free variable of the obligation must appear in
    /// `input_order` or be defined; quantifier binders get private slots.
    pub fn compile(ob: &Obligation, input_order: &[String]) -> CompiledObligation {
        let mut slots: HashMap<String, u32> = HashMap::new();
        let mut slot_names: Vec<String> = Vec::new();
        for name in input_order {
            slots.insert(name.clone(), slot_names.len() as u32);
            slot_names.push(name.clone());
        }
        let input_count = slot_names.len();
        for (name, _) in &ob.defines {
            slots.entry(name.clone()).or_insert_with(|| {
                slot_names.push(name.clone());
                (slot_names.len() - 1) as u32
            });
        }
        let named_slots = slot_names.len();
        let mut compiler = Compiler {
            slots,
            slot_names,
            binders: Vec::new(),
        };
        let defines: Vec<(u32, CTerm)> = ob
            .defines
            .iter()
            .map(|(name, term)| {
                let slot = compiler.slots[name.as_str()];
                (slot, compiler.compile_term(term))
            })
            .collect();
        // For each hypothesis, the position of the last define it reads
        // (`None` when it only reads inputs): the earliest point in the
        // define sequence at which the hypothesis can be checked.
        let define_position: HashMap<&str, usize> = ob
            .defines
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.as_str(), i))
            .collect();
        let hypotheses: Vec<(Option<usize>, CTerm)> = ob
            .hypotheses
            .iter()
            .map(|h| {
                let latest = semcommute_logic::free_vars(h)
                    .keys()
                    .filter_map(|name| define_position.get(name.as_str()).copied())
                    .max();
                (latest, compiler.compile_term(h))
            })
            .collect();
        let goal = compiler.compile_term(&ob.goal);

        // Interleave: hypotheses over inputs only, then define 0, then the
        // hypotheses unlocked by it, then define 1, ... Relative order within
        // the defines and within the hypotheses is preserved.
        let mut steps = Vec::with_capacity(defines.len() + hypotheses.len());
        let mut pending = hypotheses.into_iter().peekable();
        let mut emit_ready = |after: Option<usize>, steps: &mut Vec<Step>| {
            // Hypothesis dependencies are monotone in hypothesis order
            // (vcgen only references already-defined variables), so a
            // peek-and-pop sweep preserves their relative order.
            while matches!(pending.peek(), Some((latest, _)) if *latest <= after) {
                let (_, h) = pending.next().expect("peeked");
                steps.push(Step::Check(h));
            }
        };
        emit_ready(None, &mut steps);
        for (position, (slot, term)) in defines.into_iter().enumerate() {
            steps.push(Step::Define(slot, term));
            emit_ready(Some(position), &mut steps);
        }
        // Defensive: hypotheses whose dependencies were never satisfied
        // (out-of-order references rejected by `Obligation::validate`) still
        // run, last, and surface their evaluation errors.
        for (_, h) in pending {
            steps.push(Step::Check(h));
        }

        CompiledObligation {
            input_count,
            steps,
            goal,
            slot_names: compiler.slot_names,
            named_slots,
        }
    }

    /// Creates a reusable environment sized for this obligation.
    pub fn env(&self) -> SlotEnv {
        SlotEnv {
            values: vec![None; self.slot_names.len()],
        }
    }

    /// Number of input slots (the prefix of the environment the enumerator
    /// fills).
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Checks one candidate: `inputs` are the values of the input variables
    /// in compile order.
    ///
    /// Returns `Ok(None)` when the candidate is not a counterexample (a
    /// hypothesis failed or the goal held), `Ok(Some(()))` when hypotheses
    /// hold and the goal fails — call [`CompiledObligation::reconstruct`] on
    /// the same env to obtain the full model — and `Err` on an evaluation
    /// error.
    ///
    /// Hypotheses are checked as early as their dependencies allow (defines
    /// and checks interleave; see the type-level docs); a candidate that
    /// violates an input-only hypothesis returns
    /// `Ok(None)` without computing any define.
    pub fn check(&self, inputs: &mut Vec<Value>, env: &mut SlotEnv) -> Result<Option<()>, String> {
        debug_assert_eq!(inputs.len(), self.input_count);
        for (slot, value) in inputs.drain(..).enumerate() {
            env.values[slot] = Some(value);
        }
        for step in &self.steps {
            match step {
                Step::Define(slot, term) => {
                    let value = eval_c(term, &mut env.values).map_err(|e| {
                        format!("evaluating `{}`: {e}", self.slot_names[*slot as usize])
                    })?;
                    env.values[*slot as usize] = Some(value);
                }
                Step::Check(h) => match eval_c(h, &mut env.values)
                    .map_err(|e| format!("evaluating hypothesis: {e}"))?
                {
                    Value::Bool(true) => {}
                    Value::Bool(false) => return Ok(None),
                    other => {
                        return Err(format!(
                            "evaluating hypothesis: expected bool, found {}",
                            other.sort()
                        ))
                    }
                },
            }
        }
        match eval_c(&self.goal, &mut env.values).map_err(|e| format!("evaluating goal: {e}"))? {
            Value::Bool(true) => Ok(None),
            Value::Bool(false) => Ok(Some(())),
            other => Err(format!(
                "evaluating goal: expected bool, found {}",
                other.sort()
            )),
        }
    }

    /// Rebuilds the named-variable [`Model`] (inputs plus computed defines)
    /// from the environment of the last [`CompiledObligation::check`] call.
    pub fn reconstruct(&self, env: &SlotEnv) -> Model {
        let mut model = Model::new();
        for (slot, name) in self.slot_names.iter().enumerate().take(self.named_slots) {
            if let Some(value) = &env.values[slot] {
                model.insert(name.clone(), value.clone());
            }
        }
        model
    }
}

struct Compiler {
    slots: HashMap<String, u32>,
    slot_names: Vec<String>,
    /// Stack of active quantifier binders (name → slot), innermost last.
    binders: Vec<(String, u32)>,
}

impl Compiler {
    fn fresh_binder_slot(&mut self, name: &str) -> u32 {
        let slot = self.slot_names.len() as u32;
        self.slot_names.push(format!("__q{slot}:{name}"));
        slot
    }

    fn resolve(&self, name: &str) -> Option<u32> {
        if let Some(&(_, slot)) = self.binders.iter().rev().find(|(n, _)| n == name) {
            return Some(slot);
        }
        self.slots.get(name).copied()
    }

    fn compile_term(&mut self, term: &Term) -> CTerm {
        use Term as T;
        let b = |c: &mut Compiler, t: &Term| Box::new(c.compile_term(t));
        match term {
            T::Var(v) => match self.resolve(&v.name) {
                Some(slot) => CTerm::Slot(slot),
                // Defensive: an unbound name becomes a slot that is never
                // filled, which evaluates to an unbound-variable error.
                None => {
                    let slot = self.slot_names.len() as u32;
                    self.slot_names.push(v.name.clone());
                    self.slots.insert(v.name.clone(), slot);
                    CTerm::Slot(slot)
                }
            },
            T::BoolLit(x) => CTerm::BoolLit(*x),
            T::IntLit(i) => CTerm::IntLit(*i),
            T::Null => CTerm::Null,
            T::EmptySet => CTerm::EmptySet,
            T::EmptyMap => CTerm::EmptyMap,
            T::EmptySeq => CTerm::EmptySeq,
            T::Not(a) => CTerm::Not(b(self, a)),
            T::Neg(a) => CTerm::Neg(b(self, a)),
            T::Card(a) => CTerm::Card(b(self, a)),
            T::MapSize(a) => CTerm::MapSize(b(self, a)),
            T::SeqLen(a) => CTerm::SeqLen(b(self, a)),
            T::And(cs) => CTerm::And(cs.iter().map(|c| self.compile_term(c)).collect()),
            T::Or(cs) => CTerm::Or(cs.iter().map(|c| self.compile_term(c)).collect()),
            T::Implies(x, y) => CTerm::Implies(b(self, x), b(self, y)),
            T::Iff(x, y) => CTerm::Iff(b(self, x), b(self, y)),
            T::Eq(x, y) => CTerm::Eq(b(self, x), b(self, y)),
            T::Add(x, y) => CTerm::Add(b(self, x), b(self, y)),
            T::Sub(x, y) => CTerm::Sub(b(self, x), b(self, y)),
            T::Lt(x, y) => CTerm::Lt(b(self, x), b(self, y)),
            T::Le(x, y) => CTerm::Le(b(self, x), b(self, y)),
            T::SetAdd(x, y) => CTerm::SetAdd(b(self, x), b(self, y)),
            T::SetRemove(x, y) => CTerm::SetRemove(b(self, x), b(self, y)),
            T::Member(x, y) => CTerm::Member(b(self, x), b(self, y)),
            T::MapPut(x, y, z) => CTerm::MapPut(b(self, x), b(self, y), b(self, z)),
            T::MapRemove(x, y) => CTerm::MapRemove(b(self, x), b(self, y)),
            T::MapGet(x, y) => CTerm::MapGet(b(self, x), b(self, y)),
            T::MapHasKey(x, y) => CTerm::MapHasKey(b(self, x), b(self, y)),
            T::SeqInsertAt(x, y, z) => CTerm::SeqInsertAt(b(self, x), b(self, y), b(self, z)),
            T::SeqRemoveAt(x, y) => CTerm::SeqRemoveAt(b(self, x), b(self, y)),
            T::SeqSetAt(x, y, z) => CTerm::SeqSetAt(b(self, x), b(self, y), b(self, z)),
            T::SeqAt(x, y) => CTerm::SeqAt(b(self, x), b(self, y)),
            T::SeqIndexOf(x, y) => CTerm::SeqIndexOf(b(self, x), b(self, y)),
            T::SeqLastIndexOf(x, y) => CTerm::SeqLastIndexOf(b(self, x), b(self, y)),
            T::SeqContains(x, y) => CTerm::SeqContains(b(self, x), b(self, y)),
            T::Ite(x, y, z) => CTerm::Ite(b(self, x), b(self, y), b(self, z)),
            T::ForallInt { var, lo, hi, body } | T::ExistsInt { var, lo, hi, body } => {
                let lo = b(self, lo);
                let hi = b(self, hi);
                let slot = self.fresh_binder_slot(var);
                self.binders.push((var.clone(), slot));
                let body = b(self, body);
                self.binders.pop();
                CTerm::Quantifier {
                    universal: matches!(term, T::ForallInt { .. }),
                    slot,
                    lo,
                    hi,
                    body,
                }
            }
        }
    }
}

/// Peeks the value bound in slot `i` without cloning it out of the
/// environment.
///
/// Pure collection *reads* (membership, lookup, length) dominate the
/// finite-model search, and moving a `Value` out of a slot — even with the
/// persistent copy-on-write payloads — costs an atomic refcount round-trip
/// per read. The read-shaped operators below therefore evaluate slot
/// operands through this shared borrow. The borrow is never held across a
/// recursive `eval_c` call: operators that evaluate another operand after
/// identifying the slot re-peek afterwards, which is sound because `eval_c`
/// never writes an input or defined slot (quantifiers save/restore their own
/// private binder slots only).
fn slot_ref(env: &[Option<Value>], i: u32) -> Result<&Value, String> {
    env[i as usize]
        .as_ref()
        .ok_or_else(|| format!("unbound slot {i}"))
}

fn expect_bool_c(v: Value, context: &'static str) -> Result<bool, String> {
    match v {
        Value::Bool(x) => Ok(x),
        other => Err(format!("{context}: expected bool, found {}", other.sort())),
    }
}

fn expect_int_c(v: Value, context: &'static str) -> Result<i64, String> {
    match v {
        Value::Int(x) => Ok(x),
        other => Err(format!("{context}: expected int, found {}", other.sort())),
    }
}

fn expect_elem_c(v: Value, context: &'static str) -> Result<semcommute_logic::ElemId, String> {
    match v {
        Value::Elem(x) => Ok(x),
        other => Err(format!("{context}: expected obj, found {}", other.sort())),
    }
}

/// Expands the borrow-read fast path for a unary length read (`card`,
/// `map-size`, `seq-len`): a slot operand is read through a shared borrow
/// (no handle clone), anything else falls back to evaluating the operand.
/// One definition keeps the protocol and the error strings of every such
/// operator in lockstep.
macro_rules! length_read {
    ($coll:expr, $env:expr, $variant:ident, $err:literal) => {{
        let len = match $coll.as_ref() {
            CTerm::Slot(i) => match slot_ref($env, *i)? {
                Value::$variant(c) => c.len(),
                other => return Err(format!(concat!($err, ", found {}"), other.sort())),
            },
            _ => match eval_c($coll, $env)? {
                Value::$variant(c) => c.len(),
                other => return Err(format!(concat!($err, ", found {}"), other.sort())),
            },
        };
        Value::Int(len as i64)
    }};
}

/// Expands the borrow-read fast path for a collection-first binary read
/// (`get`, `has-key`, `at`, `index-of`, `last-index-of`, `contains`): a
/// slot operand is sort-checked up front (same error, same order as
/// evaluating it would produce), the second operand (`$op`) is evaluated,
/// and the slot re-peeked — the operand's evaluation cannot touch a named
/// slot, so the collection is still there. A non-slot operand falls back
/// to moving the evaluated collection, preserving the original evaluation
/// order.
macro_rules! collection_read {
    ($coll:expr, $env:expr, $variant:ident, $err:literal,
     $op:expr, |$c:ident, $x:ident| $body:expr) => {{
        if let CTerm::Slot(i) = $coll.as_ref() {
            match slot_ref($env, *i)? {
                Value::$variant(_) => {}
                other => return Err(format!(concat!($err, ", found {}"), other.sort())),
            }
            let $x = $op;
            let Value::$variant($c) = slot_ref($env, *i)? else {
                return Err(format!("slot {i} changed sort mid-evaluation"));
            };
            $body
        } else {
            match eval_c($coll, $env)? {
                Value::$variant(c) => {
                    let $x = $op;
                    let $c = &c;
                    $body
                }
                other => return Err(format!(concat!($err, ", found {}"), other.sort())),
            }
        }
    }};
}

fn eval_c(term: &CTerm, env: &mut Vec<Option<Value>>) -> Result<Value, String> {
    use CTerm::*;
    Ok(match term {
        Slot(i) => env[*i as usize]
            .clone()
            .ok_or_else(|| format!("unbound slot {i}"))?,
        BoolLit(b) => Value::Bool(*b),
        IntLit(i) => Value::Int(*i),
        Null => Value::Elem(NULL_ELEM),
        EmptySet => Value::Set(PSet::new()),
        EmptyMap => Value::Map(PMap::new()),
        EmptySeq => Value::Seq(PSeq::new()),

        Not(a) => Value::Bool(!expect_bool_c(eval_c(a, env)?, "not")?),
        And(cs) => {
            let mut acc = true;
            for c in cs {
                acc &= expect_bool_c(eval_c(c, env)?, "and")?;
            }
            Value::Bool(acc)
        }
        Or(cs) => {
            let mut acc = false;
            for c in cs {
                acc |= expect_bool_c(eval_c(c, env)?, "or")?;
            }
            Value::Bool(acc)
        }
        Implies(a, b) => {
            let a = expect_bool_c(eval_c(a, env)?, "implies")?;
            let b = expect_bool_c(eval_c(b, env)?, "implies")?;
            Value::Bool(!a || b)
        }
        Iff(a, b) => {
            let a = expect_bool_c(eval_c(a, env)?, "iff")?;
            let b = expect_bool_c(eval_c(b, env)?, "iff")?;
            Value::Bool(a == b)
        }
        Ite(c, t, e) => {
            let c = expect_bool_c(eval_c(c, env)?, "ite condition")?;
            let tv = eval_c(t, env)?;
            let ev = eval_c(e, env)?;
            if tv.sort() != ev.sort() {
                return Err(format!(
                    "cannot compare values of sorts {} and {}",
                    tv.sort(),
                    ev.sort()
                ));
            }
            if c {
                tv
            } else {
                ev
            }
        }
        Eq(a, b) => {
            let av = eval_c(a, env)?;
            let bv = eval_c(b, env)?;
            if av.sort() != bv.sort() {
                return Err(format!(
                    "cannot compare values of sorts {} and {}",
                    av.sort(),
                    bv.sort()
                ));
            }
            Value::Bool(av == bv)
        }

        Add(a, b) => Value::Int(
            expect_int_c(eval_c(a, env)?, "add")?
                .wrapping_add(expect_int_c(eval_c(b, env)?, "add")?),
        ),
        Sub(a, b) => Value::Int(
            expect_int_c(eval_c(a, env)?, "sub")?
                .wrapping_sub(expect_int_c(eval_c(b, env)?, "sub")?),
        ),
        Neg(a) => Value::Int(expect_int_c(eval_c(a, env)?, "neg")?.wrapping_neg()),
        Lt(a, b) => {
            Value::Bool(expect_int_c(eval_c(a, env)?, "lt")? < expect_int_c(eval_c(b, env)?, "lt")?)
        }
        Le(a, b) => Value::Bool(
            expect_int_c(eval_c(a, env)?, "le")? <= expect_int_c(eval_c(b, env)?, "le")?,
        ),

        SetAdd(s, v) => {
            let mut s = match eval_c(s, env)? {
                Value::Set(s) => s,
                other => return Err(format!("set add: expected obj set, found {}", other.sort())),
            };
            s.insert(expect_elem_c(eval_c(v, env)?, "set add")?);
            Value::Set(s)
        }
        SetRemove(s, v) => {
            let mut s = match eval_c(s, env)? {
                Value::Set(s) => s,
                other => {
                    return Err(format!(
                        "set remove: expected obj set, found {}",
                        other.sort()
                    ))
                }
            };
            s.remove(&expect_elem_c(eval_c(v, env)?, "set remove")?);
            Value::Set(s)
        }
        Member(v, s) => {
            let v = expect_elem_c(eval_c(v, env)?, "member")?;
            // Set slot operands are read in place (see `slot_ref`); the
            // fallback path moves the evaluated set out as before.
            let contains = match s.as_ref() {
                Slot(i) => match slot_ref(env, *i)? {
                    Value::Set(s) => s.contains(&v),
                    other => {
                        return Err(format!("member: expected obj set, found {}", other.sort()))
                    }
                },
                _ => match eval_c(s, env)? {
                    Value::Set(s) => s.contains(&v),
                    other => {
                        return Err(format!("member: expected obj set, found {}", other.sort()))
                    }
                },
            };
            Value::Bool(contains)
        }
        Card(s) => length_read!(s, env, Set, "card: expected obj set"),

        MapPut(m, k, v) => {
            let mut m = match eval_c(m, env)? {
                Value::Map(m) => m,
                other => {
                    return Err(format!(
                        "map put: expected (obj, obj) map, found {}",
                        other.sort()
                    ))
                }
            };
            let k = expect_elem_c(eval_c(k, env)?, "map put key")?;
            let v = expect_elem_c(eval_c(v, env)?, "map put value")?;
            m.insert(k, v);
            Value::Map(m)
        }
        MapRemove(m, k) => {
            let mut m = match eval_c(m, env)? {
                Value::Map(m) => m,
                other => {
                    return Err(format!(
                        "map remove: expected (obj, obj) map, found {}",
                        other.sort()
                    ))
                }
            };
            let k = expect_elem_c(eval_c(k, env)?, "map remove key")?;
            m.remove(&k);
            Value::Map(m)
        }
        MapGet(m, k) => collection_read!(
            m,
            env,
            Map,
            "map get: expected (obj, obj) map",
            expect_elem_c(eval_c(k, env)?, "map get key")?,
            |map, k| Value::Elem(map.get(&k).copied().unwrap_or(NULL_ELEM))
        ),
        MapHasKey(m, k) => collection_read!(
            m,
            env,
            Map,
            "map has-key: expected (obj, obj) map",
            expect_elem_c(eval_c(k, env)?, "map has-key key")?,
            |map, k| Value::Bool(map.contains_key(&k))
        ),
        MapSize(m) => length_read!(m, env, Map, "map size: expected (obj, obj) map"),

        SeqInsertAt(s, i, v) => {
            let mut s = match eval_c(s, env)? {
                Value::Seq(s) => s,
                other => {
                    return Err(format!(
                        "seq insert-at: expected obj seq, found {}",
                        other.sort()
                    ))
                }
            };
            let i = expect_int_c(eval_c(i, env)?, "seq insert-at index")?;
            let v = expect_elem_c(eval_c(v, env)?, "seq insert-at value")?;
            let idx = i.clamp(0, s.len() as i64) as usize;
            s.insert(idx, v);
            Value::Seq(s)
        }
        SeqRemoveAt(s, i) => {
            let mut s = match eval_c(s, env)? {
                Value::Seq(s) => s,
                other => {
                    return Err(format!(
                        "seq remove-at: expected obj seq, found {}",
                        other.sort()
                    ))
                }
            };
            let i = expect_int_c(eval_c(i, env)?, "seq remove-at index")?;
            if i >= 0 && (i as usize) < s.len() {
                s.remove(i as usize);
            }
            Value::Seq(s)
        }
        SeqSetAt(s, i, v) => {
            let mut s = match eval_c(s, env)? {
                Value::Seq(s) => s,
                other => {
                    return Err(format!(
                        "seq set-at: expected obj seq, found {}",
                        other.sort()
                    ))
                }
            };
            let i = expect_int_c(eval_c(i, env)?, "seq set-at index")?;
            let v = expect_elem_c(eval_c(v, env)?, "seq set-at value")?;
            if i >= 0 && (i as usize) < s.len() {
                s.set(i as usize, v);
            }
            Value::Seq(s)
        }
        // Sequence reads are the hottest operators of the ArrayList
        // fragment; a sequence slot operand is read in place via the shared
        // validate / evaluate-operand / re-peek protocol.
        SeqAt(s, i) => collection_read!(
            s,
            env,
            Seq,
            "seq at: expected obj seq",
            expect_int_c(eval_c(i, env)?, "seq at index")?,
            |seq, i| {
                let e = if i >= 0 && (i as usize) < seq.len() {
                    seq[i as usize]
                } else {
                    NULL_ELEM
                };
                Value::Elem(e)
            }
        ),
        SeqLen(s) => length_read!(s, env, Seq, "seq len: expected obj seq"),
        SeqIndexOf(s, v) => collection_read!(
            s,
            env,
            Seq,
            "seq index-of: expected obj seq",
            expect_elem_c(eval_c(v, env)?, "seq index-of value")?,
            |seq, v| Value::Int(seq.iter().position(|&e| e == v).map_or(-1, |i| i as i64))
        ),
        SeqLastIndexOf(s, v) => collection_read!(
            s,
            env,
            Seq,
            "seq last-index-of: expected obj seq",
            expect_elem_c(eval_c(v, env)?, "seq last-index-of value")?,
            |seq, v| Value::Int(seq.iter().rposition(|&e| e == v).map_or(-1, |i| i as i64))
        ),
        SeqContains(s, v) => collection_read!(
            s,
            env,
            Seq,
            "seq contains: expected obj seq",
            expect_elem_c(eval_c(v, env)?, "seq contains value")?,
            |seq, v| Value::Bool(seq.contains(&v))
        ),

        Quantifier {
            universal,
            slot,
            lo,
            hi,
            body,
        } => {
            let lo = expect_int_c(eval_c(lo, env)?, "quantifier lower bound")?;
            let hi = expect_int_c(eval_c(hi, env)?, "quantifier upper bound")?;
            if hi - lo > MAX_QUANTIFIER_RANGE {
                return Err(format!(
                    "quantifier range of width {} is too large to enumerate",
                    hi - lo
                ));
            }
            let saved = env[*slot as usize].take();
            let mut result = *universal;
            let mut error = None;
            for i in lo..hi {
                env[*slot as usize] = Some(Value::Int(i));
                match eval_c(body, env) {
                    Ok(v) => match expect_bool_c(v, "quantifier body") {
                        Ok(b) => {
                            if *universal && !b {
                                result = false;
                                break;
                            }
                            if !*universal && b {
                                result = true;
                                break;
                            }
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    },
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            env[*slot as usize] = saved;
            if let Some(e) = error {
                return Err(e);
            }
            Value::Bool(result)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_logic::{eval_bool, ElemId};

    fn check_against_reference(ob: &Obligation, inputs: Vec<(&str, Value)>) {
        let order: Vec<String> = inputs.iter().map(|(n, _)| n.to_string()).collect();
        let compiled = CompiledObligation::compile(ob, &order);
        let mut env = compiled.env();
        let mut vals: Vec<Value> = inputs.iter().map(|(_, v)| v.clone()).collect();
        let compiled_cex = compiled.check(&mut vals, &mut env).unwrap().is_some();

        // Reference: evaluate with the tree evaluator.
        let mut model =
            Model::from_bindings(inputs.iter().map(|(n, v)| (n.to_string(), v.clone())));
        for (name, term) in &ob.defines {
            let v = semcommute_logic::eval(term, &model).unwrap();
            model.insert(name.clone(), v);
        }
        let hyps_hold = ob.hypotheses.iter().all(|h| eval_bool(h, &model).unwrap());
        let reference_cex = hyps_hold && !eval_bool(&ob.goal, &model).unwrap();
        assert_eq!(compiled_cex, reference_cex);
        if compiled_cex {
            assert_eq!(compiled.reconstruct(&env), model);
        }
    }

    #[test]
    fn compiled_check_agrees_with_reference_evaluator() {
        let ob = Obligation::new("t")
            .define("r1", member(var_elem("v1"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v2")))
            .define("r2", member(var_elem("v1"), var_set("s1")))
            .goal(eq(var_bool("r1"), var_bool("r2")));
        check_against_reference(
            &ob,
            vec![
                ("v1", Value::elem(1)),
                ("v2", Value::elem(1)),
                ("s", Value::set_of([])),
            ],
        );
        check_against_reference(
            &ob,
            vec![
                ("v1", Value::elem(1)),
                ("v2", Value::elem(2)),
                ("s", Value::set_of([ElemId(1)])),
            ],
        );
    }

    #[test]
    fn quantifier_slots_are_scoped() {
        // exists i in [0, len(q)). q[i] = v — with a nested shadowing binder.
        let ob = Obligation::new("q").goal(exists_int(
            "i",
            int(0),
            seq_len(var_seq("q")),
            and2(
                eq(seq_at(var_seq("q"), var_int("i")), var_elem("v")),
                forall_int("i", int(0), int(2), le(int(0), var_int("i"))),
            ),
        ));
        check_against_reference(
            &ob,
            vec![
                ("q", Value::seq_of([ElemId(4), ElemId(7)])),
                ("v", Value::elem(7)),
            ],
        );
        check_against_reference(
            &ob,
            vec![("q", Value::seq_of([ElemId(4)])), ("v", Value::elem(7))],
        );
    }

    #[test]
    fn ill_sorted_terms_error() {
        let ob = Obligation::new("bad").goal(eq(card(var_elem("v")), int(0)));
        let compiled = CompiledObligation::compile(&ob, &["v".to_string()]);
        let mut env = compiled.env();
        let mut vals = vec![Value::elem(1)];
        assert!(compiled.check(&mut vals, &mut env).is_err());
    }

    /// The borrow-read fast path (slot operands of `member`/`card`/`at`/...)
    /// must agree with the reference evaluator on results *and* on the
    /// ill-sorted error cases, since a slot operand skips the generic
    /// evaluation that used to produce those errors.
    #[test]
    fn slot_read_specializations_match_reference_and_errors() {
        let ob = Obligation::new("reads").goal(and2(
            and2(
                member(var_elem("v"), var_set("s")),
                eq(card(var_set("s")), int(2)),
            ),
            and2(
                and2(
                    eq(map_get(var_map("mp"), var_elem("v")), var_elem("w")),
                    map_has_key(var_map("mp"), var_elem("v")),
                ),
                and2(
                    eq(seq_at(var_seq("q"), int(1)), var_elem("w")),
                    and2(
                        seq_contains(var_seq("q"), var_elem("v")),
                        eq(seq_index_of(var_seq("q"), var_elem("v")), int(0)),
                    ),
                ),
            ),
        ));
        check_against_reference(
            &ob,
            vec![
                ("v", Value::elem(1)),
                ("w", Value::elem(2)),
                ("s", Value::set_of([ElemId(1), ElemId(2)])),
                ("mp", Value::map_of([(ElemId(1), ElemId(2))])),
                ("q", Value::seq_of([ElemId(1), ElemId(2)])),
            ],
        );

        // Ill-sorted slot operands keep the reference error messages.
        for (goal, expected) in [
            (card(var_int("x")), "card: expected obj set"),
            (
                member(var_elem("v"), var_int("x")),
                "member: expected obj set",
            ),
            (map_size(var_int("x")), "map size: expected (obj, obj) map"),
            (seq_len(var_int("x")), "seq len: expected obj seq"),
            (seq_at(var_int("x"), int(0)), "seq at: expected obj seq"),
            (
                map_get(var_int("x"), var_elem("v")),
                "map get: expected (obj, obj) map",
            ),
        ] {
            let ob = Obligation::new("bad").goal(eq(goal, int(0)));
            let order = vec!["v".to_string(), "x".to_string()];
            let compiled = CompiledObligation::compile(&ob, &order);
            let mut env = compiled.env();
            let mut vals = vec![Value::elem(1), Value::Int(3)];
            let err = compiled.check(&mut vals, &mut env).unwrap_err();
            assert!(err.contains(expected), "`{err}` missing `{expected}`");
        }
    }
}
