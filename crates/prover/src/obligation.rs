//! Proof obligations.

use std::collections::BTreeMap;
use std::fmt;

use semcommute_logic::{build, free_vars, Sort, Term};

/// A proof obligation: prove `goal` from `hypotheses`, where some variables
/// are *defined* as functions of earlier variables.
///
/// Obligations are produced by symbolically executing the generated
/// commutativity / inverse testing methods. Each operation call contributes a
/// group of *definitions* (its result and post-state expressed as terms over
/// the pre-state and arguments) and possibly hypotheses (assumed
/// preconditions, the assumed commutativity condition); the final `assert`
/// contributes the goal.
///
/// Keeping definitions separate from general hypotheses is what makes the
/// finite-model prover practical: only the *input* variables (the initial
/// abstract state and the operation arguments) need to be enumerated; defined
/// variables are computed by evaluation, exactly as the testing method would
/// compute them when run.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    /// A short name identifying the obligation (testing method name plus the
    /// assertion label).
    pub name: String,
    /// Ordered functional definitions `(variable, term)`. Each term may refer
    /// to input variables and to previously defined variables only.
    pub defines: Vec<(String, Term)>,
    /// Hypotheses that may be assumed.
    pub hypotheses: Vec<Term>,
    /// The goal to prove.
    pub goal: Term,
}

impl Obligation {
    /// Creates an empty obligation with the given name and a trivially true
    /// goal. Use the builder methods to populate it.
    pub fn new(name: impl Into<String>) -> Obligation {
        Obligation {
            name: name.into(),
            defines: Vec::new(),
            hypotheses: Vec::new(),
            goal: build::tru(),
        }
    }

    /// Adds a functional definition `var := term`.
    pub fn define(mut self, var: impl Into<String>, term: Term) -> Obligation {
        self.defines.push((var.into(), term));
        self
    }

    /// Adds a hypothesis.
    pub fn assume(mut self, hypothesis: Term) -> Obligation {
        self.hypotheses.push(hypothesis);
        self
    }

    /// Sets the goal.
    pub fn goal(mut self, goal: Term) -> Obligation {
        self.goal = goal;
        self
    }

    /// Returns the names of the defined variables, in definition order.
    pub fn defined_names(&self) -> Vec<&str> {
        self.defines.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Returns the *input* variables of the obligation: free variables of the
    /// definitions, hypotheses, and goal that are not themselves defined.
    pub fn input_vars(&self) -> BTreeMap<String, Sort> {
        let mut all: BTreeMap<String, Sort> = BTreeMap::new();
        for (_, t) in &self.defines {
            all.extend(free_vars(t));
        }
        for h in &self.hypotheses {
            all.extend(free_vars(h));
        }
        all.extend(free_vars(&self.goal));
        for (name, _) in &self.defines {
            all.remove(name);
        }
        all
    }

    /// Returns all variables (inputs and defined) with their sorts.
    pub fn all_vars(&self) -> BTreeMap<String, Sort> {
        let mut all = self.input_vars();
        for (name, t) in &self.defines {
            // The sort of a defined variable is the sort of its definition;
            // fall back to Bool (and let sort checking fail later) if the
            // definition is ill-sorted.
            let sort = semcommute_logic::sort_of(t).unwrap_or(Sort::Bool);
            all.insert(name.clone(), sort);
        }
        all
    }

    /// The obligation as a single closed formula:
    /// `(defines ∧ hypotheses) → goal`.
    pub fn as_formula(&self) -> Term {
        let mut hyps: Vec<Term> = self
            .defines
            .iter()
            .map(|(n, t)| {
                let sort = semcommute_logic::sort_of(t).unwrap_or(Sort::Bool);
                build::eq(Term::var(n.clone(), sort), t.clone())
            })
            .collect();
        hyps.extend(self.hypotheses.iter().cloned());
        build::implies(build::and(hyps), self.goal.clone())
    }

    /// Checks that the definitions are well-formed: no variable is defined
    /// twice, and no definition refers to a variable defined later.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined: Vec<&str> = Vec::new();
        for (name, term) in &self.defines {
            if defined.contains(&name.as_str()) {
                return Err(format!("variable `{name}` is defined twice"));
            }
            for (fv, _) in free_vars(term) {
                if fv == *name {
                    return Err(format!("definition of `{name}` refers to itself"));
                }
                // Referring to a *later* defined variable is an error.
                if !defined.contains(&fv.as_str())
                    && self.defines.iter().any(|(n, _)| *n == fv)
                    && self
                        .defines
                        .iter()
                        .position(|(n, _)| *n == fv)
                        .expect("position exists")
                        > defined.len()
                {
                    return Err(format!(
                        "definition of `{name}` refers to `{fv}`, which is defined later"
                    ));
                }
            }
            defined.push(name);
        }
        Ok(())
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "obligation {} {{", self.name)?;
        for (n, t) in &self.defines {
            writeln!(f, "  let {n} = {t}")?;
        }
        for h in &self.hypotheses {
            writeln!(f, "  assume {h}")?;
        }
        writeln!(f, "  prove {}", self.goal)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn sample() -> Obligation {
        Obligation::new("sample")
            .define("r", member(var_elem("v"), var_set("s")))
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .assume(neq(var_elem("v"), null()))
            .goal(member(var_elem("v"), var_set("s1")))
    }

    #[test]
    fn input_vars_exclude_defined() {
        let ob = sample();
        let inputs = ob.input_vars();
        assert!(inputs.contains_key("v"));
        assert!(inputs.contains_key("s"));
        assert!(!inputs.contains_key("r"));
        assert!(!inputs.contains_key("s1"));
        assert_eq!(ob.defined_names(), vec!["r", "s1"]);
    }

    #[test]
    fn all_vars_include_defined_with_sorts() {
        let all = sample().all_vars();
        assert_eq!(all["r"], Sort::Bool);
        assert_eq!(all["s1"], Sort::Set);
        assert_eq!(all["v"], Sort::Elem);
    }

    #[test]
    fn as_formula_is_implication() {
        let f = sample().as_formula();
        assert!(matches!(f, Term::Implies(_, _)));
        assert!(semcommute_logic::ty::check_formula(&f).is_ok());
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_definition() {
        let ob = Obligation::new("dup")
            .define("x", int(1))
            .define("x", int(2));
        assert!(ob.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_reference() {
        let ob = Obligation::new("selfref").define("x", add(var_int("x"), int(1)));
        assert!(ob.validate().is_err());
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let ob = Obligation::new("fwd")
            .define("a", var_int("b"))
            .define("b", int(1));
        assert!(ob.validate().is_err());
    }

    #[test]
    fn display_shows_structure() {
        let s = sample().to_string();
        assert!(s.contains("let r ="));
        assert!(s.contains("assume"));
        assert!(s.contains("prove"));
    }
}
