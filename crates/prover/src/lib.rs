//! Proof obligations and decision procedures for the `semcommute` verifier.
//!
//! This crate plays the role of Jahob's "integrated reasoning" back-end in the
//! original paper: the commutativity / inverse testing methods are symbolically
//! executed (by `semcommute-core`) into [`Obligation`]s, and this crate decides
//! them. Two cooperating provers are provided, mirroring the paper's portfolio
//! of reasoning systems:
//!
//! * a **structural prover** ([`structural`]) that inlines the functional
//!   definitions produced by symbolic execution, normalizes set/sequence update
//!   chains, and simplifies — it discharges the obligations that are valid for
//!   purely algebraic reasons (a large part of the catalog), and
//! * a **finite-model prover** ([`finite`]) that exhaustively searches for a
//!   counter-model over a *relevant universe* derived from the obligation
//!   ([`scope`], [`space`]). For the counter / set / map fragment the derived
//!   universe is large enough that the search is a sound and complete decision
//!   procedure; for the sequence (ArrayList) fragment the sequence length is an
//!   explicit, reported scope parameter (the analog of the paper's observation
//!   that ArrayList obligations need extra help). The search space is doubly
//!   symmetry-reduced: element variables are assigned partition patterns, and
//!   collection-valued inputs are enumerated orbit-canonically under
//!   permutations of the anonymous padding elements ([`orbit`]).
//!
//! The [`portfolio`] module combines the two (structural first, then
//! finite-model) behind a sharded canonical-hash verdict cache, [`queue`]
//! drains batches of obligations with work-stealing workers addressing that
//! cache, and [`hints`] implements the three Jahob proof-language commands
//! the paper uses for the 57 hard ArrayList methods: `note`, `assuming`, and
//! `pickWitness`.
//!
//! # Example
//!
//! ```
//! use semcommute_logic::build::*;
//! use semcommute_prover::{Obligation, Portfolio};
//!
//! // hypotheses: r = (v2 in s),  s' = s Un {v2}
//! // goal:       v2 in s'
//! let ob = Obligation::new("add_establishes_membership")
//!     .define("r", member(var_elem("v2"), var_set("s")))
//!     .define("s_post", set_add(var_set("s"), var_elem("v2")))
//!     .goal(member(var_elem("v2"), var_set("s_post")));
//! let verdict = Portfolio::default().prove(&ob);
//! assert!(verdict.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod compiled;
pub mod finite;
pub mod hints;
pub mod obligation;
pub mod orbit;
pub mod portfolio;
pub mod queue;
pub mod scope;
pub mod space;
pub mod stats;
pub mod structural;
pub mod verdict;

pub use bytecode::Program;
pub use finite::{FiniteModelProver, ModelSearch, SearchOutcome, SearchShared};
pub use hints::{apply_hints, Hint};
pub use obligation::Obligation;
pub use portfolio::{Portfolio, Started, VerdictCache};
pub use queue::{ExitGuard, QueueReport, QueueRun, ScheduledObligation};
pub use scope::Scope;
pub use space::InputSpace;
pub use stats::ProofStats;
pub use stats::ProverChoice;
pub use verdict::Verdict;
