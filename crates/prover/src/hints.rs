//! Proof hints: the `note`, `assuming`, and `pickWitness` commands.
//!
//! The paper reports that 57 of the 1530 generated commutativity testing
//! methods (all on ArrayList) do not verify automatically and need a total of
//! 201 Jahob proof language commands (Table 5.9): `note` (prove an
//! intermediate lemma and make it available), `assuming` (prove `A ⟹ B` by
//! assuming `A`), and `pickWitness` (skolemize an existential hypothesis so
//! that later reasoning can refer to the witness).
//!
//! This module reproduces those commands. A hint either produces a *side
//! obligation* (whose validity must be established separately) and augments
//! the hypotheses of the main obligation, or — for `pickWitness` — introduces
//! a fresh witness constant constrained by the body of an existential
//! hypothesis.

use std::collections::BTreeMap;
use std::fmt;

use semcommute_logic::{build, substitute, Term};

use crate::obligation::Obligation;

/// A proof-language command attached to a testing method.
#[derive(Debug, Clone, PartialEq)]
pub enum Hint {
    /// `note F`: prove `F` from the current hypotheses, then add it to the
    /// hypotheses of the main obligation.
    Note(Term),
    /// `assuming A { … } yields C`: prove `C` under the extra hypothesis `A`,
    /// then add `A → C` to the hypotheses of the main obligation.
    Assuming {
        /// The case assumption `A`.
        hypothesis: Term,
        /// The conclusion `C` proved under `A`.
        conclusion: Term,
    },
    /// `pickWitness w for EX x ∈ [lo, hi). body`: introduce a fresh constant
    /// `w` with `lo ≤ w < hi` and `body[x := w]` as new hypotheses. The
    /// existential must already be among the hypotheses (possibly added by an
    /// earlier `note` / `assuming`).
    PickWitness {
        /// The name of the fresh witness constant.
        witness: String,
        /// The existential hypothesis being skolemized.
        existential: Term,
    },
}

impl Hint {
    /// A short label used in reports (matches the command names of Table 5.9).
    pub fn command_name(&self) -> &'static str {
        match self {
            Hint::Note(_) => "note",
            Hint::Assuming { .. } => "assuming",
            Hint::PickWitness { .. } => "pickWitness",
        }
    }
}

impl fmt::Display for Hint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hint::Note(t) => write!(f, "note \"{t}\""),
            Hint::Assuming {
                hypothesis,
                conclusion,
            } => write!(f, "assuming \"{hypothesis}\" ==> \"{conclusion}\""),
            Hint::PickWitness {
                witness,
                existential,
            } => write!(f, "pickWitness {witness} for \"{existential}\""),
        }
    }
}

/// An error applying hints to an obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HintError {
    /// `pickWitness` referred to a formula that is not an existential.
    NotAnExistential(String),
    /// `pickWitness` referred to an existential that is not among the current
    /// hypotheses.
    MissingExistential(String),
    /// The witness name is already used by the obligation.
    WitnessNameClash(String),
}

impl fmt::Display for HintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HintError::NotAnExistential(s) => {
                write!(f, "pickWitness target is not an existential: {s}")
            }
            HintError::MissingExistential(s) => {
                write!(f, "pickWitness target is not among the hypotheses: {s}")
            }
            HintError::WitnessNameClash(s) => write!(f, "witness name `{s}` is already in use"),
        }
    }
}

impl std::error::Error for HintError {}

/// The result of applying hints: side obligations to discharge, plus the
/// augmented main obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct HintedObligations {
    /// Obligations introduced by `note` / `assuming` commands, in order.
    pub side_obligations: Vec<Obligation>,
    /// The main obligation with the hint conclusions available as hypotheses.
    pub main: Obligation,
}

/// Applies a sequence of hints to an obligation.
///
/// # Errors
///
/// Returns a [`HintError`] if a `pickWitness` hint is malformed (its target is
/// not an existential hypothesis) or clashes with an existing variable name.
pub fn apply_hints(ob: &Obligation, hints: &[Hint]) -> Result<HintedObligations, HintError> {
    let mut main = ob.clone();
    let mut side = Vec::new();
    for (i, hint) in hints.iter().enumerate() {
        match hint {
            Hint::Note(f) => {
                let side_ob = Obligation {
                    name: format!("{}::note_{}", ob.name, i),
                    defines: main.defines.clone(),
                    hypotheses: main.hypotheses.clone(),
                    goal: f.clone(),
                };
                side.push(side_ob);
                main.hypotheses.push(f.clone());
            }
            Hint::Assuming {
                hypothesis,
                conclusion,
            } => {
                let mut hyps = main.hypotheses.clone();
                hyps.push(hypothesis.clone());
                let side_ob = Obligation {
                    name: format!("{}::assuming_{}", ob.name, i),
                    defines: main.defines.clone(),
                    hypotheses: hyps,
                    goal: conclusion.clone(),
                };
                side.push(side_ob);
                main.hypotheses
                    .push(build::implies(hypothesis.clone(), conclusion.clone()));
            }
            Hint::PickWitness {
                witness,
                existential,
            } => {
                let (var, lo, hi, body) = match existential {
                    Term::ExistsInt { var, lo, hi, body } => (var, lo, hi, body),
                    other => return Err(HintError::NotAnExistential(other.to_string())),
                };
                if !main.hypotheses.contains(existential) {
                    return Err(HintError::MissingExistential(existential.to_string()));
                }
                if main.all_vars().contains_key(witness) {
                    return Err(HintError::WitnessNameClash(witness.clone()));
                }
                let w = build::var_int(witness);
                let mut subst = BTreeMap::new();
                subst.insert(var.clone(), w.clone());
                main.hypotheses.push(build::le((**lo).clone(), w.clone()));
                main.hypotheses.push(build::lt(w.clone(), (**hi).clone()));
                main.hypotheses.push(substitute(body, &subst));
            }
        }
    }
    Ok(HintedObligations {
        side_obligations: side,
        main,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite::FiniteModelProver;
    use crate::scope::Scope;
    use semcommute_logic::build::*;

    fn prover() -> FiniteModelProver {
        FiniteModelProver::new(Scope::small())
    }

    #[test]
    fn note_creates_side_obligation_and_augments_main() {
        let ob = Obligation::new("t")
            .define("s1", set_add(var_set("s"), var_elem("v")))
            .goal(member(var_elem("v"), var_set("s1")));
        let lemma = member(var_elem("v"), var_set("s1"));
        let hinted = apply_hints(&ob, &[Hint::Note(lemma.clone())]).unwrap();
        assert_eq!(hinted.side_obligations.len(), 1);
        assert_eq!(hinted.side_obligations[0].goal, lemma);
        assert!(hinted.main.hypotheses.contains(&lemma));
        // Side obligation and augmented main are both valid.
        assert!(prover().prove(&hinted.side_obligations[0]).is_valid());
        assert!(prover().prove(&hinted.main).is_valid());
    }

    #[test]
    fn assuming_adds_implication() {
        let ob = Obligation::new("t").goal(tru());
        let hinted = apply_hints(
            &ob,
            &[Hint::Assuming {
                hypothesis: member(var_elem("v"), var_set("s")),
                conclusion: gt(card(var_set("s")), int(0)),
            }],
        )
        .unwrap();
        assert_eq!(hinted.side_obligations.len(), 1);
        assert!(prover().prove(&hinted.side_obligations[0]).is_valid());
        assert!(matches!(
            hinted.main.hypotheses.last().unwrap(),
            Term::Implies(_, _)
        ));
    }

    #[test]
    fn pick_witness_skolemizes_existential() {
        let existential = exists_int(
            "i",
            int(0),
            seq_len(var_seq("q")),
            eq(seq_at(var_seq("q"), var_int("i")), var_elem("v")),
        );
        let ob = Obligation::new("t")
            .assume(existential.clone())
            .goal(seq_contains(var_seq("q"), var_elem("v")));
        let hinted = apply_hints(
            &ob,
            &[Hint::PickWitness {
                witness: "w".into(),
                existential,
            }],
        )
        .unwrap();
        assert!(hinted.side_obligations.is_empty());
        // The witness constraints are now available; the goal follows.
        assert!(prover().prove(&hinted.main).is_valid());
        assert!(hinted
            .main
            .hypotheses
            .iter()
            .any(|h| matches!(h, Term::Le(_, _))));
    }

    #[test]
    fn pick_witness_requires_existential_hypothesis() {
        let ob = Obligation::new("t").goal(tru());
        let err = apply_hints(
            &ob,
            &[Hint::PickWitness {
                witness: "w".into(),
                existential: exists_int("i", int(0), int(3), tru()),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, HintError::MissingExistential(_)));

        let err2 = apply_hints(
            &ob,
            &[Hint::PickWitness {
                witness: "w".into(),
                existential: tru(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err2, HintError::NotAnExistential(_)));
    }

    #[test]
    fn witness_name_clash_is_rejected() {
        let existential = exists_int("i", int(0), int(3), eq(var_int("i"), var_int("x")));
        let ob = Obligation::new("t").assume(existential.clone()).goal(tru());
        let err = apply_hints(
            &ob,
            &[Hint::PickWitness {
                witness: "x".into(),
                existential,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, HintError::WitnessNameClash(_)));
    }

    #[test]
    fn command_names_match_table_5_9() {
        assert_eq!(Hint::Note(tru()).command_name(), "note");
        assert_eq!(
            Hint::Assuming {
                hypothesis: tru(),
                conclusion: tru()
            }
            .command_name(),
            "assuming"
        );
        assert_eq!(
            Hint::PickWitness {
                witness: "w".into(),
                existential: tru()
            }
            .command_name(),
            "pickWitness"
        );
    }

    #[test]
    fn hints_display_like_jahob_commands() {
        let h = Hint::Note(member(var_elem("v"), var_set("s")));
        assert_eq!(h.to_string(), "note \"v : s\"");
    }
}
