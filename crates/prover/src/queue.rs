//! A work-stealing scheduler over proof obligations.
//!
//! The verification driver used to split the catalog statically: one thread
//! group per interface, each group chunking its conditions. On skewed
//! catalogs (ArrayList dominates the paper's wall-clock) that leaves three
//! groups idle while one finishes. This module replaces the static split
//! with a single flat work queue:
//!
//! * every submitted obligation is addressed by its **canonical hash**
//!   ([`Portfolio::canonical_key`]: the structural hash of the simplified
//!   obligation mixed with scope and configuration), and canonically
//!   identical submissions collapse into one *task* before any worker runs;
//! * tasks are distributed round-robin over per-worker deques; a worker pops
//!   from the front of its own deque and, when empty, **steals a batch**
//!   (half the victim's remaining tasks) from the back of another worker's
//!   deque, so a worker that drew cheap structural obligations immediately
//!   takes over part of a loaded worker's share;
//! * workers publish verdicts through the portfolio's sharded
//!   [`VerdictCache`](crate::portfolio::VerdictCache), keyed by the same
//!   canonical hash, so duplicate work
//!   is impossible even across scheduler runs sharing a cache;
//! * an optional [`ExitGuard`] per obligation group (the driver uses one per
//!   testing method) reproduces the sequential early-exit semantics: once
//!   the obligation at index `i` of a group fails, obligations of the same
//!   group at indices `> i` may be skipped — but never obligations at lower
//!   indices, so the group's reported verdict (the *first* failing
//!   obligation in program order) is exactly the one the sequential oracle
//!   would report.
//!
//! With `workers <= 1` the scheduler degenerates to an in-order, in-thread
//! loop over the deduplicated tasks — the reproducible sequential baseline
//! that the differential tests treat as the oracle.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::obligation::Obligation;
use crate::portfolio::Portfolio;
use crate::stats::ProofStats;
use crate::verdict::Verdict;

/// Early-exit flag shared by the obligations of one group (one generated
/// testing method, in the verification driver).
///
/// The sequential driver proves a method's obligations in order and stops at
/// the first failure. In a parallel run the group's obligations complete out
/// of order, so the guard tracks the *lowest* failing index instead: workers
/// skip obligations strictly above it, and because indices below the
/// current minimum are never skipped, the minimum converges to exactly the
/// index the sequential run would have stopped at.
#[derive(Debug, Default)]
pub struct ExitGuard {
    failed_at: AtomicU32,
}

impl ExitGuard {
    /// Creates a guard with no failure recorded.
    pub fn new() -> ExitGuard {
        ExitGuard {
            failed_at: AtomicU32::new(u32::MAX),
        }
    }

    /// Records that the obligation at `index` failed (keeps the minimum).
    pub fn fail(&self, index: u32) {
        self.failed_at.fetch_min(index, Ordering::SeqCst);
    }

    /// The lowest failing index recorded so far.
    pub fn failed_at(&self) -> Option<u32> {
        match self.failed_at.load(Ordering::SeqCst) {
            u32::MAX => None,
            i => Some(i),
        }
    }

    /// `true` when the obligation at `index` no longer needs proving: some
    /// obligation of the group at a strictly lower index already failed.
    pub fn skips(&self, index: u32) -> bool {
        self.failed_at.load(Ordering::SeqCst) < index
    }
}

/// One obligation submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledObligation {
    /// The obligation to prove.
    pub obligation: Obligation,
    /// Index into the portfolio slice given to [`prove_all_scheduled`] (the
    /// driver uses one portfolio per interface scope, all sharing one
    /// sharded cache).
    pub portfolio: usize,
    /// Early-exit group membership: the shared guard and this obligation's
    /// index within its group.
    pub guard: Option<(Arc<ExitGuard>, u32)>,
}

impl ScheduledObligation {
    /// Wraps an obligation with the default portfolio and no early-exit
    /// group.
    pub fn new(obligation: Obligation) -> ScheduledObligation {
        ScheduledObligation {
            obligation,
            portfolio: 0,
            guard: None,
        }
    }

    /// Selects the portfolio (by index) this obligation is proved with.
    pub fn with_portfolio(mut self, portfolio: usize) -> ScheduledObligation {
        self.portfolio = portfolio;
        self
    }

    /// Joins an early-exit group at the given index.
    pub fn with_guard(mut self, guard: Arc<ExitGuard>, index: u32) -> ScheduledObligation {
        self.guard = Some((guard, index));
        self
    }
}

/// Counters describing one scheduler run.
///
/// The accounting invariant — checked by the scheduler property tests — is
/// `proved + cache_hits + skipped == submitted`: every submitted obligation
/// is either proved (it was the first of its canonical hash and missed the
/// verdict cache), answered by dedup (a duplicate submission, or a verdict
/// already in the shared cache), or skipped by its early-exit guard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueReport {
    /// Obligations submitted.
    pub submitted: usize,
    /// Unique canonical hashes among the submissions.
    pub unique: usize,
    /// Obligations actually sent to the prover portfolio (cache misses).
    pub proved: u64,
    /// Submissions answered without proving: duplicates of an in-run task
    /// plus tasks whose verdict was already in the shared cache.
    pub cache_hits: u64,
    /// Submissions skipped because their early-exit guard had already failed
    /// at a lower index.
    pub skipped: u64,
    /// Successful steal operations (a batch moved between worker deques).
    pub steals: u64,
    /// Tasks moved by those steals.
    pub stolen_tasks: u64,
    /// Aggregated errors: `Unknown` verdict reasons and the non-fatal
    /// evaluation errors the provers surfaced through
    /// [`ProofStats::errors`], each prefixed with the obligation name.
    pub errors: Vec<String>,
}

/// The outcome of a scheduler run.
#[derive(Debug, Clone)]
pub struct QueueRun {
    /// One slot per submitted obligation, in submission order. `None` only
    /// for obligations skipped via their [`ExitGuard`].
    pub verdicts: Vec<Option<Verdict>>,
    /// Scheduler counters.
    pub report: QueueReport,
}

/// One submission's early-exit membership: its group guard and index.
type GuardRef = Option<(Arc<ExitGuard>, u32)>;

/// A deduplicated unit of work: the first submission with a given canonical
/// hash carries the obligation; later submissions only subscribe.
struct Task {
    key: u128,
    portfolio: usize,
    obligation: Obligation,
    /// `(submission index, early-exit membership)`, in submission order.
    subscribers: Vec<(usize, GuardRef)>,
}

impl Task {
    /// A task may be dropped only when *every* subscription is past its
    /// group's failure point; a hash shared between a failed group and a
    /// live one must still be proved for the live group.
    fn skippable(&self) -> bool {
        self.subscribers
            .iter()
            .all(|(_, guard)| matches!(guard, Some((g, i)) if g.skips(*i)))
    }
}

/// Proves a batch of obligations with one portfolio and `workers` stealing
/// workers. Convenience wrapper over [`prove_all_scheduled`]; since no
/// early-exit guards are involved every verdict is present.
pub fn prove_all(portfolio: &Portfolio, obligations: &[Obligation], workers: usize) -> QueueRun {
    let items = obligations
        .iter()
        .map(|ob| ScheduledObligation::new(ob.clone()))
        .collect();
    prove_all_scheduled(std::slice::from_ref(portfolio), items, workers)
}

/// Proves a batch of [`ScheduledObligation`]s on `workers` work-stealing
/// workers.
///
/// The returned verdicts are positionally aligned with `items`. The first
/// submission of each canonical hash receives the prover's verdict; later
/// submissions receive it as a dedup hit (zeroed work counters,
/// `cache_hits = 1`), mirroring what [`Portfolio::prove`] reports for a
/// cache hit — so accumulated statistics are identical to what a sequential
/// run over the same submissions would have accumulated.
///
/// # Panics
///
/// Panics if an item's `portfolio` index is out of bounds of `portfolios`.
pub fn prove_all_scheduled(
    portfolios: &[Portfolio],
    items: Vec<ScheduledObligation>,
    workers: usize,
) -> QueueRun {
    let submitted = items.len();
    let mut report = QueueReport {
        submitted,
        ..QueueReport::default()
    };

    // Dedup by canonical hash: the key of the simplified obligation under
    // its portfolio's scope and configuration. Keying runs on this thread's
    // arena, whose memo tables make repeated sub-DAGs cheap.
    let mut tasks: Vec<Task> = Vec::new();
    let mut by_key: HashMap<u128, usize> = HashMap::new();
    for (index, item) in items.into_iter().enumerate() {
        assert!(
            item.portfolio < portfolios.len(),
            "scheduled obligation references portfolio {} of {}",
            item.portfolio,
            portfolios.len()
        );
        let key = portfolios[item.portfolio].canonical_key(&item.obligation);
        match by_key.get(&key) {
            Some(&task_id) => tasks[task_id].subscribers.push((index, item.guard)),
            None => {
                by_key.insert(key, tasks.len());
                tasks.push(Task {
                    key,
                    portfolio: item.portfolio,
                    obligation: item.obligation,
                    subscribers: vec![(index, item.guard)],
                });
            }
        }
    }
    report.unique = tasks.len();

    let results: Vec<OnceLock<Verdict>> = (0..tasks.len()).map(|_| OnceLock::new()).collect();
    let proved = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let stolen_tasks = AtomicU64::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());

    let process = |task_id: usize, task: &Task| {
        if task.skippable() {
            return;
        }
        let portfolio = &portfolios[task.portfolio];
        let verdict = portfolio.prove_keyed(task.key, &task.obligation);
        if verdict.stats().cache_hits > 0 {
            cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            proved.fetch_add(1, Ordering::Relaxed);
        }
        if !verdict.is_valid() {
            for (_, guard) in &task.subscribers {
                if let Some((guard, index)) = guard {
                    guard.fail(*index);
                }
            }
        }
        let mut found: Vec<String> = verdict
            .stats()
            .errors
            .iter()
            .map(|e| format!("{}: {e}", task.obligation.name))
            .collect();
        if let Verdict::Unknown { reason, stats } = &verdict {
            if !stats.errors.iter().any(|e| e == reason) {
                found.push(format!("{}: {reason}", task.obligation.name));
            }
        }
        if !found.is_empty() {
            errors
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .extend(found);
        }
        let _ = results[task_id].set(verdict);
    };

    let workers = workers.max(1).min(tasks.len().max(1));
    if workers <= 1 {
        // The reproducible baseline: tasks run in submission order on the
        // calling thread. This is the oracle the differential tests compare
        // parallel runs against.
        for (task_id, task) in tasks.iter().enumerate() {
            process(task_id, task);
        }
    } else {
        // Seed the per-worker deques round-robin so every worker starts
        // with a cross-section of the catalog, then let emptied workers
        // steal batches from the back of loaded ones.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    (0..tasks.len())
                        .filter(|t| t % workers == w)
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (deques, tasks, process) = (&deques, &tasks, &process);
                let (steals, stolen_tasks) = (&steals, &stolen_tasks);
                scope.spawn(move || loop {
                    let next = deques[me]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .pop_front();
                    let task_id = match next {
                        Some(id) => id,
                        None => {
                            // Steal half of the first non-empty victim's
                            // deque (from the back, so the victim keeps the
                            // front it is about to pop).
                            let mut batch: VecDeque<usize> = VecDeque::new();
                            for offset in 1..workers {
                                let victim = (me + offset) % workers;
                                let mut v =
                                    deques[victim].lock().unwrap_or_else(|p| p.into_inner());
                                let take = v.len().div_ceil(2);
                                if take == 0 {
                                    continue;
                                }
                                for _ in 0..take {
                                    if let Some(id) = v.pop_back() {
                                        batch.push_front(id);
                                    }
                                }
                                break;
                            }
                            match batch.pop_front() {
                                // All deques were empty: no new tasks can
                                // appear (the queue is seeded up front), so
                                // this worker is done.
                                None => break,
                                Some(id) => {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    stolen_tasks
                                        .fetch_add(batch.len() as u64 + 1, Ordering::Relaxed);
                                    if !batch.is_empty() {
                                        deques[me]
                                            .lock()
                                            .unwrap_or_else(|p| p.into_inner())
                                            .append(&mut batch);
                                    }
                                    id
                                }
                            }
                        }
                    };
                    process(task_id, &tasks[task_id]);
                });
            }
        });
    }

    // Fan the per-task verdicts back out to the submissions. The first
    // subscriber gets the prover's verdict; duplicates get it as a dedup
    // hit, exactly as the sequential portfolio would have answered them.
    let mut verdicts: Vec<Option<Verdict>> = vec![None; submitted];
    let mut skipped = 0u64;
    let mut duplicate_hits = 0u64;
    for (task_id, task) in tasks.iter().enumerate() {
        match results[task_id].get() {
            None => skipped += task.subscribers.len() as u64,
            Some(verdict) => {
                duplicate_hits += task.subscribers.len() as u64 - 1;
                for (position, (submission, _)) in task.subscribers.iter().enumerate() {
                    verdicts[*submission] = Some(if position == 0 {
                        verdict.clone()
                    } else {
                        let mut hit = verdict.clone();
                        let prover = hit.stats().prover;
                        *hit.stats_mut() = ProofStats {
                            prover,
                            cache_hits: 1,
                            ..ProofStats::none()
                        };
                        hit
                    });
                }
            }
        }
    }
    report.proved = proved.into_inner();
    report.cache_hits = cache_hits.into_inner() + duplicate_hits;
    report.skipped = skipped;
    report.steals = steals.into_inner();
    report.stolen_tasks = stolen_tasks.into_inner();
    report.errors = errors.into_inner().unwrap_or_else(|p| p.into_inner());
    QueueRun { verdicts, report }
}
