//! A work-stealing scheduler over proof obligations.
//!
//! The verification driver used to split the catalog statically: one thread
//! group per interface, each group chunking its conditions. On skewed
//! catalogs (ArrayList dominates the paper's wall-clock) that leaves three
//! groups idle while one finishes. This module replaces the static split
//! with a single flat work queue:
//!
//! * every submitted obligation is addressed by its **canonical hash**
//!   ([`Portfolio::canonical_key`]: the structural hash of the simplified
//!   obligation mixed with scope and configuration). Keying — the intern +
//!   simplify pass over the obligation — happens **on the worker that pops
//!   the submission**, not on the submitting thread: an up-front serial
//!   keying pre-pass was the scheduler's Amdahl floor at high worker
//!   counts. Canonically identical submissions still collapse: the first
//!   worker to key a hash *claims* it in a sharded in-flight table (sharded
//!   exactly like the verdict cache) and proves it; workers that key the
//!   same hash while the claim is open *subscribe* and have the verdict
//!   fanned out to them when the claimant publishes; workers that key it
//!   after publication answer directly from the table — in every case the
//!   hash is proved at most once per run;
//! * submissions are distributed round-robin over per-worker deques; a
//!   worker pops from the front of its own deque and, when empty, **steals
//!   a batch** (half the victim's remaining submissions) from the back of
//!   another worker's deque, so a worker that drew cheap structural
//!   obligations immediately takes over part of a loaded worker's share;
//! * workers publish verdicts through the portfolio's sharded
//!   [`VerdictCache`](crate::portfolio::VerdictCache), keyed by the same
//!   canonical hash, so duplicate work
//!   is impossible even across scheduler runs sharing a cache — and because
//!   the evaluator backend is part of that hash (via
//!   [`Scope::fingerprint`](crate::Scope::fingerprint)), a cache shared
//!   between a bytecode and a tree-walk run never crosses verdicts between
//!   the two backends;
//! * an optional [`ExitGuard`] per obligation group (the driver uses one per
//!   testing method) reproduces the sequential early-exit semantics: once
//!   the obligation at index `i` of a group fails, obligations of the same
//!   group at indices `> i` may be skipped — but never obligations at lower
//!   indices, so the group's reported verdict (the *first* failing
//!   obligation in program order) is exactly the one the sequential oracle
//!   would report;
//! * obligations are **splittable**: when the claimed obligation needs a
//!   finite-model search whose unreduced candidate space exceeds the
//!   *split threshold*, the worker turns it into range tasks Cilk-style —
//!   it repeatedly pushes the back half of its remaining range onto the
//!   front of its own deque (where thieves steal from the back, so a thief
//!   takes the largest, farthest-away ranges) and scans the front chunk
//!   itself. All subranges of one obligation share a
//!   [`SearchShared`]: an `AtomicU64`
//!   minimum-position early-exit guard plus merged work counters, so the
//!   finalized verdict — including which counter-model is reported and
//!   which evaluation error decides an `Unknown` — is exactly the
//!   sequential scan's, at every worker count and threshold. The last
//!   subrange to complete finalizes, publishes, and fans out to
//!   subscribers. Without splitting, a handful of monolithic obligations
//!   (the ArrayList searches run millions of candidates) pin one worker
//!   each while the rest of the pool idles; with it, the largest obligation
//!   parallelizes like the rest of the catalog.
//!
//! With `workers <= 1` the scheduler degenerates to an in-order, in-thread
//! loop over the deduplicated tasks with splitting disabled (threshold = ∞)
//! — the reproducible sequential baseline that the differential tests treat
//! as the oracle.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::finite::{ModelSearch, SearchShared};
use crate::obligation::Obligation;
use crate::portfolio::{Portfolio, Started};
use crate::stats::ProofStats;
use crate::verdict::Verdict;

/// The default split threshold: obligations whose unreduced candidate space
/// is at most this many positions run as one task; larger searches are split
/// into stealable range chunks of roughly this size. Large enough that a
/// chunk amortizes its deque traffic and iterator resume by tens of
/// milliseconds of scanning, small enough that the catalog's monolithic
/// ArrayList obligations shatter into hundreds of stealable pieces.
pub const DEFAULT_SPLIT_THRESHOLD: u64 = 32_768;

/// The process-wide default split threshold:
/// [`DEFAULT_SPLIT_THRESHOLD`] unless the `SEMCOMMUTE_SPLIT` environment
/// variable holds a number when first consulted.
///
/// The env override exists for the CI small-split leg: running the whole
/// test suite with a much smaller threshold (every large search shatters
/// into dozens of range tasks) is the cheapest way to re-validate every
/// scheduler-dependent test against aggressive splitting; the differential
/// tests additionally pin single-position thresholds explicitly. Verdicts
/// must not depend on the threshold, so no fingerprint or cache key
/// includes it.
pub fn default_split_threshold() -> u64 {
    static DEFAULT: OnceLock<u64> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("SEMCOMMUTE_SPLIT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SPLIT_THRESHOLD)
    })
}

/// Early-exit flag shared by the obligations of one group (one generated
/// testing method, in the verification driver).
///
/// The sequential driver proves a method's obligations in order and stops at
/// the first failure. In a parallel run the group's obligations complete out
/// of order, so the guard tracks the *lowest* failing index instead: workers
/// skip obligations strictly above it, and because indices below the
/// current minimum are never skipped, the minimum converges to exactly the
/// index the sequential run would have stopped at.
#[derive(Debug, Default)]
pub struct ExitGuard {
    failed_at: AtomicU32,
}

impl ExitGuard {
    /// Creates a guard with no failure recorded.
    pub fn new() -> ExitGuard {
        ExitGuard {
            failed_at: AtomicU32::new(u32::MAX),
        }
    }

    /// Records that the obligation at `index` failed (keeps the minimum).
    pub fn fail(&self, index: u32) {
        self.failed_at.fetch_min(index, Ordering::SeqCst);
    }

    /// The lowest failing index recorded so far.
    pub fn failed_at(&self) -> Option<u32> {
        match self.failed_at.load(Ordering::SeqCst) {
            u32::MAX => None,
            i => Some(i),
        }
    }

    /// `true` when the obligation at `index` no longer needs proving: some
    /// obligation of the group at a strictly lower index already failed.
    pub fn skips(&self, index: u32) -> bool {
        self.failed_at.load(Ordering::SeqCst) < index
    }
}

/// One obligation submitted to the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledObligation {
    /// The obligation to prove.
    pub obligation: Obligation,
    /// Index into the portfolio slice given to [`prove_all_scheduled`] (the
    /// driver uses one portfolio per interface scope, all sharing one
    /// sharded cache).
    pub portfolio: usize,
    /// Early-exit group membership: the shared guard and this obligation's
    /// index within its group.
    pub guard: Option<(Arc<ExitGuard>, u32)>,
}

impl ScheduledObligation {
    /// Wraps an obligation with the default portfolio and no early-exit
    /// group.
    pub fn new(obligation: Obligation) -> ScheduledObligation {
        ScheduledObligation {
            obligation,
            portfolio: 0,
            guard: None,
        }
    }

    /// Selects the portfolio (by index) this obligation is proved with.
    pub fn with_portfolio(mut self, portfolio: usize) -> ScheduledObligation {
        self.portfolio = portfolio;
        self
    }

    /// Joins an early-exit group at the given index.
    pub fn with_guard(mut self, guard: Arc<ExitGuard>, index: u32) -> ScheduledObligation {
        self.guard = Some((guard, index));
        self
    }
}

/// Counters describing one scheduler run.
///
/// The accounting invariant — checked by the scheduler property tests — is
/// `proved + cache_hits + skipped == submitted`: every submitted obligation
/// is either proved (it was the first of its canonical hash and missed the
/// verdict cache), answered by dedup (a duplicate submission, or a verdict
/// already in the shared cache), or skipped by its early-exit guard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueReport {
    /// Obligations submitted.
    pub submitted: usize,
    /// Unique canonical hashes keyed during the run. Keying happens on the
    /// worker that pops a submission, so guard-skipped submissions (which
    /// are never keyed) do not contribute.
    pub unique: usize,
    /// Obligations actually sent to the prover portfolio (cache misses).
    pub proved: u64,
    /// Submissions answered without proving: duplicates deduplicated
    /// through the in-flight table (subscribed while a claim was open, or
    /// keyed after publication) plus claims whose verdict was already in
    /// the shared cache.
    pub cache_hits: u64,
    /// Submissions skipped because their early-exit guard had already failed
    /// at a lower index when the submission was popped.
    pub skipped: u64,
    /// Successful steal operations (a batch moved between worker deques).
    pub steals: u64,
    /// Tasks moved by those steals.
    pub stolen_tasks: u64,
    /// Split operations: each time a worker pushed the back half of a model
    /// search's remaining range onto its deque for thieves.
    pub splits: u64,
    /// Range chunks actually scanned (a search that never split counts
    /// zero; a split search counts one per executed chunk).
    pub subranges: u64,
    /// The longest claim-to-verdict wall-clock of any proved obligation —
    /// the skew metric: without splitting this is the wall of the largest
    /// monolithic model search (and the floor under the whole run's wall);
    /// with splitting it collapses toward the per-chunk cost.
    pub max_obligation_wall: Duration,
    /// The 99th-percentile claim-to-verdict wall-clock over proved
    /// obligations (equals the maximum for runs with under ~100 proofs).
    pub p99_obligation_wall: Duration,
    /// Aggregated errors: `Unknown` verdict reasons and the non-fatal
    /// evaluation errors the provers surfaced through
    /// [`ProofStats::errors`], each prefixed with the obligation name.
    pub errors: Vec<String>,
}

/// The outcome of a scheduler run.
#[derive(Debug, Clone)]
pub struct QueueRun {
    /// One slot per submitted obligation, in submission order. `None` only
    /// for obligations skipped via their [`ExitGuard`].
    pub verdicts: Vec<Option<Verdict>>,
    /// Scheduler counters.
    pub report: QueueReport,
}

/// One submission's early-exit membership: its group guard and index.
type GuardRef = Option<(Arc<ExitGuard>, u32)>;

/// The per-run dedup state of one canonical hash.
enum KeyState {
    /// A worker keyed this hash first and is proving it; the listed
    /// submissions keyed it while the claim was open and will have the
    /// verdict fanned out to them when the claimant publishes.
    Claimed(Vec<(usize, GuardRef)>),
    /// The verdict is published; later submissions with this hash answer
    /// directly as dedup hits.
    Done(Verdict),
}

/// The in-flight dedup table of one scheduler run: canonical hash →
/// [`KeyState`], sharded exactly like the verdict cache
/// ([`crate::portfolio::N_SHARDS`], same `key % N` split) so concurrent
/// workers claiming and publishing different hashes rarely contend.
///
/// Keying now happens on the workers, so two workers can key the same hash
/// concurrently; this table is what keeps each hash proved at most once per
/// run without ever blocking a worker — a loser of the claim race subscribes
/// and moves on to its next submission.
struct InFlight {
    shards: [Mutex<HashMap<u128, KeyState>>; crate::portfolio::N_SHARDS],
}

impl InFlight {
    fn new() -> InFlight {
        InFlight {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, KeyState>> {
        &self.shards[(key % self.shards.len() as u128) as usize]
    }

    /// Number of distinct canonical hashes keyed during the run.
    fn unique(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }
}

/// One unit of worker-loop work: a whole submitted obligation, or one range
/// of a split model search.
enum Task {
    /// Index into the submission list.
    Submission(usize),
    /// Scan unreduced positions `[lo, hi)` of a shared model search
    /// (splitting further when the range still exceeds the threshold).
    Range {
        /// The obligation-wide search state this range belongs to.
        search: Arc<ActiveSearch>,
        /// Inclusive start of the range.
        lo: u64,
        /// Exclusive end of the range.
        hi: u64,
    },
}

/// A claimed obligation whose finite-model search is running as range tasks.
struct ActiveSearch {
    /// The obligation's canonical hash (for publication).
    key: u128,
    /// Index of the portfolio that keyed the obligation.
    portfolio: usize,
    /// The claiming submission's index (receives the finalized verdict).
    submission: usize,
    /// The claiming submission's early-exit group membership.
    guard: GuardRef,
    /// The prepared search (compiled obligation + input space), scanned
    /// concurrently by range.
    search: ModelSearch,
    /// The minimum-position deciding-event guard and merged counters shared
    /// by every subrange.
    shared: SearchShared,
    /// Subranges queued or running; the worker that takes this to zero
    /// finalizes, publishes, and fans out the verdict.
    outstanding: AtomicU64,
}

/// Proves a batch of obligations with one portfolio and `workers` stealing
/// workers. Convenience wrapper over [`prove_all_scheduled`]; since no
/// early-exit guards are involved every verdict is present.
pub fn prove_all(portfolio: &Portfolio, obligations: &[Obligation], workers: usize) -> QueueRun {
    let items = obligations
        .iter()
        .map(|ob| ScheduledObligation::new(ob.clone()))
        .collect();
    prove_all_scheduled(std::slice::from_ref(portfolio), items, workers)
}

/// [`prove_all_scheduled_split`] at the process-default split threshold
/// ([`default_split_threshold`]).
pub fn prove_all_scheduled(
    portfolios: &[Portfolio],
    items: Vec<ScheduledObligation>,
    workers: usize,
) -> QueueRun {
    prove_all_scheduled_split(portfolios, items, workers, default_split_threshold())
}

/// Proves a batch of [`ScheduledObligation`]s on `workers` work-stealing
/// workers, splitting any claimed finite-model search whose unreduced
/// candidate space exceeds `split_threshold` positions into stealable range
/// tasks (`u64::MAX` disables splitting; values below 1 are clamped to 1).
///
/// The returned verdicts are positionally aligned with `items`. Each
/// submission is keyed (intern + simplify) by the worker that pops it; the
/// submission that claims a canonical hash first receives the prover's
/// verdict, and every other submission of that hash receives it as a dedup
/// hit (zeroed work counters, `cache_hits = 1`), mirroring what
/// [`Portfolio::prove`] reports for a cache hit — so accumulated statistics
/// are identical to what a sequential run over the same submissions would
/// have accumulated. A submission whose early-exit guard has already failed
/// at a lower index when it is popped is skipped outright (verdict `None`),
/// exactly as the sequential driver would have stopped before it. Verdicts
/// — including reported counter-models and deciding `Unknown` reasons — are
/// identical at every worker count and split threshold.
///
/// # Panics
///
/// Panics if an item's `portfolio` index is out of bounds of `portfolios`.
pub fn prove_all_scheduled_split(
    portfolios: &[Portfolio],
    items: Vec<ScheduledObligation>,
    workers: usize,
    split_threshold: u64,
) -> QueueRun {
    let submitted = items.len();
    let mut report = QueueReport {
        submitted,
        ..QueueReport::default()
    };
    for item in &items {
        assert!(
            item.portfolio < portfolios.len(),
            "scheduled obligation references portfolio {} of {}",
            item.portfolio,
            portfolios.len()
        );
    }

    // Workers are deliberately *not* clamped to the submission count: a
    // single submitted obligation can still fan out over every worker as
    // range tasks once its search splits.
    let workers = if submitted == 0 { 1 } else { workers.max(1) };
    // A chunk must make progress, so the smallest meaningful threshold is 1
    // (every position its own task); the sequential baseline never splits.
    let split_threshold = if workers <= 1 {
        u64::MAX
    } else {
        split_threshold.max(1)
    };

    let in_flight = InFlight::new();
    let results: Vec<OnceLock<Verdict>> = (0..submitted).map(|_| OnceLock::new()).collect();
    let proved = AtomicU64::new(0);
    let cache_hits = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let stolen_tasks = AtomicU64::new(0);
    let splits = AtomicU64::new(0);
    let subranges = AtomicU64::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    // Claim-to-verdict wall-clock of every proved obligation, for the skew
    // metrics (max / p99) that make imbalance visible in BENCH files.
    let obligation_walls: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    // Hands a submission its verdict, recording a failure in its early-exit
    // group first so racing group members observe it as soon as possible.
    let deliver = |index: usize, guard: &GuardRef, verdict: Verdict| {
        if !verdict.is_valid() {
            if let Some((guard, group_index)) = guard {
                guard.fail(*group_index);
            }
        }
        let _ = results[index].set(verdict);
    };

    // The answer a duplicate submission receives: the proved verdict with
    // zeroed work counters and `cache_hits = 1`, mirroring what
    // [`Portfolio::prove`] reports for a cache hit — so accumulated
    // statistics are identical to a sequential run over the submissions.
    let dedup_hit = |verdict: &Verdict| -> Verdict {
        let mut hit = verdict.clone();
        let prover = hit.stats().prover;
        *hit.stats_mut() = ProofStats {
            prover,
            cache_hits: 1,
            ..ProofStats::none()
        };
        hit
    };

    // Books a claimed obligation's verdict: counters, error aggregation,
    // publication through the in-flight table, delivery to the claiming
    // submission and fan-out to everyone who subscribed while it ran. Used
    // both for verdicts computed in one piece and for finalized split
    // searches.
    let complete = |key: u128, index: usize, guard: &GuardRef, verdict: Verdict, hit: bool| {
        if hit {
            cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            proved.fetch_add(1, Ordering::Relaxed);
            obligation_walls
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(verdict.stats().elapsed);
        }
        let name = &items[index].obligation.name;
        let mut found: Vec<String> = verdict
            .stats()
            .errors
            .iter()
            .map(|e| format!("{name}: {e}"))
            .collect();
        if let Verdict::Unknown { reason, stats } = &verdict {
            if !stats.errors.iter().any(|e| e == reason) {
                found.push(format!("{name}: {reason}"));
            }
        }
        if !found.is_empty() {
            errors
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .extend(found);
        }

        // Publish, collecting whoever subscribed while the proof ran.
        let subscribers = {
            let mut shard = in_flight
                .shard(key)
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            match shard.insert(key, KeyState::Done(verdict.clone())) {
                Some(KeyState::Claimed(subscribers)) => subscribers,
                // Unreachable: the claim was held exclusively.
                _ => Vec::new(),
            }
        };
        deliver(index, guard, verdict.clone());
        for (subscriber, guard) in subscribers {
            cache_hits.fetch_add(1, Ordering::Relaxed);
            deliver(subscriber, &guard, dedup_hit(&verdict));
        }
    };

    // Pops one submission: guard check, worker-side keying, claim/dedup.
    // Returns a search to be run as range tasks when the claimed obligation
    // is large enough to split; everything else completes inline.
    let process_submission =
        |index: usize, item: &ScheduledObligation| -> Option<Arc<ActiveSearch>> {
            if let Some((guard, group_index)) = &item.guard {
                if guard.skips(*group_index) {
                    // Skipped: not even keyed. The submission's verdict slot
                    // stays `None`, counted as `skipped` at fan-in.
                    return None;
                }
            }
            let portfolio = &portfolios[item.portfolio];
            // Keying — intern + simplify of the obligation — runs here, on the
            // popping worker's thread-local arena. The canonical hash does not
            // depend on arena ids, so every worker computes the same key.
            let key = portfolio.canonical_key(&item.obligation);
            let published = {
                let mut shard = in_flight
                    .shard(key)
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                match shard.get_mut(&key) {
                    None => {
                        shard.insert(key, KeyState::Claimed(Vec::new()));
                        None
                    }
                    Some(KeyState::Claimed(subscribers)) => {
                        subscribers.push((index, item.guard.clone()));
                        return None;
                    }
                    Some(KeyState::Done(verdict)) => Some(verdict.clone()),
                }
            };
            if let Some(verdict) = published {
                cache_hits.fetch_add(1, Ordering::Relaxed);
                deliver(index, &item.guard, dedup_hit(&verdict));
                return None;
            }

            // This worker holds the claim for `key`: prove it (the shared
            // verdict cache may still answer, e.g. from an earlier run).
            match portfolio.start_keyed(key, &item.obligation) {
                Started::Cached(verdict) => {
                    complete(key, index, &item.guard, verdict, true);
                    None
                }
                Started::Decided(verdict) => {
                    portfolio.publish_keyed(key, &verdict);
                    complete(key, index, &item.guard, verdict, false);
                    None
                }
                Started::Search(search) => {
                    if search.total() > split_threshold {
                        // Too large for one worker: hand back a shared search
                        // for the worker loop to scan as stealable range tasks.
                        Some(Arc::new(ActiveSearch {
                            key,
                            portfolio: item.portfolio,
                            submission: index,
                            guard: item.guard.clone(),
                            shared: SearchShared::new(),
                            outstanding: AtomicU64::new(1),
                            search: *search,
                        }))
                    } else {
                        let verdict = search.run();
                        portfolio.publish_keyed(key, &verdict);
                        complete(key, index, &item.guard, verdict, false);
                        None
                    }
                }
            }
        };

    // Retires one subrange; the worker that retires the last one assembles
    // the merged verdict (minimum-position deciding event, summed counters)
    // and publishes it exactly as an unsplit proof would have been.
    let finish_range = |active: &Arc<ActiveSearch>| {
        if active.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let verdict = active.search.finalize(&active.shared);
            portfolios[active.portfolio].publish_keyed(active.key, &verdict);
            complete(active.key, active.submission, &active.guard, verdict, false);
        }
    };

    if workers <= 1 {
        // The reproducible baseline: submissions run in order on the
        // calling thread (keying included, so the arena warm-up pattern
        // matches the pre-scheduler sequential driver), splitting disabled.
        // This is the oracle the differential tests compare parallel runs
        // against.
        for (index, item) in items.iter().enumerate() {
            let seeded = process_submission(index, item);
            debug_assert!(seeded.is_none(), "the sequential baseline never splits");
        }
    } else {
        // Seed the per-worker deques round-robin so every worker starts
        // with a cross-section of the catalog, then let emptied workers
        // steal batches from the back of loaded ones. `pending` counts
        // tasks queued or running; a worker only exits when it finds
        // nothing to steal *and* nothing is still running — a running
        // range task may yet split and repopulate the deques.
        let deques: Vec<Mutex<VecDeque<Task>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    (0..submitted)
                        .filter(|i| i % workers == w)
                        .map(Task::Submission)
                        .collect::<VecDeque<Task>>(),
                )
            })
            .collect();
        let pending = AtomicU64::new(submitted as u64);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let (deques, items, pending) = (&deques, &items, &pending);
                let (process_submission, finish_range) = (&process_submission, &finish_range);
                let (steals, stolen_tasks) = (&steals, &stolen_tasks);
                let (splits, subranges) = (&splits, &subranges);
                scope.spawn(move || {
                    // Scans `[lo, hi)` of a split search Cilk-style: while
                    // the range exceeds the threshold, push the back half
                    // onto the *front* of the own deque (the owner drains
                    // nearest-first for locality; thieves take from the
                    // back, so a thief grabs the largest, farthest range)
                    // and keep the front. The chunk scan shares the
                    // search's minimum-position guard, so racing chunks
                    // stop as soon as the verdict is decided to their left.
                    let run_chunk = |search: Arc<ActiveSearch>, lo: u64, mut hi: u64| {
                        while hi - lo > split_threshold {
                            let mid = lo + (hi - lo) / 2;
                            search.outstanding.fetch_add(1, Ordering::Relaxed);
                            pending.fetch_add(1, Ordering::Relaxed);
                            splits.fetch_add(1, Ordering::Relaxed);
                            deques[me]
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .push_front(Task::Range {
                                    search: search.clone(),
                                    lo: mid,
                                    hi,
                                });
                            hi = mid;
                        }
                        subranges.fetch_add(1, Ordering::Relaxed);
                        search.search.run_range(lo, hi, &search.shared);
                        finish_range(&search);
                    };
                    // Consecutive empty pop+steal rounds: yield at first,
                    // then back off to short sleeps so workers starved by a
                    // long-running unsplittable task don't burn their cores
                    // polling the deques.
                    let mut idle_rounds: u32 = 0;
                    loop {
                        let next = deques[me]
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .pop_front();
                        let task = match next {
                            Some(task) => task,
                            None => {
                                // Steal half of the first non-empty
                                // victim's deque (from the back, so the
                                // victim keeps the front it is about to
                                // pop).
                                let mut batch: VecDeque<Task> = VecDeque::new();
                                for offset in 1..workers {
                                    let victim = (me + offset) % workers;
                                    let mut v =
                                        deques[victim].lock().unwrap_or_else(|p| p.into_inner());
                                    let take = v.len().div_ceil(2);
                                    if take == 0 {
                                        continue;
                                    }
                                    for _ in 0..take {
                                        if let Some(task) = v.pop_back() {
                                            batch.push_front(task);
                                        }
                                    }
                                    break;
                                }
                                match batch.pop_front() {
                                    None => {
                                        if pending.load(Ordering::Acquire) == 0 {
                                            // Nothing queued, nothing
                                            // running: done.
                                            break;
                                        }
                                        // A running task may still split;
                                        // wait for work to appear — yield
                                        // briefly, then sleep (capped at
                                        // 1 ms so newly split ranges are
                                        // picked up promptly).
                                        idle_rounds = idle_rounds.saturating_add(1);
                                        if idle_rounds < 16 {
                                            std::thread::yield_now();
                                        } else {
                                            let exp = (idle_rounds - 16).min(4);
                                            std::thread::sleep(Duration::from_micros(62 << exp));
                                        }
                                        continue;
                                    }
                                    Some(task) => {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        stolen_tasks
                                            .fetch_add(batch.len() as u64 + 1, Ordering::Relaxed);
                                        if !batch.is_empty() {
                                            deques[me]
                                                .lock()
                                                .unwrap_or_else(|p| p.into_inner())
                                                .append(&mut batch);
                                        }
                                        task
                                    }
                                }
                            }
                        };
                        idle_rounds = 0;
                        match task {
                            Task::Submission(index) => {
                                if let Some(active) = process_submission(index, &items[index]) {
                                    let total = active.search.total();
                                    run_chunk(active, 0, total);
                                }
                            }
                            Task::Range { search, lo, hi } => run_chunk(search, lo, hi),
                        }
                        pending.fetch_sub(1, Ordering::Release);
                    }
                });
            }
        });
    }

    report.unique = in_flight.unique();
    let mut skipped = 0u64;
    let verdicts: Vec<Option<Verdict>> = results
        .into_iter()
        .map(|slot| {
            let verdict = slot.into_inner();
            if verdict.is_none() {
                skipped += 1;
            }
            verdict
        })
        .collect();
    report.proved = proved.into_inner();
    report.cache_hits = cache_hits.into_inner();
    report.skipped = skipped;
    report.steals = steals.into_inner();
    report.stolen_tasks = stolen_tasks.into_inner();
    report.splits = splits.into_inner();
    report.subranges = subranges.into_inner();
    let mut walls = obligation_walls
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    walls.sort_unstable();
    if let Some(&max) = walls.last() {
        report.max_obligation_wall = max;
        report.p99_obligation_wall = walls[((walls.len() * 99) / 100).min(walls.len() - 1)];
    }
    report.errors = errors.into_inner().unwrap_or_else(|p| p.into_inner());
    QueueRun { verdicts, report }
}
