//! Enumeration of candidate models over the relevant universe of an
//! obligation.
//!
//! The finite-model prover searches for a counter-model of an obligation by
//! enumerating assignments to the obligation's *input* variables only (defined
//! variables are computed by evaluation). The enumeration is symmetry-reduced:
//! element-sorted variables are assigned *partition patterns* (which variables
//! are equal, which are `null`) rather than raw identities, because the logic
//! cannot distinguish isomorphic renamings of the element universe.
//!
//! For each partition pattern the *universe* is the set of element classes
//! named by the pattern plus [`Scope::elem_padding`] anonymous elements;
//! collection-valued inputs are enumerated over that universe, bounded by
//! [`Scope::max_collection_entries`] / [`Scope::max_seq_len`].
//!
//! With [`Scope::orbit`] set, the padding elements themselves are
//! symmetry-reduced too: the anonymous elements are interchangeable, so
//! tuples of collection values are enumerated only in orbit-canonical form
//! under permutations of the padding block, with whole odometer subtrees
//! pruned as soon as a prefix is provably non-canonical (see
//! [`crate::orbit`]). The number of candidates skipped this way is reported
//! through [`SpaceIter::orbits_pruned`].

use std::collections::BTreeMap;

use semcommute_logic::{ElemId, Model, PMap, PSeq, PSet, Sort, Value, NULL_ELEM};

use crate::obligation::Obligation;
use crate::orbit::{padding_block, OrbitTables};
use crate::scope::Scope;

/// The search space of candidate models for one obligation.
#[derive(Debug, Clone)]
pub struct InputSpace {
    scope: Scope,
    elem_vars: Vec<String>,
    other_vars: Vec<(String, Sort)>,
}

impl InputSpace {
    /// Builds the input space for an explicit set of variables.
    pub fn new(vars: &BTreeMap<String, Sort>, scope: Scope) -> InputSpace {
        let mut elem_vars = Vec::new();
        let mut other_vars = Vec::new();
        for (name, sort) in vars {
            if *sort == Sort::Elem {
                elem_vars.push(name.clone());
            } else {
                other_vars.push((name.clone(), *sort));
            }
        }
        InputSpace {
            scope,
            elem_vars,
            other_vars,
        }
    }

    /// Builds the input space of an obligation (its input variables under the
    /// given scope).
    pub fn from_obligation(ob: &Obligation, scope: Scope) -> InputSpace {
        InputSpace::new(&ob.input_vars(), scope)
    }

    /// The scope used by this space.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The element-sorted input variables (assigned via partition patterns).
    pub fn elem_vars(&self) -> &[String] {
        &self.elem_vars
    }

    /// The non-element input variables.
    pub fn other_vars(&self) -> &[(String, Sort)] {
        &self.other_vars
    }

    /// The enumeration order of all input variables: element variables first,
    /// then the rest — the order in which [`SpaceIter::next_values`] emits
    /// values, and the slot order the compiled prover path binds them to.
    pub fn var_order(&self) -> Vec<String> {
        self.elem_vars
            .iter()
            .cloned()
            .chain(self.other_vars.iter().map(|(n, _)| n.clone()))
            .collect()
    }

    /// All element-variable partition patterns: for each variable, either
    /// `null` or an equivalence-class representative. Patterns are generated
    /// as restricted-growth strings so that isomorphic assignments appear
    /// exactly once.
    fn elem_assignments(&self) -> Vec<Vec<ElemId>> {
        let n = self.elem_vars.len();
        let mut out = Vec::new();
        // assignment[i] = 0 means null, k >= 1 means class k.
        let mut current = vec![0u32; n];
        fn rec(i: usize, max_class: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<ElemId>>) {
            if i == current.len() {
                out.push(
                    current
                        .iter()
                        .map(|&c| if c == 0 { NULL_ELEM } else { ElemId(c) })
                        .collect(),
                );
                return;
            }
            for choice in 0..=(max_class + 1) {
                current[i] = choice;
                let new_max = max_class.max(choice);
                rec(i + 1, new_max, current, out);
            }
        }
        rec(0, 0, &mut current, &mut out);
        out
    }

    /// The largest element class named by an assignment (0 when every
    /// variable is `null` or there are none). Classes `1..=max_class` are
    /// pinned by element variables; everything above them in the universe is
    /// anonymous padding.
    fn max_class(assignment: &[ElemId]) -> u32 {
        assignment
            .iter()
            .filter(|e| !e.is_null())
            .map(|e| e.0)
            .max()
            .unwrap_or(0)
    }

    /// The collection universe for a given element assignment: the classes
    /// used by the assignment plus `elem_padding` anonymous elements.
    fn universe(&self, assignment: &[ElemId]) -> Vec<ElemId> {
        let total = InputSpace::max_class(assignment) as usize + self.scope.elem_padding;
        (1..=total as u32).map(ElemId).collect()
    }

    /// Candidate values for a non-element variable over a given universe.
    fn candidates(&self, sort: Sort, universe: &[ElemId]) -> Vec<Value> {
        match sort {
            Sort::Bool => vec![Value::Bool(false), Value::Bool(true)],
            Sort::Int => (self.scope.int_min..=self.scope.int_max)
                .map(Value::Int)
                .collect(),
            Sort::Elem => universe
                .iter()
                .map(|&e| Value::Elem(e))
                .chain(std::iter::once(Value::Elem(NULL_ELEM)))
                .collect(),
            Sort::Set => subsets_up_to(universe, self.scope.max_collection_entries)
                .into_iter()
                .map(Value::Set)
                .collect(),
            Sort::Map => {
                let mut out = Vec::new();
                for keys in subsets_up_to(universe, self.scope.max_collection_entries) {
                    let mut partial: Vec<PMap> = vec![PMap::new()];
                    for k in keys.iter() {
                        let mut next = Vec::new();
                        for m in &partial {
                            for &v in universe {
                                // Shared prefix + one delta: the clone is an
                                // O(1) handle copy, the insert copies once.
                                let mut m2 = m.clone();
                                m2.insert(*k, v);
                                next.push(m2);
                            }
                        }
                        partial = next;
                    }
                    out.extend(partial.into_iter().map(Value::Map));
                }
                out
            }
            Sort::Seq => {
                let mut out: Vec<PSeq> = vec![PSeq::new()];
                let mut frontier: Vec<PSeq> = vec![PSeq::new()];
                for _ in 0..self.scope.max_seq_len {
                    let mut next = Vec::new();
                    for s in &frontier {
                        for &e in universe {
                            let mut s2 = s.clone();
                            s2.push(e);
                            next.push(s2);
                        }
                    }
                    out.extend(next.iter().cloned());
                    frontier = next;
                }
                out.into_iter().map(Value::Seq).collect()
            }
        }
    }

    /// An estimate of the number of candidate models (used for reporting and
    /// for the `max_models` budget check). The estimate counts the
    /// *unreduced* enumeration; with [`Scope::orbit`] set the actual
    /// traversal emits fewer candidates, so the budget check stays
    /// conservative.
    pub fn estimated_size(&self) -> u128 {
        let mut total: u128 = 0;
        for assignment in self.elem_assignments() {
            let universe = self.universe(&assignment);
            let mut per: u128 = 1;
            for (_, sort) in &self.other_vars {
                per = per.saturating_mul(self.candidates(*sort, &universe).len() as u128);
            }
            total = total.saturating_add(per);
        }
        total.max(1)
    }

    /// Iterates over all candidate models in the space.
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter::new(self)
    }
}

/// Generates all subsets of `universe` with at most `max_len` elements.
///
/// Each subset is a persistent [`PSet`] built by cloning its parent subset (an
/// O(1) shared-prefix handle copy) and inserting one element — the deep copy
/// happens once per *generated* candidate, and downstream per-candidate use
/// ([`SpaceIter::next_values`]) only ever clones handles.
fn subsets_up_to(universe: &[ElemId], max_len: usize) -> Vec<PSet> {
    let mut out: Vec<PSet> = vec![PSet::new()];
    for &e in universe {
        let mut additions = Vec::new();
        for s in &out {
            if s.len() < max_len {
                let mut s2 = s.clone();
                s2.insert(e);
                additions.push(s2);
            }
        }
        out.extend(additions);
    }
    out
}

/// Iterator over the candidate models of an [`InputSpace`].
///
/// With [`Scope::orbit`] set, the iterator emits only orbit-canonical
/// candidates (see [`crate::orbit`]): non-canonical tuples are stepped over
/// — pruning the whole odometer subtree of a doomed prefix at once — before
/// a position is ever observable through [`SpaceIter::next_values`],
/// `next()`, or [`SpaceIter::skip_positions`]. Position indices therefore
/// count *canonical* candidates, which is what keeps the sharded search's
/// strided split identical at every thread count.
pub struct SpaceIter<'a> {
    space: &'a InputSpace,
    elem_assignments: Vec<Vec<ElemId>>,
    elem_index: usize,
    /// Candidate values for each non-element variable under the current
    /// element assignment. In orbit mode the collection-valued lists are
    /// sorted ascending, so index order is value order.
    candidates: Vec<Vec<Value>>,
    /// Odometer positions into `candidates`.
    positions: Vec<usize>,
    exhausted_current: bool,
    /// Orbit pruning tables for the current element assignment (`None` when
    /// orbit reduction is off or has nothing to act on).
    orbit: Option<OrbitTables>,
    /// Candidates skipped as non-canonical so far.
    orbits_pruned: u64,
}

impl<'a> SpaceIter<'a> {
    fn new(space: &'a InputSpace) -> SpaceIter<'a> {
        let elem_assignments = space.elem_assignments();
        let mut it = SpaceIter {
            space,
            elem_assignments,
            elem_index: 0,
            candidates: Vec::new(),
            positions: Vec::new(),
            exhausted_current: true,
            orbit: None,
            orbits_pruned: 0,
        };
        it.load_current();
        it.settle();
        it.seek_canonical();
        it
    }

    /// Number of candidates the orbit reduction has skipped as
    /// non-canonical so far. Always zero with [`Scope::orbit`] off; after a
    /// full traversal, the unreduced enumeration size equals the canonical
    /// count plus this.
    pub fn orbits_pruned(&self) -> u64 {
        self.orbits_pruned
    }

    fn done(&self) -> bool {
        self.elem_index >= self.elem_assignments.len()
    }

    /// Skips past element assignments for which some variable has no
    /// candidate values (cannot happen with the current sorts, but handled
    /// defensively), so that `current_model` is valid whenever `!done()`.
    fn settle(&mut self) {
        while !self.done() && self.exhausted_current {
            self.elem_index += 1;
            self.load_current();
        }
    }

    /// Moves to the next candidate position without building a model. The
    /// parallel prover uses this to stride its shard through the space:
    /// skipping a position costs an odometer increment instead of a full
    /// `Model` allocation.
    pub fn skip_positions(&mut self, n: usize) {
        for _ in 0..n {
            if self.done() {
                return;
            }
            self.advance();
        }
    }

    /// Writes the current candidate's values into `buf` in
    /// [`InputSpace::var_order`] order and advances; returns `false` when the
    /// space is exhausted. This is the allocation-lean counterpart of
    /// `next()` used by the prover's compiled evaluation path: no names, no
    /// `Model` map — just the values.
    pub fn next_values(&mut self, buf: &mut Vec<Value>) -> bool {
        if self.done() {
            return false;
        }
        buf.clear();
        for v in &self.elem_assignments[self.elem_index] {
            buf.push(Value::Elem(*v));
        }
        for (cands, &pos) in self.candidates.iter().zip(&self.positions) {
            buf.push(cands[pos].clone());
        }
        self.advance();
        true
    }

    fn load_current(&mut self) {
        if self.elem_index >= self.elem_assignments.len() {
            return;
        }
        let assignment = &self.elem_assignments[self.elem_index];
        let universe = self.space.universe(assignment);
        self.candidates = self
            .space
            .other_vars
            .iter()
            .map(|(_, sort)| self.space.candidates(*sort, &universe))
            .collect();
        self.orbit = None;
        if self.space.scope.orbit {
            let sorts: Vec<Sort> = self.space.other_vars.iter().map(|(_, s)| *s).collect();
            let block = padding_block(
                InputSpace::max_class(assignment),
                self.space.scope.elem_padding,
            );
            if block.len() >= 2 {
                // Sort the collection-valued candidate lists so the orbit
                // tables can compare candidates by index. Only done when a
                // reduction can actually happen: with a trivial block the
                // enumeration order stays byte-identical to orbit-off.
                for (list, sort) in self.candidates.iter_mut().zip(&sorts) {
                    if matches!(sort, Sort::Set | Sort::Map | Sort::Seq) {
                        list.sort();
                    }
                }
                self.orbit = OrbitTables::build(&self.candidates, &sorts, block);
            }
        }
        self.positions = vec![0; self.candidates.len()];
        self.exhausted_current = self.candidates.iter().any(|c| c.is_empty());
    }

    fn current_model(&self) -> Model {
        let mut m = Model::new();
        let assignment = &self.elem_assignments[self.elem_index];
        for (name, value) in self.space.elem_vars.iter().zip(assignment) {
            m.insert(name.clone(), Value::Elem(*value));
        }
        for ((name, _), (cands, &pos)) in self
            .space
            .other_vars
            .iter()
            .zip(self.candidates.iter().zip(&self.positions))
        {
            m.insert(name.clone(), cands[pos].clone());
        }
        m
    }

    fn advance(&mut self) {
        match self.positions.len() {
            0 => self.next_assignment(),
            n => self.bump(n - 1),
        }
        self.seek_canonical();
    }

    /// Advances the odometer treating `j` as the least-significant digit:
    /// positions above `j` reset to zero, positions `0..=j` carry; on
    /// overflow (or when there is no odometer at all) moves to the next
    /// element assignment. Bumping at `j < len - 1` is how the orbit
    /// reduction skips the whole subtree of a non-canonical prefix.
    fn bump(&mut self, j: usize) {
        for i in (j + 1)..self.positions.len() {
            self.positions[i] = 0;
        }
        for i in (0..=j).rev() {
            self.positions[i] += 1;
            if self.positions[i] < self.candidates[i].len() {
                return;
            }
            self.positions[i] = 0;
        }
        self.next_assignment();
    }

    fn next_assignment(&mut self) {
        self.elem_index += 1;
        self.load_current();
        self.settle();
    }

    /// Steps forward until the current candidate is orbit-canonical (no-op
    /// when orbit reduction is off or trivial). Every skipped candidate is
    /// counted into `orbits_pruned`; a non-canonical *prefix* prunes its
    /// whole subtree in one bump.
    ///
    /// The subtree accounting relies on an invariant of the enumeration
    /// order: whenever a violation is decided at slot `j`, every position
    /// above `j` is zero — the previously emitted candidate was canonical
    /// (or the previous prune already bumped at `>= j`), so a strictly-less
    /// prefix can only have appeared at or above the slot that last
    /// changed, below which all positions were just reset.
    fn seek_canonical(&mut self) {
        while !self.done() {
            let Some(tables) = &self.orbit else { return };
            let Some(j) = tables.violation(&self.positions) else {
                return;
            };
            debug_assert!(self.positions[j + 1..].iter().all(|&p| p == 0));
            let subtree: u64 = self.candidates[j + 1..]
                .iter()
                .fold(1u64, |acc, c| acc.saturating_mul(c.len() as u64));
            self.orbits_pruned += subtree;
            self.bump(j);
        }
    }
}

impl Iterator for SpaceIter<'_> {
    type Item = Model;

    fn next(&mut self) -> Option<Model> {
        if self.done() {
            return None;
        }
        let model = self.current_model();
        self.advance();
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn vars(pairs: &[(&str, Sort)]) -> BTreeMap<String, Sort> {
        pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect()
    }

    #[test]
    fn empty_space_yields_one_model() {
        let space = InputSpace::new(&BTreeMap::new(), Scope::small());
        let models: Vec<Model> = space.iter().collect();
        assert_eq!(models.len(), 1);
        assert!(models[0].is_empty());
    }

    #[test]
    fn single_bool_var_yields_two_models() {
        let space = InputSpace::new(&vars(&[("b", Sort::Bool)]), Scope::small());
        assert_eq!(space.iter().count(), 2);
        assert_eq!(space.estimated_size(), 2);
    }

    #[test]
    fn elem_vars_are_symmetry_reduced() {
        // Two element variables: null/null, null/c1, c1/null, c1=c1, c1!=c2.
        let space = InputSpace::new(
            &vars(&[("a", Sort::Elem), ("b", Sort::Elem)]),
            Scope::small(),
        );
        let models: Vec<Model> = space.iter().collect();
        assert_eq!(models.len(), 5);
        // At least one model has a == b != null and one has a != b.
        let same = models
            .iter()
            .any(|m| m.get("a") == m.get("b") && m.get("a").unwrap().as_elem() != Some(NULL_ELEM));
        let diff = models.iter().any(|m| {
            m.get("a") != m.get("b")
                && m.get("a").unwrap().as_elem() != Some(NULL_ELEM)
                && m.get("b").unwrap().as_elem() != Some(NULL_ELEM)
        });
        assert!(same && diff);
    }

    #[test]
    fn set_candidates_cover_membership_patterns() {
        let space = InputSpace::new(
            &vars(&[("v", Sort::Elem), ("s", Sort::Set)]),
            Scope::small(),
        );
        let models: Vec<Model> = space.iter().collect();
        // There is a model where v is in s and one where it is not.
        let member = models.iter().any(|m| {
            let v = m.get("v").unwrap().as_elem().unwrap();
            !v.is_null() && m.get("s").unwrap().as_set().unwrap().contains(&v)
        });
        let non_member = models.iter().any(|m| {
            let v = m.get("v").unwrap().as_elem().unwrap();
            !v.is_null() && !m.get("s").unwrap().as_set().unwrap().contains(&v)
        });
        assert!(member && non_member);
    }

    #[test]
    fn map_candidates_are_bounded() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("m", Sort::Map)]), scope.clone());
        for model in space.iter() {
            let m = model.get("m").unwrap().as_map().unwrap();
            assert!(m.len() <= scope.max_collection_entries);
        }
    }

    #[test]
    fn seq_candidates_are_bounded() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("q", Sort::Seq)]), scope.clone());
        let mut max_len = 0;
        for model in space.iter() {
            max_len = max_len.max(model.get("q").unwrap().as_seq().unwrap().len());
        }
        assert_eq!(max_len, scope.max_seq_len);
    }

    #[test]
    fn estimated_size_matches_iteration_for_small_spaces() {
        let space = InputSpace::new(
            &vars(&[("v", Sort::Elem), ("b", Sort::Bool), ("i", Sort::Int)]),
            Scope::small(),
        );
        assert_eq!(space.estimated_size(), space.iter().count() as u128);
    }

    #[test]
    fn from_obligation_uses_input_vars_only() {
        let ob = Obligation::new("t")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let space = InputSpace::from_obligation(&ob, Scope::small());
        assert_eq!(space.elem_vars(), &["v".to_string()]);
        assert_eq!(space.other_vars().len(), 1);
        assert_eq!(space.other_vars()[0].0, "s");
    }

    #[test]
    fn orbit_enumeration_emits_exactly_the_canonical_candidates() {
        // One set variable, no element variables, two padding elements: the
        // unreduced candidates are the subsets of {o1, o2}; the swap o1<->o2
        // identifies {o1} with {o2}, so exactly one of them is emitted.
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            ..Scope::small()
        };
        let off = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.clone().with_orbit(false));
        let on = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.clone().with_orbit(true));
        assert_eq!(off.iter().count(), 4);
        let mut it = on.iter();
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.orbits_pruned(), 1);

        // Joint canonicalization over two set slots: 16 unreduced tuples
        // collapse to (16 + 4 fixed points) / 2 = 10 orbits.
        let off2 = InputSpace::new(
            &vars(&[("s", Sort::Set), ("t", Sort::Set)]),
            scope.clone().with_orbit(false),
        );
        let on2 = InputSpace::new(
            &vars(&[("s", Sort::Set), ("t", Sort::Set)]),
            scope.with_orbit(true),
        );
        assert_eq!(off2.iter().count(), 16);
        let mut it = on2.iter();
        assert_eq!(it.by_ref().count(), 10);
        assert_eq!(it.orbits_pruned(), 6);
    }

    #[test]
    fn every_unreduced_candidate_is_reachable_from_a_canonical_one() {
        use crate::orbit::block_permutations;
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            max_seq_len: 2,
            ..Scope::small()
        };
        let vars = vars(&[("v", Sort::Elem), ("q", Sort::Seq), ("s", Sort::Set)]);
        let canonical: Vec<Model> = InputSpace::new(&vars, scope.clone().with_orbit(true))
            .iter()
            .collect();
        let space_off = InputSpace::new(&vars, scope.with_orbit(false));
        for model in space_off.iter() {
            let max_class = model
                .get("v")
                .and_then(|v| v.as_elem())
                .filter(|e| !e.is_null())
                .map_or(0, |e| e.0);
            let block = crate::orbit::padding_block(max_class, 2);
            let reachable = block_permutations(block).iter().any(|perm| {
                let image = Model::from_bindings(
                    model
                        .iter()
                        .map(|(name, value)| (name.to_string(), perm.apply_value(value))),
                );
                canonical.contains(&image)
            });
            assert!(reachable, "no canonical representative for {model}");
        }
    }

    #[test]
    fn orbit_off_counts_unreduced_candidates_and_prunes_nothing() {
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            ..Scope::small()
        };
        let space = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.with_orbit(false));
        let mut it = space.iter();
        let mut n = 0;
        let mut buf = Vec::new();
        while it.next_values(&mut buf) {
            n += 1;
        }
        assert_eq!(n, 4);
        assert_eq!(it.orbits_pruned(), 0);
    }

    #[test]
    fn skip_positions_strides_over_canonical_candidates() {
        // The sharded prover strides worker w through canonical positions
        // w, w+n, ...; collecting the strides of every worker must
        // partition exactly the canonical enumeration.
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            max_seq_len: 2,
            ..Scope::small()
        };
        let vars = vars(&[("q", Sort::Seq), ("s", Sort::Set)]);
        let space = InputSpace::new(&vars, scope.with_orbit(true));
        let all: Vec<Model> = space.iter().collect();
        for threads in [2, 3] {
            let mut sharded: Vec<Vec<Model>> = Vec::new();
            for worker in 0..threads {
                let mut it = space.iter();
                it.skip_positions(worker);
                let mut mine = Vec::new();
                while let Some(m) = it.next() {
                    mine.push(m);
                    it.skip_positions(threads - 1);
                }
                sharded.push(mine);
            }
            let mut merged = Vec::new();
            let mut cursors = vec![0usize; threads];
            for i in 0..all.len() {
                let w = i % threads;
                merged.push(sharded[w][cursors[w]].clone());
                cursors[w] += 1;
            }
            assert_eq!(merged, all, "{threads} shards must tile the space");
        }
    }

    #[test]
    fn int_candidates_respect_scope_bounds() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("i", Sort::Int)]), scope.clone());
        for model in space.iter() {
            let i = model.get("i").unwrap().as_int().unwrap();
            assert!(i >= scope.int_min && i <= scope.int_max);
        }
    }
}
