//! Enumeration of candidate models over the relevant universe of an
//! obligation.
//!
//! The finite-model prover searches for a counter-model of an obligation by
//! enumerating assignments to the obligation's *input* variables only (defined
//! variables are computed by evaluation). The enumeration is symmetry-reduced:
//! element-sorted variables are assigned *partition patterns* (which variables
//! are equal, which are `null`) rather than raw identities, because the logic
//! cannot distinguish isomorphic renamings of the element universe.
//!
//! For each partition pattern the *universe* is the set of element classes
//! named by the pattern plus [`Scope::elem_padding`] anonymous elements;
//! collection-valued inputs are enumerated over that universe, bounded by
//! [`Scope::max_collection_entries`] / [`Scope::max_seq_len`].
//!
//! With [`Scope::orbit`] set, the padding elements themselves are
//! symmetry-reduced too: the anonymous elements are interchangeable, so
//! tuples of collection values are enumerated only in orbit-canonical form
//! under permutations of the padding block, with whole odometer subtrees
//! pruned as soon as a prefix is provably non-canonical (see
//! [`crate::orbit`]). The number of candidates skipped this way is reported
//! through [`SpaceIter::orbits_pruned`].

use std::collections::BTreeMap;

use semcommute_logic::{ElemId, Model, PMap, PSeq, PSet, Sort, Value, NULL_ELEM};

use crate::obligation::Obligation;
use crate::orbit::{padding_block, OrbitTables};
use crate::scope::Scope;

/// The search space of candidate models for one obligation.
#[derive(Debug, Clone)]
pub struct InputSpace {
    scope: Scope,
    elem_vars: Vec<String>,
    other_vars: Vec<(String, Sort)>,
}

impl InputSpace {
    /// Builds the input space for an explicit set of variables.
    pub fn new(vars: &BTreeMap<String, Sort>, scope: Scope) -> InputSpace {
        let mut elem_vars = Vec::new();
        let mut other_vars = Vec::new();
        for (name, sort) in vars {
            if *sort == Sort::Elem {
                elem_vars.push(name.clone());
            } else {
                other_vars.push((name.clone(), *sort));
            }
        }
        InputSpace {
            scope,
            elem_vars,
            other_vars,
        }
    }

    /// Builds the input space of an obligation (its input variables under the
    /// given scope).
    pub fn from_obligation(ob: &Obligation, scope: Scope) -> InputSpace {
        InputSpace::new(&ob.input_vars(), scope)
    }

    /// The scope used by this space.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// The element-sorted input variables (assigned via partition patterns).
    pub fn elem_vars(&self) -> &[String] {
        &self.elem_vars
    }

    /// The non-element input variables.
    pub fn other_vars(&self) -> &[(String, Sort)] {
        &self.other_vars
    }

    /// The enumeration order of all input variables: element variables first,
    /// then the rest — the order in which [`SpaceIter::next_values`] emits
    /// values, and the slot order the compiled prover path binds them to.
    pub fn var_order(&self) -> Vec<String> {
        self.elem_vars
            .iter()
            .cloned()
            .chain(self.other_vars.iter().map(|(n, _)| n.clone()))
            .collect()
    }

    /// All element-variable partition patterns: for each variable, either
    /// `null` or an equivalence-class representative. Patterns are generated
    /// as restricted-growth strings so that isomorphic assignments appear
    /// exactly once.
    fn elem_assignments(&self) -> Vec<Vec<ElemId>> {
        let n = self.elem_vars.len();
        let mut out = Vec::new();
        // assignment[i] = 0 means null, k >= 1 means class k.
        let mut current = vec![0u32; n];
        fn rec(i: usize, max_class: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<ElemId>>) {
            if i == current.len() {
                out.push(
                    current
                        .iter()
                        .map(|&c| if c == 0 { NULL_ELEM } else { ElemId(c) })
                        .collect(),
                );
                return;
            }
            for choice in 0..=(max_class + 1) {
                current[i] = choice;
                let new_max = max_class.max(choice);
                rec(i + 1, new_max, current, out);
            }
        }
        rec(0, 0, &mut current, &mut out);
        out
    }

    /// The largest element class named by an assignment (0 when every
    /// variable is `null` or there are none). Classes `1..=max_class` are
    /// pinned by element variables; everything above them in the universe is
    /// anonymous padding.
    fn max_class(assignment: &[ElemId]) -> u32 {
        assignment
            .iter()
            .filter(|e| !e.is_null())
            .map(|e| e.0)
            .max()
            .unwrap_or(0)
    }

    /// The collection universe for a given element assignment: the classes
    /// used by the assignment plus `elem_padding` anonymous elements.
    fn universe(&self, assignment: &[ElemId]) -> Vec<ElemId> {
        let total = InputSpace::max_class(assignment) as usize + self.scope.elem_padding;
        (1..=total as u32).map(ElemId).collect()
    }

    /// Candidate values for a non-element variable over a given universe.
    fn candidates(&self, sort: Sort, universe: &[ElemId]) -> Vec<Value> {
        match sort {
            Sort::Bool => vec![Value::Bool(false), Value::Bool(true)],
            Sort::Int => (self.scope.int_min..=self.scope.int_max)
                .map(Value::Int)
                .collect(),
            Sort::Elem => universe
                .iter()
                .map(|&e| Value::Elem(e))
                .chain(std::iter::once(Value::Elem(NULL_ELEM)))
                .collect(),
            Sort::Set => subsets_up_to(universe, self.scope.max_collection_entries)
                .into_iter()
                .map(Value::Set)
                .collect(),
            Sort::Map => {
                let mut out = Vec::new();
                for keys in subsets_up_to(universe, self.scope.max_collection_entries) {
                    let mut partial: Vec<PMap> = vec![PMap::new()];
                    for k in keys.iter() {
                        let mut next = Vec::new();
                        for m in &partial {
                            for &v in universe {
                                // Shared prefix + one delta: the clone is an
                                // O(1) handle copy, the insert copies once.
                                let mut m2 = m.clone();
                                m2.insert(*k, v);
                                next.push(m2);
                            }
                        }
                        partial = next;
                    }
                    out.extend(partial.into_iter().map(Value::Map));
                }
                out
            }
            Sort::Seq => {
                let mut out: Vec<PSeq> = vec![PSeq::new()];
                let mut frontier: Vec<PSeq> = vec![PSeq::new()];
                for _ in 0..self.scope.max_seq_len {
                    let mut next = Vec::new();
                    for s in &frontier {
                        for &e in universe {
                            let mut s2 = s.clone();
                            s2.push(e);
                            next.push(s2);
                        }
                    }
                    out.extend(next.iter().cloned());
                    frontier = next;
                }
                out.into_iter().map(Value::Seq).collect()
            }
        }
    }

    /// An estimate of the number of candidate models (used for reporting and
    /// for the `max_models` budget check). The estimate counts the
    /// *unreduced* enumeration; with [`Scope::orbit`] set the actual
    /// traversal emits fewer candidates, so the budget check stays
    /// conservative.
    pub fn estimated_size(&self) -> u128 {
        let mut total: u128 = 0;
        for assignment in self.elem_assignments() {
            let universe = self.universe(&assignment);
            let mut per: u128 = 1;
            for (_, sort) in &self.other_vars {
                per = per.saturating_mul(self.candidates(*sort, &universe).len() as u128);
            }
            total = total.saturating_add(per);
        }
        total.max(1)
    }

    /// Iterates over all candidate models in the space.
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter::new(self)
    }

    /// Iterates over the candidates whose **unreduced position** (their
    /// index in the plain orbit-off odometer enumeration — see
    /// [`SpaceIter::position`]) lies in `[lo, hi)`.
    ///
    /// Construction is O(#element-assignments), independent of `lo`: the
    /// resume point is computed by division, not by stepping the odometer.
    /// In orbit mode only the canonical candidates of the range are
    /// emitted, and [`SpaceIter::orbits_pruned`] counts exactly the
    /// non-canonical positions inside `[lo, hi)` — so for any partition of
    /// `[0, n)` into ranges, emitted candidates concatenate to the full
    /// enumeration and pruned counts sum to the full scan's count. This is
    /// the primitive behind the scheduler's splittable model-search range
    /// tasks.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_iter(&self, lo: u64, hi: u64) -> SpaceIter<'_> {
        SpaceIter::with_range(self, lo, hi)
    }
}

/// Generates all subsets of `universe` with at most `max_len` elements.
///
/// Each subset is a persistent [`PSet`] built by cloning its parent subset (an
/// O(1) shared-prefix handle copy) and inserting one element — the deep copy
/// happens once per *generated* candidate, and downstream per-candidate use
/// ([`SpaceIter::next_values`]) only ever clones handles.
fn subsets_up_to(universe: &[ElemId], max_len: usize) -> Vec<PSet> {
    let mut out: Vec<PSet> = vec![PSet::new()];
    for &e in universe {
        let mut additions = Vec::new();
        for s in &out {
            if s.len() < max_len {
                let mut s2 = s.clone();
                s2.insert(e);
                additions.push(s2);
            }
        }
        out.extend(additions);
    }
    out
}

/// Iterator over the candidate models of an [`InputSpace`].
///
/// With [`Scope::orbit`] set, the iterator emits only orbit-canonical
/// candidates (see [`crate::orbit`]): non-canonical tuples are stepped over
/// — pruning the whole odometer subtree of a doomed prefix at once — before
/// a position is ever observable through [`SpaceIter::next_values`] or
/// `next()`.
///
/// Every candidate — canonical or not — has a deterministic **unreduced
/// position**: its index in the plain odometer enumeration with the orbit
/// reduction off ([`SpaceIter::position`]). Unreduced positions are
/// random-access (per element assignment the candidate counts are known, so
/// a position decomposes into odometer digits by division), which is what
/// makes the space *range-addressable*: [`InputSpace::range_iter`] resumes
/// the enumeration mid-space in O(#assignments) and stops at an exclusive
/// bound, and a recursive partition of `[0, n)` into ranges tiles the
/// candidate set exactly — canonical candidates and pruned-as-non-canonical
/// counts both land in the unique range containing their position. The
/// work-stealing scheduler splits one obligation's model search into such
/// ranges; position order is also the tie-break that keeps "which
/// counter-model is reported" identical at every split granularity.
pub struct SpaceIter<'a> {
    space: &'a InputSpace,
    elem_assignments: Vec<Vec<ElemId>>,
    elem_index: usize,
    /// Candidate values for each non-element variable under the current
    /// element assignment. In orbit mode the collection-valued lists are
    /// sorted ascending, so index order is value order.
    candidates: Vec<Vec<Value>>,
    /// Odometer positions into `candidates`.
    positions: Vec<usize>,
    exhausted_current: bool,
    /// Orbit pruning tables for the current element assignment (`None` when
    /// orbit reduction is off or has nothing to act on).
    orbit: Option<OrbitTables>,
    /// Candidates skipped as non-canonical within `[start, end)` so far.
    orbits_pruned: u64,
    /// Unreduced position of the current candidate.
    upos: u64,
    /// Exclusive unreduced end bound (`u64::MAX` = the whole space).
    end: u64,
}

impl<'a> SpaceIter<'a> {
    fn new(space: &'a InputSpace) -> SpaceIter<'a> {
        SpaceIter::with_range(space, 0, u64::MAX)
    }

    fn with_range(space: &'a InputSpace, lo: u64, hi: u64) -> SpaceIter<'a> {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        let elem_assignments = space.elem_assignments();
        let mut it = SpaceIter {
            space,
            elem_assignments,
            elem_index: 0,
            candidates: Vec::new(),
            positions: Vec::new(),
            exhausted_current: true,
            orbit: None,
            orbits_pruned: 0,
            upos: 0,
            end: hi,
        };
        it.load_current();
        it.settle();
        if lo > 0 {
            it.seek_unreduced(lo);
        }
        it.seek_canonical();
        it
    }

    /// The unreduced position of the current candidate: its index in the
    /// plain (orbit-off) odometer enumeration. Stable across split
    /// granularities and thread counts; after [`SpaceIter::next_values`]
    /// returns `true` the emitted candidate's position is the value this
    /// returned *before* the call.
    pub fn position(&self) -> u64 {
        self.upos
    }

    /// Number of unreduced positions left in this assignment's odometer
    /// before digit `j` next increments: the remaining size of the current
    /// slot-`j` subtree. Equals the full subtree product when every digit
    /// past `j` is zero; a mid-subtree resume (a range starting inside a
    /// non-canonical region) lands with nonzero suffix digits and skips
    /// correspondingly less.
    fn suffix_remaining(&self, j: usize) -> u64 {
        let mut weight: u64 = 1;
        let mut value: u64 = 0;
        for k in (j + 1..self.positions.len()).rev() {
            value += self.positions[k] as u64 * weight;
            weight = weight.saturating_mul(self.candidates[k].len() as u64);
        }
        weight - value
    }

    /// Number of unreduced candidates under the current element assignment.
    fn current_count(&self) -> u64 {
        self.candidates
            .iter()
            .fold(1u64, |acc, c| acc.saturating_mul(c.len() as u64))
    }

    /// Positions the odometer at unreduced position `target` (counting
    /// nothing as pruned): walks the element assignments by their candidate
    /// counts, then splits the in-assignment remainder into digits. Runs in
    /// O(#assignments + #slots²), independent of `target` — the
    /// random-access resume that makes range splitting O(1) per split
    /// instead of O(range).
    fn seek_unreduced(&mut self, target: u64) {
        let mut base: u64 = 0;
        while !self.done() {
            let count = self.current_count();
            if target - base < count {
                let mut rem = target - base;
                for i in 0..self.positions.len() {
                    let weight: u64 = self.candidates[i + 1..]
                        .iter()
                        .fold(1u64, |acc, c| acc.saturating_mul(c.len() as u64));
                    self.positions[i] = (rem / weight) as usize;
                    rem %= weight;
                }
                self.upos = target;
                return;
            }
            base += count;
            self.elem_index += 1;
            self.load_current();
            self.settle();
        }
        // Past the end of the space: leave the iterator exhausted.
        self.upos = target;
    }

    /// Number of candidates the orbit reduction has skipped as
    /// non-canonical so far. Always zero with [`Scope::orbit`] off; after a
    /// full traversal, the unreduced enumeration size equals the canonical
    /// count plus this.
    pub fn orbits_pruned(&self) -> u64 {
        self.orbits_pruned
    }

    fn done(&self) -> bool {
        self.elem_index >= self.elem_assignments.len()
    }

    /// `true` when no further candidate will be emitted: the odometer ran
    /// off the space, or the current position reached the range's end bound.
    fn exhausted(&self) -> bool {
        self.done() || self.upos >= self.end
    }

    /// Skips past element assignments for which some variable has no
    /// candidate values (cannot happen with the current sorts, but handled
    /// defensively), so that `current_model` is valid whenever `!done()`.
    fn settle(&mut self) {
        while !self.done() && self.exhausted_current {
            self.elem_index += 1;
            self.load_current();
        }
    }

    /// Writes the current candidate's values into `buf` in
    /// [`InputSpace::var_order`] order and advances; returns `false` when the
    /// space is exhausted. This is the allocation-lean counterpart of
    /// `next()` used by the prover's compiled evaluation path: no names, no
    /// `Model` map — just the values.
    pub fn next_values(&mut self, buf: &mut Vec<Value>) -> bool {
        if self.exhausted() {
            return false;
        }
        buf.clear();
        for v in &self.elem_assignments[self.elem_index] {
            buf.push(Value::Elem(*v));
        }
        for (cands, &pos) in self.candidates.iter().zip(&self.positions) {
            buf.push(cands[pos].clone());
        }
        self.advance();
        true
    }

    /// Materializes up to `max` candidates into `out` (clearing it first) and
    /// returns how many were emitted — the block-mode counterpart of
    /// [`SpaceIter::next_values`], used by the bytecode backend's batched
    /// driver.
    ///
    /// Lane `k` of the block is exactly the `k`-th candidate
    /// [`SpaceIter::next_values`] would have emitted, with its unreduced
    /// position recorded in [`BlockBuf::position`] and the cumulative
    /// [`SpaceIter::orbits_pruned`] snapshot *after* its advance (including
    /// any prune-ahead past it) in [`BlockBuf::pruned_after`] — the two
    /// numbers a driver that stops at lane `k`'s deciding event needs to
    /// report counters identical to the sequential scan.
    pub fn next_block(&mut self, max: usize, out: &mut BlockBuf) -> usize {
        out.values.clear();
        out.positions.clear();
        out.pruned_after.clear();
        out.width = self.space.elem_vars.len() + self.space.other_vars.len();
        let mut lanes = 0;
        while lanes < max && !self.exhausted() {
            out.positions.push(self.upos);
            for v in &self.elem_assignments[self.elem_index] {
                out.values.push(Value::Elem(*v));
            }
            for (cands, &pos) in self.candidates.iter().zip(&self.positions) {
                out.values.push(cands[pos].clone());
            }
            self.advance();
            out.pruned_after.push(self.orbits_pruned);
            lanes += 1;
        }
        lanes
    }

    fn load_current(&mut self) {
        if self.elem_index >= self.elem_assignments.len() {
            return;
        }
        let assignment = &self.elem_assignments[self.elem_index];
        let universe = self.space.universe(assignment);
        self.candidates = self
            .space
            .other_vars
            .iter()
            .map(|(_, sort)| self.space.candidates(*sort, &universe))
            .collect();
        self.orbit = None;
        if self.space.scope.orbit {
            let sorts: Vec<Sort> = self.space.other_vars.iter().map(|(_, s)| *s).collect();
            let block = padding_block(
                InputSpace::max_class(assignment),
                self.space.scope.elem_padding,
            );
            if block.len() >= 2 {
                // Sort the collection-valued candidate lists so the orbit
                // tables can compare candidates by index. Only done when a
                // reduction can actually happen: with a trivial block the
                // enumeration order stays byte-identical to orbit-off.
                for (list, sort) in self.candidates.iter_mut().zip(&sorts) {
                    if matches!(sort, Sort::Set | Sort::Map | Sort::Seq) {
                        list.sort();
                    }
                }
                self.orbit = OrbitTables::build(&self.candidates, &sorts, block);
            }
        }
        self.positions = vec![0; self.candidates.len()];
        self.exhausted_current = self.candidates.iter().any(|c| c.is_empty());
    }

    fn current_model(&self) -> Model {
        let mut m = Model::new();
        let assignment = &self.elem_assignments[self.elem_index];
        for (name, value) in self.space.elem_vars.iter().zip(assignment) {
            m.insert(name.clone(), Value::Elem(*value));
        }
        for ((name, _), (cands, &pos)) in self
            .space
            .other_vars
            .iter()
            .zip(self.candidates.iter().zip(&self.positions))
        {
            m.insert(name.clone(), cands[pos].clone());
        }
        m
    }

    fn advance(&mut self) {
        self.upos = self.upos.saturating_add(1);
        match self.positions.len() {
            0 => self.next_assignment(),
            n => self.bump(n - 1),
        }
        self.seek_canonical();
    }

    /// Advances the odometer treating `j` as the least-significant digit:
    /// positions above `j` reset to zero, positions `0..=j` carry; on
    /// overflow (or when there is no odometer at all) moves to the next
    /// element assignment. Bumping at `j < len - 1` is how the orbit
    /// reduction skips the whole subtree of a non-canonical prefix.
    fn bump(&mut self, j: usize) {
        for i in (j + 1)..self.positions.len() {
            self.positions[i] = 0;
        }
        for i in (0..=j).rev() {
            self.positions[i] += 1;
            if self.positions[i] < self.candidates[i].len() {
                return;
            }
            self.positions[i] = 0;
        }
        self.next_assignment();
    }

    fn next_assignment(&mut self) {
        self.elem_index += 1;
        self.load_current();
        self.settle();
    }

    /// Steps forward until the current candidate is orbit-canonical (no-op
    /// when orbit reduction is off or trivial). Every skipped candidate
    /// whose unreduced position lies inside `[start, end)` is counted into
    /// `orbits_pruned`; a non-canonical *prefix* prunes the rest of its
    /// subtree in one bump.
    ///
    /// Reached from a normal advance, every position above the deciding
    /// slot `j` is zero and the skip is the full slot-`j` subtree. Reached
    /// from a mid-range resume ([`SpaceIter::seek_unreduced`] can land
    /// anywhere, including inside a non-canonical subtree an unsplit scan
    /// would have pruned in one step from further left), the suffix digits
    /// are nonzero and [`SpaceIter::suffix_remaining`] skips only the
    /// positions from here to the subtree's end — so a partition of the
    /// space into ranges attributes every pruned position to exactly the
    /// range containing it, and pruned counts sum across subranges to the
    /// unsplit scan's count.
    fn seek_canonical(&mut self) {
        while !self.exhausted() {
            let Some(tables) = &self.orbit else { return };
            let Some(j) = tables.violation(&self.positions) else {
                return;
            };
            let skip = self.suffix_remaining(j);
            self.orbits_pruned += skip.min(self.end - self.upos);
            self.upos = self.upos.saturating_add(skip);
            self.bump(j);
        }
    }
}

/// A reusable block of materialized candidates, filled by
/// [`SpaceIter::next_block`]: lane-major slot values plus each lane's
/// unreduced position and post-advance pruned-count snapshot.
#[derive(Debug, Default)]
pub struct BlockBuf {
    /// Lane-major values: lane `k`'s slot vector occupies
    /// `values[k * width .. (k + 1) * width]`, in [`InputSpace::var_order`]
    /// order.
    values: Vec<Value>,
    /// Unreduced position of each lane's candidate.
    positions: Vec<u64>,
    /// Cumulative [`SpaceIter::orbits_pruned`] snapshot taken right after
    /// each lane's candidate was advanced past — the orbit-pruned count a
    /// sequential scan stopping at that candidate would report (prune-ahead
    /// beyond the candidate included, exactly as the sequential iterator
    /// counts it).
    pruned_after: Vec<u64>,
    /// Number of input variables per lane.
    width: usize,
}

impl BlockBuf {
    /// Creates an empty block buffer (fill it with
    /// [`SpaceIter::next_block`]).
    pub fn new() -> BlockBuf {
        BlockBuf::default()
    }

    /// Number of materialized lanes.
    pub fn lanes(&self) -> usize {
        self.positions.len()
    }

    /// Number of input variables per lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The value of input variable `var` at lane `lane`.
    pub fn value(&self, lane: usize, var: usize) -> &Value {
        &self.values[lane * self.width + var]
    }

    /// The unreduced position of lane `lane`'s candidate.
    pub fn position(&self, lane: usize) -> u64 {
        self.positions[lane]
    }

    /// The cumulative orbit-pruned count right after lane `lane`'s candidate.
    pub fn pruned_after(&self, lane: usize) -> u64 {
        self.pruned_after[lane]
    }
}

impl Iterator for SpaceIter<'_> {
    type Item = Model;

    fn next(&mut self) -> Option<Model> {
        if self.exhausted() {
            return None;
        }
        let model = self.current_model();
        self.advance();
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn vars(pairs: &[(&str, Sort)]) -> BTreeMap<String, Sort> {
        pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect()
    }

    #[test]
    fn empty_space_yields_one_model() {
        let space = InputSpace::new(&BTreeMap::new(), Scope::small());
        let models: Vec<Model> = space.iter().collect();
        assert_eq!(models.len(), 1);
        assert!(models[0].is_empty());
    }

    #[test]
    fn single_bool_var_yields_two_models() {
        let space = InputSpace::new(&vars(&[("b", Sort::Bool)]), Scope::small());
        assert_eq!(space.iter().count(), 2);
        assert_eq!(space.estimated_size(), 2);
    }

    #[test]
    fn elem_vars_are_symmetry_reduced() {
        // Two element variables: null/null, null/c1, c1/null, c1=c1, c1!=c2.
        let space = InputSpace::new(
            &vars(&[("a", Sort::Elem), ("b", Sort::Elem)]),
            Scope::small(),
        );
        let models: Vec<Model> = space.iter().collect();
        assert_eq!(models.len(), 5);
        // At least one model has a == b != null and one has a != b.
        let same = models
            .iter()
            .any(|m| m.get("a") == m.get("b") && m.get("a").unwrap().as_elem() != Some(NULL_ELEM));
        let diff = models.iter().any(|m| {
            m.get("a") != m.get("b")
                && m.get("a").unwrap().as_elem() != Some(NULL_ELEM)
                && m.get("b").unwrap().as_elem() != Some(NULL_ELEM)
        });
        assert!(same && diff);
    }

    #[test]
    fn set_candidates_cover_membership_patterns() {
        let space = InputSpace::new(
            &vars(&[("v", Sort::Elem), ("s", Sort::Set)]),
            Scope::small(),
        );
        let models: Vec<Model> = space.iter().collect();
        // There is a model where v is in s and one where it is not.
        let member = models.iter().any(|m| {
            let v = m.get("v").unwrap().as_elem().unwrap();
            !v.is_null() && m.get("s").unwrap().as_set().unwrap().contains(&v)
        });
        let non_member = models.iter().any(|m| {
            let v = m.get("v").unwrap().as_elem().unwrap();
            !v.is_null() && !m.get("s").unwrap().as_set().unwrap().contains(&v)
        });
        assert!(member && non_member);
    }

    #[test]
    fn map_candidates_are_bounded() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("m", Sort::Map)]), scope.clone());
        for model in space.iter() {
            let m = model.get("m").unwrap().as_map().unwrap();
            assert!(m.len() <= scope.max_collection_entries);
        }
    }

    #[test]
    fn seq_candidates_are_bounded() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("q", Sort::Seq)]), scope.clone());
        let mut max_len = 0;
        for model in space.iter() {
            max_len = max_len.max(model.get("q").unwrap().as_seq().unwrap().len());
        }
        assert_eq!(max_len, scope.max_seq_len);
    }

    #[test]
    fn estimated_size_matches_iteration_for_small_spaces() {
        let space = InputSpace::new(
            &vars(&[("v", Sort::Elem), ("b", Sort::Bool), ("i", Sort::Int)]),
            Scope::small(),
        );
        assert_eq!(space.estimated_size(), space.iter().count() as u128);
    }

    #[test]
    fn from_obligation_uses_input_vars_only() {
        let ob = Obligation::new("t")
            .define("r", member(var_elem("v"), var_set("s")))
            .goal(var_bool("r"));
        let space = InputSpace::from_obligation(&ob, Scope::small());
        assert_eq!(space.elem_vars(), &["v".to_string()]);
        assert_eq!(space.other_vars().len(), 1);
        assert_eq!(space.other_vars()[0].0, "s");
    }

    #[test]
    fn orbit_enumeration_emits_exactly_the_canonical_candidates() {
        // One set variable, no element variables, two padding elements: the
        // unreduced candidates are the subsets of {o1, o2}; the swap o1<->o2
        // identifies {o1} with {o2}, so exactly one of them is emitted.
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            ..Scope::small()
        };
        let off = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.clone().with_orbit(false));
        let on = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.clone().with_orbit(true));
        assert_eq!(off.iter().count(), 4);
        let mut it = on.iter();
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.orbits_pruned(), 1);

        // Joint canonicalization over two set slots: 16 unreduced tuples
        // collapse to (16 + 4 fixed points) / 2 = 10 orbits.
        let off2 = InputSpace::new(
            &vars(&[("s", Sort::Set), ("t", Sort::Set)]),
            scope.clone().with_orbit(false),
        );
        let on2 = InputSpace::new(
            &vars(&[("s", Sort::Set), ("t", Sort::Set)]),
            scope.with_orbit(true),
        );
        assert_eq!(off2.iter().count(), 16);
        let mut it = on2.iter();
        assert_eq!(it.by_ref().count(), 10);
        assert_eq!(it.orbits_pruned(), 6);
    }

    #[test]
    fn every_unreduced_candidate_is_reachable_from_a_canonical_one() {
        use crate::orbit::block_permutations;
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            max_seq_len: 2,
            ..Scope::small()
        };
        let vars = vars(&[("v", Sort::Elem), ("q", Sort::Seq), ("s", Sort::Set)]);
        let canonical: Vec<Model> = InputSpace::new(&vars, scope.clone().with_orbit(true))
            .iter()
            .collect();
        let space_off = InputSpace::new(&vars, scope.with_orbit(false));
        for model in space_off.iter() {
            let max_class = model
                .get("v")
                .and_then(|v| v.as_elem())
                .filter(|e| !e.is_null())
                .map_or(0, |e| e.0);
            let block = crate::orbit::padding_block(max_class, 2);
            let reachable = block_permutations(block).iter().any(|perm| {
                let image = Model::from_bindings(
                    model
                        .iter()
                        .map(|(name, value)| (name.to_string(), perm.apply_value(value))),
                );
                canonical.contains(&image)
            });
            assert!(reachable, "no canonical representative for {model}");
        }
    }

    #[test]
    fn orbit_off_counts_unreduced_candidates_and_prunes_nothing() {
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            ..Scope::small()
        };
        let space = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.with_orbit(false));
        let mut it = space.iter();
        let mut n = 0;
        let mut buf = Vec::new();
        while it.next_values(&mut buf) {
            n += 1;
        }
        assert_eq!(n, 4);
        assert_eq!(it.orbits_pruned(), 0);
    }

    #[test]
    fn range_iter_tiles_the_space_at_any_cut() {
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            max_seq_len: 2,
            ..Scope::small()
        };
        for orbit in [false, true] {
            let vars = vars(&[("v", Sort::Elem), ("q", Sort::Seq), ("s", Sort::Set)]);
            let space = InputSpace::new(&vars, scope.clone().with_orbit(orbit));
            let total = space.estimated_size() as u64;
            let mut full = space.iter();
            let all: Vec<Model> = full.by_ref().collect();
            let full_pruned = full.orbits_pruned();
            // Cut the space at every position: front ++ back must always
            // reproduce the full scan, candidates and pruned counts alike.
            for cut in 0..=total {
                let mut front = space.range_iter(0, cut);
                let mut back = space.range_iter(cut, total);
                let mut tiled: Vec<Model> = front.by_ref().collect();
                tiled.extend(back.by_ref());
                assert_eq!(tiled, all, "orbit {orbit}, cut {cut}");
                assert_eq!(
                    front.orbits_pruned() + back.orbits_pruned(),
                    full_pruned,
                    "orbit {orbit}, cut {cut}"
                );
            }
        }
    }

    #[test]
    fn next_block_matches_next_values_at_any_block_size() {
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            max_seq_len: 2,
            ..Scope::small()
        };
        for orbit in [false, true] {
            let vars = vars(&[("v", Sort::Elem), ("q", Sort::Seq), ("s", Sort::Set)]);
            let space = InputSpace::new(&vars, scope.clone().with_orbit(orbit));
            // Sequential reference: one candidate at a time, with the
            // position before and the pruned snapshot after each emission.
            let mut seq = space.iter();
            let mut expected: Vec<(u64, Vec<Value>, u64)> = Vec::new();
            let mut buf = Vec::new();
            loop {
                let upos = seq.position();
                if !seq.next_values(&mut buf) {
                    break;
                }
                expected.push((upos, buf.clone(), seq.orbits_pruned()));
            }
            for block_size in [1, 3, 7, 256] {
                let mut it = space.iter();
                let mut block = BlockBuf::new();
                let mut got: Vec<(u64, Vec<Value>, u64)> = Vec::new();
                loop {
                    let lanes = it.next_block(block_size, &mut block);
                    if lanes == 0 {
                        break;
                    }
                    assert!(lanes <= block_size);
                    for lane in 0..lanes {
                        let values = (0..block.width())
                            .map(|v| block.value(lane, v).clone())
                            .collect();
                        got.push((block.position(lane), values, block.pruned_after(lane)));
                    }
                }
                assert_eq!(got, expected, "orbit {orbit}, block size {block_size}");
                assert_eq!(it.orbits_pruned(), seq.orbits_pruned());
            }
        }
    }

    #[test]
    fn positions_count_unreduced_candidates() {
        // One set variable over two padding elements, orbit on. The sorted
        // candidate list is [{}, {o1}, {o1,o2}, {o2}] (BTreeSet order), so
        // the canonical candidates keep unreduced positions 0, 1, 2 and the
        // pruned {o2} (the non-canonical image of {o1}) is position 3.
        let scope = Scope {
            elem_padding: 2,
            max_collection_entries: 2,
            ..Scope::small()
        };
        let space = InputSpace::new(&vars(&[("s", Sort::Set)]), scope.with_orbit(true));
        let mut it = space.iter();
        let mut seen = Vec::new();
        loop {
            let upos = it.position();
            if it.next().is_none() {
                break;
            }
            seen.push(upos);
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(it.orbits_pruned(), 1);
        // A range covering only the pruned tail emits nothing and counts it.
        let mut tail = space.range_iter(3, 4);
        assert_eq!(tail.next(), None);
        assert_eq!(tail.orbits_pruned(), 1);
    }

    #[test]
    fn empty_and_degenerate_ranges_emit_nothing() {
        let space = InputSpace::new(&vars(&[("b", Sort::Bool)]), Scope::small());
        assert_eq!(space.range_iter(0, 0).count(), 0);
        assert_eq!(space.range_iter(1, 1).count(), 0);
        assert_eq!(space.range_iter(2, 2).count(), 0);
        // A range past the end of the space is empty, not an error.
        assert_eq!(space.range_iter(2, 100).count(), 0);
        assert_eq!(space.range_iter(0, 2).count(), 2);
    }

    #[test]
    fn int_candidates_respect_scope_bounds() {
        let scope = Scope::small();
        let space = InputSpace::new(&vars(&[("i", Sort::Int)]), scope.clone());
        for model in space.iter() {
            let i = model.get("i").unwrap().as_int().unwrap();
            assert!(i >= scope.int_min && i <= scope.int_max);
        }
    }
}
