//! Property tests of model-search range splitting, pinning the three facts
//! the scheduler's splittable range tasks rest on:
//!
//! 1. **Tiling** — any recursive split partition of `[0, n)` into ranges
//!    enumerates every candidate exactly once: the subrange scans
//!    concatenate to the full enumeration (same candidates, same order) and
//!    the per-range `orbits_pruned` counts sum to the unsplit scan's count;
//! 2. **Mid-range resume** — a range iterator started at an arbitrary
//!    unreduced position emits exactly the canonical candidates of that
//!    range (the ones a full scan emits at positions in `[lo, hi)`), even
//!    when the resume point lands inside a pruned subtree;
//! 3. **Minimum-event guard** — the shared early-exit guard never loses the
//!    minimum-position deciding event, no matter in which order adversarial
//!    subranges report counter-models and errors, so the finalized verdict
//!    is always the sequential scan's.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;

use semcommute_logic::{Model, Sort, Value};
use semcommute_prover::finite::assemble_verdict;
use semcommute_prover::{InputSpace, Scope, SearchShared, Verdict};

/// A deliberately tiny scope so the exhaustive inner loops stay fast: the
/// properties quantify over *whole enumerations*, not samples of them.
fn tiny_scope(orbit: bool) -> Scope {
    Scope {
        elem_padding: 2,
        max_collection_entries: 2,
        max_seq_len: 2,
        int_min: 0,
        int_max: 1,
        max_models: 5_000_000,
        orbit,
        bytecode: false,
    }
}

fn to_vars(pairs: &[(&str, Sort)]) -> BTreeMap<String, Sort> {
    pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect()
}

/// Input-variable configurations mixing the collection shapes (so orbit
/// pruning really bites) with scalar digits between them.
fn var_config() -> impl Strategy<Value = Vec<(&'static str, Sort)>> {
    prop_oneof![
        Just(vec![("s", Sort::Set)]),
        Just(vec![("s", Sort::Set), ("t", Sort::Set)]),
        Just(vec![("v", Sort::Elem), ("s", Sort::Set)]),
        Just(vec![("b", Sort::Bool), ("q", Sort::Seq), ("s", Sort::Set)]),
        Just(vec![("i", Sort::Int), ("q", Sort::Seq)]),
        Just(vec![("v", Sort::Elem), ("m", Sort::Map)]),
    ]
}

/// A recursive binary split of `[0, n)`, driven by a pseudo-random seed:
/// returns the leaf ranges of the split tree, in position order.
fn split_tree(lo: u64, hi: u64, mut seed: u64, out: &mut Vec<(u64, u64)>) {
    // Small ranges stay leaves; otherwise split at a seed-dependent point
    // (not necessarily the midpoint — the tiling property must not depend
    // on where the cuts land).
    if hi - lo <= 1 + seed % 4 {
        out.push((lo, hi));
        return;
    }
    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let cut = lo + 1 + seed % (hi - lo - 1);
    split_tree(lo, cut, seed ^ 0x9E3779B9, out);
    split_tree(cut, hi, seed.rotate_left(17), out);
}

/// Models emitted by a full scan, tagged with their unreduced positions.
fn positioned_models(space: &InputSpace) -> Vec<(u64, Model)> {
    let mut it = space.iter();
    let mut out = Vec::new();
    loop {
        let upos = it.position();
        match it.next() {
            Some(model) => out.push((upos, model)),
            None => return out,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: the leaves of any recursive split partition of `[0, n)`
    /// tile the enumeration — concatenated subrange scans reproduce the
    /// full scan exactly, and pruned counts sum to the unsplit count.
    #[test]
    fn split_partition_enumerates_each_position_exactly_once(
        vars in var_config(),
        orbit in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        let space = InputSpace::new(&to_vars(&vars), tiny_scope(orbit));
        let total = space.estimated_size() as u64;
        let mut full = space.iter();
        let full_models: Vec<Model> = full.by_ref().collect();
        let full_pruned = full.orbits_pruned();
        prop_assert_eq!(full_models.len() as u64 + full_pruned, total);

        let mut leaves = Vec::new();
        split_tree(0, total, seed, &mut leaves);
        prop_assert_eq!(leaves.first().map(|r| r.0), Some(0));
        prop_assert_eq!(leaves.last().map(|r| r.1), Some(total));

        let mut tiled: Vec<Model> = Vec::new();
        let mut pruned_sum = 0u64;
        for (lo, hi) in leaves {
            let mut it = space.range_iter(lo, hi);
            tiled.extend(it.by_ref());
            pruned_sum += it.orbits_pruned();
        }
        prop_assert_eq!(tiled, full_models, "subranges must tile the space");
        prop_assert_eq!(pruned_sum, full_pruned, "pruned counts must sum");
    }

    /// Property 2: a mid-range resume emits exactly the canonical set of
    /// that range — the full scan's candidates filtered to positions in
    /// `[lo, hi)` — including when `lo` lands inside a pruned subtree.
    #[test]
    fn mid_range_resume_matches_filtered_full_scan(
        vars in var_config(),
        orbit in proptest::bool::ANY,
        cut in (0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let space = InputSpace::new(&to_vars(&vars), tiny_scope(orbit));
        let total = space.estimated_size() as u64;
        let (a, b) = (cut.0 % (total + 1), cut.1 % (total + 1));
        let (lo, hi) = (a.min(b), a.max(b));

        let expected: Vec<(u64, Model)> = positioned_models(&space)
            .into_iter()
            .filter(|(upos, _)| (lo..hi).contains(upos))
            .collect();
        let mut it = space.range_iter(lo, hi);
        let mut got: Vec<(u64, Model)> = Vec::new();
        loop {
            let upos = it.position();
            match it.next() {
                Some(model) => got.push((upos, model)),
                None => break,
            }
        }
        prop_assert_eq!(got, expected);
        // Every position of the range is either emitted or counted pruned.
        prop_assert_eq!(
            it.orbits_pruned(),
            (hi - lo) - expected.len() as u64,
            "pruned must cover exactly the non-canonical positions of [{}, {})", lo, hi
        );
    }

    /// Property 3: the shared guard keeps the minimum-position deciding
    /// event under adversarial completion orders, and the assembled verdict
    /// is the sequential one: counter-model or error, whichever sits at the
    /// lowest position.
    #[test]
    fn guard_never_loses_the_minimum_event(
        // (position, is_error) events, applied in arbitrary order.
        events in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..12),
    ) {
        let shared = SearchShared::new();
        for (upos, is_error) in &events {
            if *is_error {
                shared.record_error(*upos, format!("error at {upos}"));
            } else {
                let mut model = Model::new();
                model.insert("witness", Value::Int(*upos as i64));
                shared.record_counterexample(*upos, model);
            }
        }
        // The guard converged to the global minimum position.
        let min = events.iter().map(|(u, _)| *u).min().expect("non-empty");
        prop_assert_eq!(shared.deciding(), Some(min));

        // The assembled verdict is decided by an event *at* that position.
        // (Both kinds can share the minimum position here — a real search
        // records at most one event per position, so either is the verdict
        // the sequential scan would have reported.)
        let verdict = assemble_verdict(shared.take_outcome(), Duration::ZERO);
        match verdict {
            Verdict::CounterModel { model, .. } => {
                prop_assert!(events.contains(&(min, false)));
                prop_assert_eq!(model.get("witness"), Some(&Value::Int(min as i64)));
            }
            Verdict::Unknown { reason, .. } => {
                prop_assert!(events.contains(&(min, true)));
                prop_assert_eq!(reason, format!("error at {min}"));
            }
            Verdict::Valid { .. } => prop_assert!(false, "events were recorded"),
        }
    }
}

/// The no-event case assembles to `Valid` with the merged counters — and a
/// deterministic pin of the adversarial order: a low-position error beats a
/// high-position counter-model recorded first, and vice versa.
#[test]
fn assembled_verdicts_pin_the_event_kind_priority() {
    let shared = SearchShared::new();
    let verdict = assemble_verdict(shared.take_outcome(), Duration::ZERO);
    assert!(matches!(verdict, Verdict::Valid { .. }));

    // Counter-model at 7 lands before the error at 3 is known: Unknown.
    let shared = SearchShared::new();
    shared.record_counterexample(7, Model::new());
    shared.record_error(3, "deciding".to_string());
    let verdict = assemble_verdict(shared.take_outcome(), Duration::ZERO);
    let Verdict::Unknown { reason, stats } = verdict else {
        panic!("the position-3 error decides");
    };
    assert_eq!(reason, "deciding");
    assert!(stats.errors.is_empty());

    // Error at 9 lands before the counter-model at 2: CounterModel, with
    // the raced-past error kept as a non-fatal statistic.
    let shared = SearchShared::new();
    shared.record_error(9, "non-fatal".to_string());
    shared.record_counterexample(2, Model::new());
    let verdict = assemble_verdict(shared.take_outcome(), Duration::ZERO);
    let Verdict::CounterModel { stats, .. } = verdict else {
        panic!("the position-2 counter-model decides");
    };
    assert_eq!(stats.errors, vec!["non-fatal".to_string()]);
}
