//! Differential soundness harness: orbit-canonical enumeration against the
//! unreduced oracle.
//!
//! Soundness of a pruned counter-model search is exactly the kind of claim
//! that must be pinned exhaustively: if the orbit reduction ever skipped a
//! candidate that is *not* an isomorphic renaming of a kept one, a refutable
//! obligation could verify. This harness runs the **full catalog** (every
//! condition of all four interfaces) with the reduction on and off, at one
//! and at four scheduler workers, and compares verdict by verdict; a second
//! test sabotages conditions so the *refuted* path is exercised too — the
//! reduced search's counterexamples must be canonical and must be models the
//! unreduced oracle also refutes.
//!
//! The ArrayList sequence scope is 3 here (as in the parallel differential
//! harness) so that four full-catalog runs stay fast in debug builds; the
//! scope is a verification parameter, not a truncation of the catalog.

use semcommute_core::verify::{verify_catalog, CatalogReport, VerifyOptions};
use semcommute_prover::orbit::{block_permutations, is_canonical, padding_block};
use semcommute_prover::{FiniteModelProver, Portfolio, Scope, Verdict};

fn options(threads: usize, orbit: bool) -> VerifyOptions {
    VerifyOptions {
        threads,
        seq_len: 3,
        limit: None,
        orbit,
        ..VerifyOptions::default()
    }
}

/// The observable outcome of a verdict: its kind (and, for refutations, the
/// fact — checked elsewhere — that the model refutes). Statistics
/// legitimately differ between the two enumerators.
fn kind(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Valid { .. } => "valid",
        Verdict::CounterModel { .. } => "counterexample",
        Verdict::Unknown { .. } => "unknown",
    }
}

fn assert_same_verdicts(on: &CatalogReport, off: &CatalogReport, threads: usize) {
    assert_eq!(on.interfaces.len(), off.interfaces.len());
    for (on_report, off_report) in on.interfaces.iter().zip(&off.interfaces) {
        assert_eq!(on_report.interface, off_report.interface);
        assert_eq!(on_report.total(), off_report.total());
        for (on_cond, off_cond) in on_report.reports.iter().zip(&off_report.reports) {
            assert_eq!(on_cond.condition.id(), off_cond.condition.id());
            for (label, on_verdict, off_verdict) in [
                ("soundness", &on_cond.soundness, &off_cond.soundness),
                (
                    "completeness",
                    &on_cond.completeness,
                    &off_cond.completeness,
                ),
            ] {
                assert_eq!(
                    kind(on_verdict),
                    kind(off_verdict),
                    "{threads} threads: {} {label} verdict differs between orbit on and off",
                    on_cond.condition.id(),
                );
            }
        }
    }
}

/// The full catalog, orbit on vs. off, at 1 and 4 workers: verdicts are
/// identical, the reduction materially shrinks the checked-model count, and
/// — because every obligation verifies, so every space is fully enumerated —
/// the counters reconcile exactly: `checked_on + pruned_on == checked_off`.
#[test]
fn full_catalog_verdicts_identical_with_orbit_on_and_off() {
    for threads in [1, 4] {
        let on = verify_catalog(&options(threads, true));
        let off = verify_catalog(&options(threads, false));
        for report in on.interfaces.iter().chain(&off.interfaces) {
            assert_eq!(
                report.verified_count(),
                report.total(),
                "{threads} threads: the catalog verifies under both enumerators"
            );
        }
        assert_same_verdicts(&on, &off, threads);

        assert_eq!(off.orbits_pruned(), 0, "the oracle never prunes");
        assert!(
            on.orbits_pruned() > 0,
            "{threads} threads: the reduction must actually prune"
        );
        assert!(
            on.models_checked() < off.models_checked(),
            "{threads} threads: orbit-on must check strictly fewer models \
             ({} vs {})",
            on.models_checked(),
            off.models_checked()
        );
        assert_eq!(
            on.models_checked() + on.orbits_pruned(),
            off.models_checked(),
            "{threads} threads: every pruned candidate is accounted for"
        );
    }
}

/// Sabotaged conditions (claiming `contains`/`add` commute unconditionally)
/// exercise the refuted path: under the reduction every obligation must get
/// the same verdict kind as under the oracle, and every counterexample the
/// reduced search reports must (a) be orbit-canonical and (b) replay as a
/// counterexample under the unreduced oracle prover.
#[test]
fn sabotaged_counterexamples_are_canonical_and_refute_under_the_oracle() {
    use semcommute_core::catalog::interface_catalog;
    use semcommute_spec::InterfaceId;

    let mut sabotaged = interface_catalog(InterfaceId::Set)
        .into_iter()
        .filter(|c| c.first.op == "contains" && c.second.op == "add")
        .collect::<Vec<_>>();
    assert!(!sabotaged.is_empty());
    for cond in &mut sabotaged {
        cond.formula = semcommute_logic::build::tru();
    }

    // Scope::standard has a two-element padding block, so the reduction is
    // active on these set obligations.
    let scope_on = Scope::standard().with_orbit(true);
    let scope_off = Scope::standard().with_orbit(false);
    let portfolio_on = Portfolio::new(scope_on.clone());
    let portfolio_off = Portfolio::new(scope_off.clone());
    let oracle = FiniteModelProver::new(scope_off);

    let mut refutations = 0;
    for (i, cond) in sabotaged.iter().enumerate() {
        let (soundness, completeness) = semcommute_core::template::testing_methods(cond, i);
        for method in [soundness, completeness] {
            for ob in semcommute_core::vcgen::generate_obligations(&method).unwrap() {
                let on = portfolio_on.prove(&ob);
                let off = portfolio_off.prove(&ob);
                assert_eq!(kind(&on), kind(&off), "{}", ob.name);
                let Some(full) = on.counter_model() else {
                    continue;
                };
                refutations += 1;

                // (a) The model is canonical: its collection values, taken
                // jointly in the enumeration's slot order, are lex-least
                // under permutations of the padding block. Element inputs
                // are fixed points, so including them cannot change the
                // comparison.
                let inputs = oracle.project_inputs(&ob, full);
                let max_class = inputs
                    .iter()
                    .filter_map(|(_, v)| v.as_elem())
                    .filter(|e| !e.is_null())
                    .map(|e| e.0)
                    .max()
                    .unwrap_or(0);
                let block = padding_block(max_class, scope_on.elem_padding);
                let values: Vec<_> = inputs.iter().map(|(_, v)| v.clone()).collect();
                assert!(
                    is_canonical(&values, block.clone()),
                    "{}: reduced search reported a non-canonical model {full}",
                    ob.name
                );
                assert!(!block_permutations(block).is_empty());

                // (b) The oracle refutes the same model.
                assert!(
                    oracle.replay(&ob, &inputs).is_some(),
                    "{}: the unreduced oracle does not refute {full}",
                    ob.name
                );
            }
        }
    }
    assert!(refutations > 0, "the sabotage must produce refutations");
}
