//! Differential test: the parallel work-stealing scheduler against the
//! sequential oracle.
//!
//! The correctness story of the global obligation scheduler is that
//! parallelism must be *observationally invisible*: for every condition in
//! the catalog, the soundness and completeness verdicts of a scheduled run —
//! including the concrete counterexample models of failing conditions, not
//! just their number — must be identical to those of the strictly
//! sequential `threads = 1` baseline. This harness runs the full catalog
//! (every condition of all four interfaces) sequentially and at 2, 4, and 8
//! workers and compares verdict by verdict.
//!
//! The ArrayList sequence scope is 3 here so that a full-catalog run stays
//! fast in debug builds; the scope is a verification parameter, not a
//! truncation of the catalog.

use semcommute_core::verify::{verify_catalog, CatalogReport, VerifyOptions};
use semcommute_prover::Verdict;

/// The observable outcome of one testing-method verdict: its kind plus the
/// counterexample model, rendered. Statistics (timings, model counts) are
/// deliberately excluded — they legitimately differ between runs.
fn observable(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Valid { .. } => "valid".to_string(),
        Verdict::CounterModel { model, .. } => format!("counterexample:\n{model}"),
        Verdict::Unknown { reason, .. } => format!("unknown: {reason}"),
    }
}

fn options(threads: usize, limit: Option<usize>) -> VerifyOptions {
    VerifyOptions {
        threads,
        seq_len: 3,
        limit,
        ..VerifyOptions::default()
    }
}

fn assert_identical_verdicts(oracle: &CatalogReport, parallel: &CatalogReport, workers: usize) {
    assert_eq!(oracle.interfaces.len(), parallel.interfaces.len());
    for (seq_report, par_report) in oracle.interfaces.iter().zip(&parallel.interfaces) {
        assert_eq!(seq_report.interface, par_report.interface);
        assert_eq!(
            seq_report.total(),
            par_report.total(),
            "{workers} workers: {} condition count drifted",
            seq_report.interface
        );
        for (seq_cond, par_cond) in seq_report.reports.iter().zip(&par_report.reports) {
            assert_eq!(seq_cond.condition.id(), par_cond.condition.id());
            assert_eq!(seq_cond.hinted, par_cond.hinted);
            for (kind, seq_verdict, par_verdict) in [
                ("soundness", &seq_cond.soundness, &par_cond.soundness),
                (
                    "completeness",
                    &seq_cond.completeness,
                    &par_cond.completeness,
                ),
            ]
            .map(|(k, s, p)| (k, s, p))
            {
                assert_eq!(
                    observable(seq_verdict),
                    observable(par_verdict),
                    "{workers} workers: {} {kind} verdict differs from the sequential oracle",
                    seq_cond.condition.id(),
                );
            }
        }
    }
}

/// The full catalog: sequential oracle vs. 2, 4, and 8 stealing workers.
#[test]
fn full_catalog_verdicts_match_sequential_oracle() {
    let oracle = verify_catalog(&options(1, None));
    assert!(oracle.scheduler.is_none(), "threads = 1 is the oracle path");
    let verified: usize = oracle.interfaces.iter().map(|r| r.verified_count()).sum();
    let total: usize = oracle.interfaces.iter().map(|r| r.total()).sum();
    assert_eq!(verified, total, "the catalog verifies under the oracle");
    assert_eq!(total, 510, "12 + 108 + 147 + 243 catalog conditions");

    for workers in [2, 4, 8] {
        let parallel = verify_catalog(&options(workers, None));
        let scheduler = parallel
            .scheduler
            .as_ref()
            .expect("threads > 1 goes through the scheduler");
        assert_eq!(
            scheduler.proved + scheduler.cache_hits + scheduler.skipped,
            scheduler.submitted as u64,
            "{workers} workers: scheduler accounting must balance"
        );
        assert_eq!(scheduler.skipped, 0, "nothing fails, so nothing is skipped");
        assert!(
            scheduler.unique <= scheduler.submitted,
            "dedup can only shrink the queue"
        );
        assert_identical_verdicts(&oracle, &parallel, workers);
    }
}

/// Differential check on a catalog *with failures*: sabotaged conditions
/// must fail identically — same failing obligation, same counterexample
/// model — no matter how many workers race, pinning the early-exit guard
/// semantics (a racing later failure must not replace the first one).
#[test]
fn failing_conditions_report_the_same_counterexample_in_parallel() {
    use semcommute_core::catalog::interface_catalog;
    use semcommute_core::verify::{verify_condition, ConditionReport};
    use semcommute_prover::queue::{self, ExitGuard, ScheduledObligation};
    use semcommute_prover::{Portfolio, Scope};
    use semcommute_spec::InterfaceId;
    use std::sync::Arc;

    // Sabotage: claim contains/add commute unconditionally (they don't).
    let mut sabotaged = interface_catalog(InterfaceId::Set)
        .into_iter()
        .filter(|c| c.first.op == "contains" && c.second.op == "add")
        .collect::<Vec<_>>();
    assert!(!sabotaged.is_empty());
    for cond in &mut sabotaged {
        cond.formula = semcommute_logic::build::tru();
    }

    let prover = Portfolio::new(Scope::small());
    let oracle: Vec<ConditionReport> = sabotaged
        .iter()
        .enumerate()
        .map(|(i, c)| verify_condition(c, &Portfolio::new(Scope::small()), i))
        .collect();
    assert!(oracle.iter().any(|r| !r.verified()));

    for workers in [2, 4, 8] {
        // Rebuild the method obligations exactly as the driver would and
        // push them through the scheduler.
        let mut items = Vec::new();
        let mut method_ranges = Vec::new();
        for (i, cond) in sabotaged.iter().enumerate() {
            let (soundness, completeness) = semcommute_core::template::testing_methods(cond, i);
            for method in [soundness, completeness] {
                let obs = semcommute_core::vcgen::generate_obligations(&method).unwrap();
                let guard = Arc::new(ExitGuard::new());
                let start = items.len();
                items.extend(obs.into_iter().enumerate().map(|(j, ob)| {
                    ScheduledObligation::new(ob).with_guard(guard.clone(), j as u32)
                }));
                method_ranges.push(start..items.len());
            }
        }
        let run = queue::prove_all_scheduled(std::slice::from_ref(&prover), items, workers);
        for (m, range) in method_ranges.iter().enumerate() {
            let sequential = if m % 2 == 0 {
                &oracle[m / 2].soundness
            } else {
                &oracle[m / 2].completeness
            };
            // First non-valid verdict in obligation order, as the driver
            // reassembles it.
            let mut parallel: Option<&Verdict> = None;
            for index in range.clone() {
                match &run.verdicts[index] {
                    None => break,
                    Some(v) if !v.is_valid() => {
                        parallel = Some(v);
                        break;
                    }
                    Some(v) => parallel = Some(v),
                }
            }
            let parallel = parallel.expect("at least one obligation per method");
            assert_eq!(
                observable(sequential),
                observable(parallel),
                "{workers} workers: method {m} verdict drifted"
            );
        }
    }
}

/// A quick differential pass that also exercises the `limit` knob, so the
/// scheduler is compared against the oracle on truncated catalogs too.
#[test]
fn limited_catalog_matches_oracle() {
    let oracle = verify_catalog(&options(1, Some(10)));
    for workers in [2, 4] {
        let parallel = verify_catalog(&options(workers, Some(10)));
        assert_identical_verdicts(&oracle, &parallel, workers);
    }
}
