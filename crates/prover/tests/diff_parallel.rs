//! Differential test: the parallel work-stealing scheduler against the
//! sequential oracle, across a worker-count × split-threshold matrix.
//!
//! The correctness story of the global obligation scheduler is that
//! parallelism must be *observationally invisible*: for every condition in
//! the catalog, the soundness and completeness verdicts of a scheduled run —
//! including the concrete counterexample models of failing conditions, not
//! just their number — must be identical to those of the strictly
//! sequential `threads = 1` baseline, **at every split threshold**. Since
//! PR 5 an obligation whose model search exceeds the threshold is scanned as
//! racing range tasks, so the matrix includes a pathologically small
//! threshold (ranges of one unreduced position — maximal racing) alongside
//! the default; the full-catalog run additionally reconciles counters:
//! every subrange's `models_checked` / `orbits_pruned` merges into its
//! obligation's verdict, so the catalog totals must equal the unsplit
//! sequential oracle's exactly.
//!
//! The ArrayList sequence scope is 3 here so that a full-catalog run stays
//! fast in debug builds; the scope is a verification parameter, not a
//! truncation of the catalog.

use semcommute_core::verify::{verify_catalog, CatalogReport, VerifyOptions};
use semcommute_prover::Verdict;

/// The observable outcome of one testing-method verdict: its kind plus the
/// counterexample model, rendered. Statistics (timings, model counts) are
/// deliberately excluded — they legitimately differ between runs.
fn observable(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Valid { .. } => "valid".to_string(),
        Verdict::CounterModel { model, .. } => format!("counterexample:\n{model}"),
        Verdict::Unknown { reason, .. } => format!("unknown: {reason}"),
    }
}

fn options(threads: usize, limit: Option<usize>) -> VerifyOptions {
    VerifyOptions {
        threads,
        seq_len: 3,
        limit,
        ..VerifyOptions::default()
    }
}

fn split_options(threads: usize, limit: Option<usize>, split_threshold: u64) -> VerifyOptions {
    VerifyOptions {
        split_threshold,
        ..options(threads, limit)
    }
}

fn assert_identical_verdicts(oracle: &CatalogReport, parallel: &CatalogReport, workers: usize) {
    assert_eq!(oracle.interfaces.len(), parallel.interfaces.len());
    for (seq_report, par_report) in oracle.interfaces.iter().zip(&parallel.interfaces) {
        assert_eq!(seq_report.interface, par_report.interface);
        assert_eq!(
            seq_report.total(),
            par_report.total(),
            "{workers} workers: {} condition count drifted",
            seq_report.interface
        );
        for (seq_cond, par_cond) in seq_report.reports.iter().zip(&par_report.reports) {
            assert_eq!(seq_cond.condition.id(), par_cond.condition.id());
            assert_eq!(seq_cond.hinted, par_cond.hinted);
            for (kind, seq_verdict, par_verdict) in [
                ("soundness", &seq_cond.soundness, &par_cond.soundness),
                (
                    "completeness",
                    &seq_cond.completeness,
                    &par_cond.completeness,
                ),
            ]
            .map(|(k, s, p)| (k, s, p))
            {
                assert_eq!(
                    observable(seq_verdict),
                    observable(par_verdict),
                    "{workers} workers: {} {kind} verdict differs from the sequential oracle",
                    seq_cond.condition.id(),
                );
            }
        }
    }
}

/// The full catalog: sequential oracle vs. a worker-count × split-threshold
/// matrix. Every configuration must reproduce the oracle's verdicts *and*
/// its work counters — the catalog is all-valid, so every model search
/// enumerates its whole space and `sum(subrange models_checked)` must equal
/// the unsplit sequential count exactly (same for `orbits_pruned`).
#[test]
fn full_catalog_verdicts_match_sequential_oracle() {
    let oracle = verify_catalog(&options(1, None));
    assert!(oracle.scheduler.is_none(), "threads = 1 is the oracle path");
    let verified: usize = oracle.interfaces.iter().map(|r| r.verified_count()).sum();
    let total: usize = oracle.interfaces.iter().map(|r| r.total()).sum();
    assert_eq!(verified, total, "the catalog verifies under the oracle");
    assert_eq!(total, 510, "12 + 108 + 147 + 243 catalog conditions");

    // (workers, split_threshold): the default threshold at several widths,
    // plus a small threshold at 4 workers so range tasks dominate the run.
    let default_threshold = VerifyOptions::default().split_threshold;
    let matrix = [
        (2, default_threshold),
        (4, default_threshold),
        (8, default_threshold),
        (4, 4_096),
    ];
    for (workers, threshold) in matrix {
        let parallel = verify_catalog(&split_options(workers, None, threshold));
        let scheduler = parallel
            .scheduler
            .as_ref()
            .expect("threads > 1 goes through the scheduler");
        assert_eq!(
            scheduler.proved + scheduler.cache_hits + scheduler.skipped,
            scheduler.submitted as u64,
            "{workers}w/{threshold}: scheduler accounting must balance"
        );
        assert_eq!(scheduler.skipped, 0, "nothing fails, so nothing is skipped");
        assert!(
            scheduler.unique <= scheduler.submitted,
            "dedup can only shrink the queue"
        );
        // At seq_len 3 the largest searches run ~15k unreduced positions:
        // under the default threshold nothing splits (and the run must
        // still match the oracle); the small-threshold row exercises real
        // splits, where each split search scans one chunk per split plus
        // its seed chunk.
        if threshold < 15_000 {
            assert!(
                scheduler.splits > 0,
                "{workers}w/{threshold}: the catalog's monolithic searches must split"
            );
            assert!(
                scheduler.subranges > scheduler.splits,
                "{workers}w/{threshold}: {} subranges vs {} splits",
                scheduler.subranges,
                scheduler.splits
            );
        }
        assert_identical_verdicts(&oracle, &parallel, workers);
        assert_eq!(
            parallel.models_checked(),
            oracle.models_checked(),
            "{workers}w/{threshold}: subrange models_checked must sum to the oracle's"
        );
        assert_eq!(
            parallel.orbits_pruned(),
            oracle.orbits_pruned(),
            "{workers}w/{threshold}: subrange orbits_pruned must sum to the oracle's"
        );
    }
}

/// Differential check on a catalog *with failures*: sabotaged conditions
/// must fail identically — same failing obligation, same counterexample
/// model — no matter how many workers race and no matter how finely the
/// failing searches are split, pinning both early-exit guards (a racing
/// later failure must not replace the first one across obligations, and a
/// racing higher-position counter-model must not replace the
/// minimum-position one within a split obligation).
#[test]
fn failing_conditions_report_the_same_counterexample_in_parallel() {
    use semcommute_core::catalog::interface_catalog;
    use semcommute_core::verify::{verify_condition, ConditionReport};
    use semcommute_prover::queue::{self, ExitGuard, ScheduledObligation};
    use semcommute_prover::{Portfolio, Scope};
    use semcommute_spec::InterfaceId;
    use std::sync::Arc;

    // Sabotage: claim contains/add commute unconditionally (they don't).
    let mut sabotaged = interface_catalog(InterfaceId::Set)
        .into_iter()
        .filter(|c| c.first.op == "contains" && c.second.op == "add")
        .collect::<Vec<_>>();
    assert!(!sabotaged.is_empty());
    for cond in &mut sabotaged {
        cond.formula = semcommute_logic::build::tru();
    }

    let prover = Portfolio::new(Scope::small());
    let oracle: Vec<ConditionReport> = sabotaged
        .iter()
        .enumerate()
        .map(|(i, c)| verify_condition(c, &Portfolio::new(Scope::small()), i))
        .collect();
    assert!(oracle.iter().any(|r| !r.verified()));

    for (workers, split_threshold) in [(2, u64::MAX), (4, u64::MAX), (8, u64::MAX), (4, 1), (8, 64)]
    {
        // Rebuild the method obligations exactly as the driver would and
        // push them through the scheduler.
        let mut items = Vec::new();
        let mut method_ranges = Vec::new();
        for (i, cond) in sabotaged.iter().enumerate() {
            let (soundness, completeness) = semcommute_core::template::testing_methods(cond, i);
            for method in [soundness, completeness] {
                let obs = semcommute_core::vcgen::generate_obligations(&method).unwrap();
                let guard = Arc::new(ExitGuard::new());
                let start = items.len();
                items.extend(obs.into_iter().enumerate().map(|(j, ob)| {
                    ScheduledObligation::new(ob).with_guard(guard.clone(), j as u32)
                }));
                method_ranges.push(start..items.len());
            }
        }
        let run = queue::prove_all_scheduled_split(
            std::slice::from_ref(&prover),
            items,
            workers,
            split_threshold,
        );
        for (m, range) in method_ranges.iter().enumerate() {
            let sequential = if m % 2 == 0 {
                &oracle[m / 2].soundness
            } else {
                &oracle[m / 2].completeness
            };
            // First non-valid verdict in obligation order, as the driver
            // reassembles it.
            let mut parallel: Option<&Verdict> = None;
            for index in range.clone() {
                match &run.verdicts[index] {
                    None => break,
                    Some(v) if !v.is_valid() => {
                        parallel = Some(v);
                        break;
                    }
                    Some(v) => parallel = Some(v),
                }
            }
            let parallel = parallel.expect("at least one obligation per method");
            assert_eq!(
                observable(sequential),
                observable(parallel),
                "{workers} workers at threshold {split_threshold}: method {m} verdict drifted"
            );
        }
    }
}

/// A quick differential pass that also exercises the `limit` knob, so the
/// scheduler is compared against the oracle on truncated catalogs too —
/// including a *pathologically small* split threshold (1: every large
/// search shatters into single-position range tasks, maximizing races on
/// the shared minimum-position guard).
#[test]
fn limited_catalog_matches_oracle() {
    let oracle = verify_catalog(&options(1, Some(10)));
    for (workers, threshold) in [
        (2, VerifyOptions::default().split_threshold),
        (4, 1),
        (8, 7),
    ] {
        let parallel = verify_catalog(&split_options(workers, Some(10), threshold));
        assert_identical_verdicts(&oracle, &parallel, workers);
        assert_eq!(
            parallel.models_checked(),
            oracle.models_checked(),
            "{workers}w/{threshold}: models_checked must reconcile on the truncated catalog"
        );
    }
}

/// Counter reconciliation on one monolithic obligation: the verdict a split
/// run delivers carries the merged statistics of its subranges, and for a
/// fully enumerated (valid) obligation `sum(subrange models_checked)` must
/// equal the unsplit count no matter the threshold.
#[test]
fn split_obligation_stats_reconcile_with_unsplit_prove() {
    use semcommute_logic::build::*;
    use semcommute_prover::queue::{self, ScheduledObligation};
    use semcommute_prover::{Obligation, Portfolio, Scope};

    // Needs the finite-model search over a non-trivial space (the
    // structural prover cannot decide membership-dependent equalities).
    let ob = Obligation::new("reconcile")
        .define("r1", member(var_elem("v1"), var_set("s")))
        .define("s1", set_add(var_set("s"), var_elem("v2")))
        .define("r2", member(var_elem("v1"), var_set("s1")))
        .assume(not(eq(var_elem("v1"), var_elem("v2"))))
        .goal(eq(var_bool("r1"), var_bool("r2")));
    let unsplit = Portfolio::new(Scope::standard()).prove(&ob);
    assert!(unsplit.is_valid());
    assert!(unsplit.stats().models_checked > 0);

    for (workers, threshold) in [(2, 16), (4, 1), (8, 3)] {
        let portfolio = Portfolio::new(Scope::standard());
        let items = vec![ScheduledObligation::new(ob.clone())];
        let run = queue::prove_all_scheduled_split(
            std::slice::from_ref(&portfolio),
            items,
            workers,
            threshold,
        );
        let verdict = run.verdicts[0].as_ref().expect("delivered");
        assert!(verdict.is_valid());
        assert_eq!(
            verdict.stats().models_checked,
            unsplit.stats().models_checked,
            "{workers}w/{threshold}"
        );
        assert_eq!(
            verdict.stats().orbits_pruned,
            unsplit.stats().orbits_pruned,
            "{workers}w/{threshold}"
        );
        assert!(
            run.report.splits > 0 && run.report.subranges > run.report.splits,
            "{workers}w/{threshold}: the search must actually have split"
        );
    }
}
