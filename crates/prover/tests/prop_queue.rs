//! Property-based tests of the work-stealing obligation scheduler: arbitrary
//! obligation multisets are fully drained at any worker count, each unique
//! canonical hash is proved exactly once — including when duplicates race
//! through the worker-side keying + in-flight claim/subscribe path — the
//! dedup accounting balances (`proved + cache_hits + skipped == submitted`),
//! and every verdict matches what a fresh sequential portfolio would have
//! said.

use std::collections::HashSet;

use proptest::prelude::*;

use semcommute_logic::build::*;
use semcommute_prover::{queue, Obligation, Portfolio, Scope, Verdict};

/// A small pool of obligations: valid (structural and finite-model),
/// invalid, and canonical duplicates under different names — so sampled
/// multisets routinely contain both kinds of dedup.
fn obligation() -> impl Strategy<Value = Obligation> {
    prop_oneof![
        // valid, decided structurally
        Just(
            Obligation::new("add_add")
                .define("s1", set_add(var_set("s"), var_elem("v")))
                .goal(eq(
                    set_add(var_set("s1"), var_elem("w")),
                    set_add(set_add(var_set("s"), var_elem("v")), var_elem("w"))
                ))
        ),
        // the same obligation, renamed: canonically identical
        Just(
            Obligation::new("add_add_again")
                .define("s1", set_add(var_set("s"), var_elem("v")))
                .goal(eq(
                    set_add(var_set("s1"), var_elem("w")),
                    set_add(set_add(var_set("s"), var_elem("v")), var_elem("w"))
                ))
        ),
        // valid, needs the finite-model search
        Just(
            Obligation::new("member_after_add")
                .define("s1", set_add(var_set("s"), var_elem("v")))
                .goal(member(var_elem("v"), var_set("s1")))
        ),
        // invalid: has a counterexample
        Just(Obligation::new("bogus_membership").goal(member(var_elem("v"), var_set("s")))),
        Just(Obligation::new("bogus_equality").goal(eq(var_elem("a"), var_elem("b")))),
        // invalid, about cardinality
        Just(Obligation::new("bogus_card").goal(eq(card(var_set("s")), int(1)))),
        // valid, integer reasoning
        Just(
            Obligation::new("inc_dec")
                .define("c1", add(var_int("c"), var_int("v")))
                .define("c2", sub(var_int("c1"), var_int("v")))
                .goal(eq(var_int("c2"), var_int("c")))
        ),
    ]
}

fn multiset() -> impl Strategy<Value = Vec<Obligation>> {
    proptest::collection::vec(obligation(), 0..24)
}

/// The observable part of a verdict (kind + counterexample), for comparing
/// scheduler output against the sequential baseline.
fn observable(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Valid { .. } => "valid".to_string(),
        Verdict::CounterModel { model, .. } => format!("counterexample:\n{model}"),
        Verdict::Unknown { reason, .. } => format!("unknown: {reason}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submission gets a verdict, unique canonical hashes are proved
    /// exactly once, and the accounting balances at any worker count.
    #[test]
    fn scheduler_drains_and_dedups(obligations in multiset(), workers in 1usize..9) {
        let portfolio = Portfolio::new(Scope::small());
        let unique: HashSet<u128> = obligations
            .iter()
            .map(|ob| portfolio.canonical_key(ob))
            .collect();
        let run = queue::prove_all(&portfolio, &obligations, workers);

        // Fully drained: one verdict per submission, none skipped.
        prop_assert_eq!(run.verdicts.len(), obligations.len());
        prop_assert!(run.verdicts.iter().all(|v| v.is_some()));
        prop_assert_eq!(run.report.skipped, 0);

        // Each unique canonical hash proved exactly once...
        prop_assert_eq!(run.report.submitted, obligations.len());
        prop_assert_eq!(run.report.unique, unique.len());
        prop_assert_eq!(run.report.proved, unique.len() as u64);
        prop_assert_eq!(portfolio.cached_verdicts(), unique.len());

        // ... and the dedup accounting balances.
        prop_assert_eq!(
            run.report.cache_hits + run.report.proved,
            run.report.submitted as u64
        );
    }

    /// Scheduler verdicts are observationally identical to proving each
    /// submission on a fresh sequential portfolio.
    #[test]
    fn scheduler_verdicts_match_sequential(obligations in multiset(), workers in 2usize..9) {
        let run = queue::prove_all(&Portfolio::new(Scope::small()), &obligations, workers);
        let sequential = Portfolio::new(Scope::small());
        for (ob, verdict) in obligations.iter().zip(&run.verdicts) {
            let expected = sequential.prove(ob);
            prop_assert_eq!(
                observable(verdict.as_ref().expect("drained")),
                observable(&expected),
                "verdict for `{}` drifted under {} workers", &ob.name, workers
            );
        }
    }

    /// A second run over a warm shared cache proves nothing new: every
    /// submission is answered by the sharded verdict cache.
    #[test]
    fn warm_cache_answers_everything(obligations in multiset(), workers in 1usize..9) {
        let portfolio = Portfolio::new(Scope::small());
        let first = queue::prove_all(&portfolio, &obligations, workers);
        prop_assert_eq!(first.report.proved as usize, first.report.unique);
        let second = queue::prove_all(&portfolio, &obligations, workers);
        prop_assert_eq!(second.report.proved, 0);
        prop_assert_eq!(second.report.cache_hits, obligations.len() as u64);
        for (a, b) in first.verdicts.iter().zip(&second.verdicts) {
            prop_assert_eq!(
                observable(a.as_ref().unwrap()),
                observable(b.as_ref().unwrap())
            );
        }
    }
}

/// Early-exit guards: obligations after a failing index may be skipped
/// (each submission checks its own guard when popped — keying included, a
/// skipped submission is never interned), but the failing index itself is
/// always proved, and a *live* group's submission of a shared canonical
/// hash is never lost to another group's failure.
#[test]
fn exit_guard_skips_only_later_indices() {
    use queue::{ExitGuard, ScheduledObligation};
    use std::sync::Arc;

    let portfolio = Portfolio::new(Scope::small());
    let failing = Obligation::new("fails").goal(member(var_elem("v"), var_set("s")));
    let valid = Obligation::new("holds").goal(eq(var_int("x"), var_int("x")));
    let late = Obligation::new("late").goal(eq(var_int("y"), var_int("y")));

    for workers in [1, 2, 4] {
        let guard = Arc::new(ExitGuard::new());
        let live = Arc::new(ExitGuard::new());
        let items = vec![
            ScheduledObligation::new(valid.clone()).with_guard(guard.clone(), 0),
            ScheduledObligation::new(failing.clone()).with_guard(guard.clone(), 1),
            // Same group, above the failure: skippable (and at one worker,
            // where the failure is always observed first, skipped)...
            ScheduledObligation::new(late.clone()).with_guard(guard.clone(), 2),
            // ... while the same canonical hash at index 0 of a live group
            // must always be proved and delivered.
            ScheduledObligation::new(late.clone()).with_guard(live.clone(), 0),
        ];
        let run = queue::prove_all_scheduled(std::slice::from_ref(&portfolio), items, workers);
        assert_eq!(guard.failed_at(), Some(1), "{workers} workers");
        assert_eq!(live.failed_at(), None);
        assert!(run.verdicts[0].as_ref().unwrap().is_valid());
        assert!(run.verdicts[1].as_ref().unwrap().is_counterexample());
        assert!(
            run.verdicts[3].as_ref().unwrap().is_valid(),
            "a live group's submission survives another group's failure"
        );
        // Index 2 is in the failed group above the failure: whether it was
        // skipped or raced to a verdict, the accounting must balance and a
        // delivered verdict must be the real one.
        if let Some(v) = &run.verdicts[2] {
            assert!(v.is_valid());
        }
        assert_eq!(
            run.report.proved + run.report.cache_hits + run.report.skipped,
            run.report.submitted as u64,
            "{workers} workers"
        );
        if workers == 1 {
            // In-order draining observes the failure before popping 2.
            assert!(run.verdicts[2].is_none(), "skipped after the failure");
            assert_eq!(run.report.skipped, 1);
            // Only the hashes of popped-and-live submissions reach the
            // in-flight table ("holds" and "late" both simplify to `true`,
            // so they share one canonical hash with or without index 2).
            let live: HashSet<u128> = [&valid, &failing, &late]
                .iter()
                .map(|ob| portfolio.canonical_key(ob))
                .collect();
            assert_eq!(run.report.unique, live.len());
        }
    }

    // Without the live subscription the later obligation may be skipped —
    // at one worker (deterministic in-order draining) it always is.
    let guard = Arc::new(ExitGuard::new());
    let items = vec![
        ScheduledObligation::new(failing).with_guard(guard.clone(), 0),
        ScheduledObligation::new(late).with_guard(guard.clone(), 1),
    ];
    let run = queue::prove_all_scheduled(std::slice::from_ref(&portfolio), items, 1);
    assert_eq!(guard.failed_at(), Some(0));
    assert!(run.verdicts[0].as_ref().unwrap().is_counterexample());
    assert!(run.verdicts[1].is_none(), "skipped after the failure");
    assert_eq!(run.report.skipped, 1);
    assert_eq!(
        run.report.proved + run.report.cache_hits + run.report.skipped,
        run.report.submitted as u64
    );
}

/// The in-flight dedup path: many duplicate submissions of obligations that
/// actually cost prover work, drained at high worker counts so claim races
/// are common. Each canonical hash must be proved exactly once per run, the
/// accounting must balance, and — run twice over one shared cache — the
/// second run must answer everything from the cache even though keying
/// happens concurrently on the workers.
#[test]
fn in_flight_dedup_proves_each_hash_once_under_contention() {
    let slow = Obligation::new("slow")
        .define("r1", member(var_elem("v1"), var_set("s")))
        .define("s1", set_add(var_set("s"), var_elem("v2")))
        .define("r2", member(var_elem("v1"), var_set("s1")))
        .assume(not(eq(var_elem("v1"), var_elem("v2"))))
        .goal(eq(var_bool("r1"), var_bool("r2")));
    let other = Obligation::new("other")
        .define("s1", set_add(var_set("s"), var_elem("v")))
        .goal(member(var_elem("v"), var_set("s1")));
    // 24 submissions, 2 unique hashes, 8 workers: most pops lose the claim
    // race and go through subscribe or publish-time dedup.
    let obligations: Vec<Obligation> = (0..24)
        .map(|i| {
            if i % 2 == 0 {
                slow.clone()
            } else {
                other.clone()
            }
        })
        .collect();
    let portfolio = Portfolio::new(Scope::small());
    let run = queue::prove_all(&portfolio, &obligations, 8);
    assert_eq!(run.report.submitted, 24);
    assert_eq!(run.report.unique, 2);
    assert_eq!(run.report.proved, 2, "each hash proved exactly once");
    assert_eq!(run.report.cache_hits, 22);
    assert_eq!(run.report.skipped, 0);
    assert!(run.verdicts.iter().all(|v| v.as_ref().unwrap().is_valid()));
    // The proving submissions carry the real work counters; every duplicate
    // is a pure dedup hit.
    let worked = run
        .verdicts
        .iter()
        .filter(|v| v.as_ref().unwrap().stats().cache_hits == 0)
        .count();
    assert_eq!(worked, 2);

    let second = queue::prove_all(&portfolio, &obligations, 8);
    assert_eq!(second.report.proved, 0, "warm cache answers every claim");
    assert_eq!(second.report.cache_hits, 24);
    assert_eq!(second.report.unique, 2);
}
