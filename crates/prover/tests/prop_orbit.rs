//! Property tests of the orbit reduction, pinning the three facts its
//! soundness argument rests on:
//!
//! 1. **Canonicality** — every candidate the reduced enumerator emits is the
//!    lex-least member of its orbit under permutations of the padding block;
//! 2. **Reachability** — every candidate of the *unreduced* enumeration is
//!    the image of some emitted candidate under a padding permutation (the
//!    reduction drops only redundant representatives, never an orbit);
//! 3. **Invariance** — evaluation cannot tell a model from its permuted
//!    image, so checking one representative per orbit decides the same
//!    obligations: `eval` returns the same truth value on permuted models,
//!    and the reduced and unreduced finite-model searches reach the same
//!    verdict kind (with cross-replayable counterexamples).

use std::collections::{BTreeMap, HashSet};

use proptest::prelude::*;

use semcommute_logic::build::*;
use semcommute_logic::{eval_bool, Model, Sort, Term, Value};
use semcommute_prover::orbit::{block_permutations, is_canonical, padding_block};
use semcommute_prover::{FiniteModelProver, InputSpace, Obligation, Scope};

/// A deliberately tiny scope so the exhaustive inner loops stay fast: the
/// properties quantify over *whole enumerations*, not samples of them.
fn tiny_scope(elem_padding: usize) -> Scope {
    Scope {
        elem_padding,
        max_collection_entries: 2,
        max_seq_len: 2,
        int_min: 0,
        int_max: 1,
        max_models: 5_000_000,
        orbit: true,
        bytecode: false,
    }
}

fn to_vars(pairs: &[(&str, Sort)]) -> BTreeMap<String, Sort> {
    pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect()
}

/// The padding block of a concrete model: everything past the largest
/// element class a (non-null) element variable pins.
fn model_block(model: &Model, elem_padding: usize) -> std::ops::Range<u32> {
    let max_class = model
        .iter()
        .filter_map(|(_, v)| v.as_elem())
        .filter(|e| !e.is_null())
        .map(|e| e.0)
        .max()
        .unwrap_or(0);
    padding_block(max_class, elem_padding)
}

/// Input-variable configurations mixing the collection shapes; every
/// combination keeps the exhaustive checks below under a few thousand
/// candidates.
fn var_config() -> impl Strategy<Value = Vec<(&'static str, Sort)>> {
    prop_oneof![
        Just(vec![("s", Sort::Set)]),
        Just(vec![("s", Sort::Set), ("t", Sort::Set)]),
        Just(vec![("v", Sort::Elem), ("s", Sort::Set)]),
        Just(vec![("q", Sort::Seq)]),
        Just(vec![("v", Sort::Elem), ("q", Sort::Seq), ("s", Sort::Set)]),
        Just(vec![("m", Sort::Map)]),
        Just(vec![("v", Sort::Elem), ("m", Sort::Map)]),
        Just(vec![("b", Sort::Bool), ("q", Sort::Seq), ("s", Sort::Set)]),
    ]
}

fn padding() -> impl Strategy<Value = usize> {
    // Mostly the catalog's block size (2, one transposition); sometimes 3,
    // where the permutation group is non-abelian and per-slot reasoning
    // would break down if the check were not joint. (The vendored proptest
    // has no weighted prop_oneof; repetition approximates the weights.)
    prop_oneof![Just(2usize), Just(2usize), Just(3usize)]
}

/// Well-sorted boolean goals over `v: Elem`, `s: Set`, `q: Seq`, `m: Map` —
/// some valid in the tiny scope, some refutable.
fn goal() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(member(var_elem("v"), var_set("s"))),
        Just(member(var_elem("v"), set_add(var_set("s"), var_elem("v")))),
        Just(not(member(
            var_elem("v"),
            set_remove(var_set("s"), var_elem("v"))
        ))),
        Just(eq(card(var_set("s")), int(1))),
        Just(implies(
            member(var_elem("v"), var_set("s")),
            gt(card(var_set("s")), int(0))
        )),
        Just(seq_contains(var_seq("q"), var_elem("v"))),
        Just(eq(seq_index_of(var_seq("q"), var_elem("v")), int(0))),
        Just(eq(seq_at(var_seq("q"), int(0)), var_elem("v"))),
        Just(eq(seq_len(var_seq("q")), card(var_set("s")))),
        Just(map_has_key(var_map("m"), var_elem("v"))),
        Just(eq(map_get(var_map("m"), var_elem("v")), var_elem("v"))),
        Just(eq(
            set_remove(set_add(var_set("s"), var_elem("v")), var_elem("v")),
            var_set("s")
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (1) Every candidate the reduced enumerator emits is canonical.
    #[test]
    fn every_enumerated_candidate_is_canonical(
        vars in var_config(),
        elem_padding in padding(),
    ) {
        let scope = tiny_scope(elem_padding).with_orbit(true);
        let space = InputSpace::new(&to_vars(&vars), scope);
        let mut emitted = 0usize;
        for model in space.iter() {
            let block = model_block(&model, elem_padding);
            // Model iteration is name-ordered; element/bool slots are fixed
            // points of the action, so their interleaving cannot change the
            // joint lexicographic comparison over the collection slots.
            let values: Vec<Value> = model.iter().map(|(_, v)| v.clone()).collect();
            prop_assert!(
                is_canonical(&values, block),
                "non-canonical candidate emitted: {model}"
            );
            emitted += 1;
        }
        prop_assert!(emitted > 0);
    }

    /// (2) Every unreduced candidate is reachable from an emitted one by a
    /// padding permutation: the orbits are covered exactly.
    #[test]
    fn every_concrete_candidate_is_reachable_from_an_emitted_one(
        vars in var_config(),
        elem_padding in padding(),
    ) {
        let scope = tiny_scope(elem_padding);
        let vars = to_vars(&vars);
        let canonical: HashSet<String> = InputSpace::new(&vars, scope.clone().with_orbit(true))
            .iter()
            .map(|m| m.to_string())
            .collect();
        let mut unreduced = 0usize;
        for model in InputSpace::new(&vars, scope.with_orbit(false)).iter() {
            unreduced += 1;
            let block = model_block(&model, elem_padding);
            let reachable = block_permutations(block).iter().any(|perm| {
                let image = Model::from_bindings(
                    model
                        .iter()
                        .map(|(name, value)| (name.to_string(), perm.apply_value(value))),
                );
                canonical.contains(&image.to_string())
            });
            prop_assert!(reachable, "orbit of {model} lost by the reduction");
        }
        prop_assert!(canonical.len() <= unreduced);
    }

    /// (3a) Evaluation is invariant under padding permutations: a closed
    /// boolean term evaluates identically on a model and on its image.
    #[test]
    fn eval_is_invariant_under_padding_permutations(
        goal in goal(),
        elem_padding in padding(),
    ) {
        let vars = to_vars(&[
            ("v", Sort::Elem),
            ("s", Sort::Set),
            ("q", Sort::Seq),
            ("m", Sort::Map),
        ]);
        let scope = tiny_scope(elem_padding).with_orbit(false);
        for model in InputSpace::new(&vars, scope).iter().take(120) {
            let expected = eval_bool(&goal, &model).unwrap();
            let block = model_block(&model, elem_padding);
            for perm in block_permutations(block) {
                let image = Model::from_bindings(
                    model
                        .iter()
                        .map(|(name, value)| (name.to_string(), perm.apply_value(value))),
                );
                prop_assert_eq!(
                    eval_bool(&goal, &image).unwrap(),
                    expected,
                    "eval distinguished {} from its image {}",
                    &model,
                    &image
                );
            }
        }
    }

    /// (3b) The reduced and unreduced searches decide every obligation the
    /// same way, and each one's counterexample refutes under the other.
    #[test]
    fn orbit_on_and_off_reach_the_same_verdict(goal in goal()) {
        let ob = Obligation::new("prop_orbit").goal(goal);
        let on = FiniteModelProver::new(tiny_scope(2).with_orbit(true));
        let off = FiniteModelProver::new(tiny_scope(2).with_orbit(false));
        let on_verdict = on.prove(&ob);
        let off_verdict = off.prove(&ob);
        prop_assert_eq!(on_verdict.is_valid(), off_verdict.is_valid());
        prop_assert_eq!(
            on_verdict.is_counterexample(),
            off_verdict.is_counterexample()
        );
        for (found_by, checked_with, verdict) in
            [(&on, &off, &on_verdict), (&off, &on, &off_verdict)]
        {
            if let Some(full) = verdict.counter_model() {
                let inputs = found_by.project_inputs(&ob, full);
                prop_assert!(
                    checked_with.replay(&ob, &inputs).is_some(),
                    "counterexample does not cross-replay: {}", full
                );
            }
        }
        // A fully enumerated (valid) obligation reconciles exactly.
        if on_verdict.is_valid() {
            prop_assert_eq!(
                on_verdict.stats().models_checked + on_verdict.stats().orbits_pruned,
                off_verdict.stats().models_checked
            );
        }
    }
}
