//! Differential soundness harness: the batched bytecode evaluator against
//! the tree-walk oracle.
//!
//! The bytecode backend re-implements the whole candidate-evaluation pipeline
//! — lowering, constant pooling, short-circuit regions, 256-lane batched
//! execution with scalar fallback — so its claim to *bit-identical* semantics
//! is exactly the kind that must be pinned exhaustively. This harness runs
//! the **full catalog** (every condition of all four interfaces) under both
//! evaluators, at one and at four scheduler workers, with the orbit reduction
//! on and off, and compares verdict by verdict: kinds, counter-models, and
//! `Unknown` reasons must be equal, and the work counters must reconcile
//! exactly (the two backends enumerate the same candidates in the same
//! order). A second test sabotages conditions so the *refuted* path is
//! exercised too — the bytecode search must report byte-for-byte the same
//! minimum-position counterexample as the tree walk, and that model must
//! replay under the tree-walk oracle prover.
//!
//! The ArrayList sequence scope is 3 here (as in the orbit and parallel
//! differential harnesses) so that eight full-catalog runs stay fast in
//! debug builds; the scope is a verification parameter, not a truncation of
//! the catalog.

use semcommute_core::verify::{verify_catalog, CatalogReport, VerifyOptions};
use semcommute_prover::{FiniteModelProver, Portfolio, Scope, Verdict};

fn options(threads: usize, orbit: bool, bytecode: bool) -> VerifyOptions {
    VerifyOptions {
        threads,
        seq_len: 3,
        limit: None,
        orbit,
        bytecode,
        ..VerifyOptions::default()
    }
}

fn kind(verdict: &Verdict) -> &'static str {
    match verdict {
        Verdict::Valid { .. } => "valid",
        Verdict::CounterModel { .. } => "counterexample",
        Verdict::Unknown { .. } => "unknown",
    }
}

fn unknown_reason(verdict: &Verdict) -> Option<&str> {
    match verdict {
        Verdict::Unknown { reason, .. } => Some(reason),
        _ => None,
    }
}

/// Verdict-by-verdict equality between a bytecode and a tree-walk catalog
/// run: kind, counter-model, and `Unknown` reason all match.
fn assert_same_verdicts(bc: &CatalogReport, tree: &CatalogReport, label: &str) {
    assert_eq!(bc.interfaces.len(), tree.interfaces.len());
    for (bc_report, tree_report) in bc.interfaces.iter().zip(&tree.interfaces) {
        assert_eq!(bc_report.interface, tree_report.interface);
        assert_eq!(bc_report.total(), tree_report.total());
        for (bc_cond, tree_cond) in bc_report.reports.iter().zip(&tree_report.reports) {
            assert_eq!(bc_cond.condition.id(), tree_cond.condition.id());
            for (leg, bc_verdict, tree_verdict) in [
                ("soundness", &bc_cond.soundness, &tree_cond.soundness),
                (
                    "completeness",
                    &bc_cond.completeness,
                    &tree_cond.completeness,
                ),
            ] {
                let id = bc_cond.condition.id();
                assert_eq!(
                    kind(bc_verdict),
                    kind(tree_verdict),
                    "{label}: {id} {leg} verdict kind differs between evaluators",
                );
                assert_eq!(
                    bc_verdict.counter_model(),
                    tree_verdict.counter_model(),
                    "{label}: {id} {leg} counter-model differs between evaluators",
                );
                assert_eq!(
                    unknown_reason(bc_verdict),
                    unknown_reason(tree_verdict),
                    "{label}: {id} {leg} Unknown reason differs between evaluators",
                );
            }
        }
    }
}

/// The full catalog under both evaluators, at 1 and 4 workers, orbit on and
/// off: verdicts (kinds, counter-models, `Unknown` reasons) are identical,
/// and — because every obligation verifies, so every space is fully
/// enumerated — `models_checked` and `orbits_pruned` reconcile exactly. The
/// batch counters confirm which backend actually ran.
#[test]
fn full_catalog_verdicts_identical_under_both_evaluators() {
    for threads in [1, 4] {
        for orbit in [true, false] {
            let label = format!("threads={threads} orbit={orbit}");
            let bc = verify_catalog(&options(threads, orbit, true));
            let tree = verify_catalog(&options(threads, orbit, false));
            for report in bc.interfaces.iter().chain(&tree.interfaces) {
                assert_eq!(
                    report.verified_count(),
                    report.total(),
                    "{label}: the catalog verifies under both evaluators"
                );
            }
            assert_same_verdicts(&bc, &tree, &label);

            assert_eq!(
                bc.models_checked(),
                tree.models_checked(),
                "{label}: the evaluators enumerate the same candidates"
            );
            assert_eq!(
                bc.orbits_pruned(),
                tree.orbits_pruned(),
                "{label}: the evaluators prune the same candidates"
            );
            assert_eq!(tree.batches(), 0, "{label}: the tree walk never batches");
            assert!(
                bc.batches() > 0,
                "{label}: the bytecode backend must actually batch"
            );
            assert!(
                bc.batch_fallbacks() <= bc.batches() * 256,
                "{label}: fallback lanes are bounded by the block size"
            );
            assert!(
                bc.instrs_executed() > 0,
                "{label}: the bytecode backend must report instruction work"
            );
        }
    }
}

/// Sabotaged conditions (claiming `contains`/`add` commute unconditionally)
/// exercise the refuted path: the bytecode search must report the *same*
/// minimum-position counterexample as the tree walk — not merely an
/// equivalent refutation — and that model must replay under the tree-walk
/// oracle prover. Run with the orbit reduction both on and off so the
/// batched scan is exercised over both enumerators.
#[test]
fn sabotaged_counterexamples_match_the_tree_walk_exactly() {
    use semcommute_core::catalog::interface_catalog;
    use semcommute_spec::InterfaceId;

    let mut sabotaged = interface_catalog(InterfaceId::Set)
        .into_iter()
        .filter(|c| c.first.op == "contains" && c.second.op == "add")
        .collect::<Vec<_>>();
    assert!(!sabotaged.is_empty());
    for cond in &mut sabotaged {
        cond.formula = semcommute_logic::build::tru();
    }

    for orbit in [true, false] {
        let scope = Scope::standard().with_orbit(orbit);
        let portfolio_bc = Portfolio::new(scope.clone().with_bytecode(true));
        let portfolio_tree = Portfolio::new(scope.clone().with_bytecode(false));
        let oracle = FiniteModelProver::new(scope.with_bytecode(false));

        let mut refutations = 0;
        for (i, cond) in sabotaged.iter().enumerate() {
            let (soundness, completeness) = semcommute_core::template::testing_methods(cond, i);
            for method in [soundness, completeness] {
                for ob in semcommute_core::vcgen::generate_obligations(&method).unwrap() {
                    let bc = portfolio_bc.prove(&ob);
                    let tree = portfolio_tree.prove(&ob);
                    assert_eq!(kind(&bc), kind(&tree), "{}", ob.name);
                    assert_eq!(
                        bc.counter_model(),
                        tree.counter_model(),
                        "orbit={orbit} {}: the evaluators must report the same \
                         minimum-position counterexample",
                        ob.name
                    );
                    assert_eq!(
                        bc.stats().models_checked,
                        tree.stats().models_checked,
                        "orbit={orbit} {}: the sequential scans stop at the same candidate",
                        ob.name
                    );
                    assert_eq!(bc.stats().orbits_pruned, tree.stats().orbits_pruned);
                    let Some(full) = bc.counter_model() else {
                        continue;
                    };
                    refutations += 1;
                    let inputs = oracle.project_inputs(&ob, full);
                    assert!(
                        oracle.replay(&ob, &inputs).is_some(),
                        "{}: the tree-walk oracle does not refute {full}",
                        ob.name
                    );
                }
            }
        }
        assert!(refutations > 0, "the sabotage must produce refutations");
    }
}
