//! Property-based tests of the bytecode backend: random obligations built
//! from every term shape — including ill-sorted subterms and oversized
//! quantifier ranges — lower and execute exactly like the tree-walk
//! reference evaluator, candidate by candidate; and the batched block
//! executor agrees with the scalar executor at *every* block size, so batch
//! boundaries never change the deciding event, its counter-model, or its
//! error message.

use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use semcommute_logic::build::*;
use semcommute_logic::eval::MAX_QUANTIFIER_RANGE;
use semcommute_logic::{Model, Term};
use semcommute_prover::bytecode::{BlockEvent, Program, LANES};
use semcommute_prover::compiled::CompiledObligation;
use semcommute_prover::space::{BlockBuf, InputSpace};
use semcommute_prover::{Obligation, Scope};

/// A tiny scope keeping whole-space scans fast in debug builds while still
/// exercising sets, maps, sequences, padding permutations, and integers.
fn tiny_scope(orbit: bool) -> Scope {
    Scope {
        elem_padding: 2,
        max_collection_entries: 2,
        max_seq_len: 2,
        int_min: 0,
        int_max: 1,
        max_models: 5_000_000,
        orbit,
        bytecode: false,
    }
}

fn int_leaf() -> impl Strategy<Value = Term> {
    prop_oneof![
        (-1i64..3).prop_map(int),
        Just(var_int("i")),
        Just(card(var_set("s"))),
        Just(map_size(var_map("m"))),
        Just(seq_len(var_seq("q"))),
        Just(seq_index_of(var_seq("q"), var_elem("a"))),
        Just(seq_last_index_of(var_seq("q"), var_elem("a"))),
    ]
}

fn int_expr() -> impl Strategy<Value = Term> {
    (int_leaf(), int_leaf(), 0..4u8).prop_map(|(a, b, k)| match k {
        0 => add(a, b),
        1 => sub(a, b),
        2 => neg(a),
        _ => a,
    })
}

fn elem_expr() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(var_elem("a")),
        Just(var_elem("b")),
        Just(null()),
        // `map_get` of an absent key and `seq_at` out of range both
        // totalize to `null`, so these exercise the NULL_ELEM paths.
        Just(map_get(var_map("m"), var_elem("a"))),
        int_expr().prop_map(|i| seq_at(var_seq("q"), i)),
    ]
}

fn set_expr() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(var_set("s")),
        Just(empty_set()),
        elem_expr().prop_map(|e| set_add(var_set("s"), e)),
        elem_expr().prop_map(|e| set_remove(var_set("s"), e)),
    ]
}

fn map_expr() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(var_map("m")),
        Just(empty_map()),
        (elem_expr(), elem_expr()).prop_map(|(k, v)| map_put(var_map("m"), k, v)),
        elem_expr().prop_map(|k| map_remove(var_map("m"), k)),
    ]
}

fn seq_expr() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(var_seq("q")),
        Just(empty_seq()),
        // Insertion clamps, removal and update out of range are ignored —
        // all three totalization rules must survive lowering.
        (int_expr(), elem_expr()).prop_map(|(i, e)| seq_insert_at(var_seq("q"), i, e)),
        int_expr().prop_map(|i| seq_remove_at(var_seq("q"), i)),
        (int_expr(), elem_expr()).prop_map(|(i, e)| seq_set_at(var_seq("q"), i, e)),
    ]
}

fn bool_leaf() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just(tru()),
        Just(fls()),
        (elem_expr(), set_expr()).prop_map(|(e, s)| member(e, s)),
        (map_expr(), elem_expr()).prop_map(|(m, k)| map_has_key(m, k)),
        (seq_expr(), elem_expr()).prop_map(|(s, e)| seq_contains(s, e)),
        (int_expr(), int_expr()).prop_map(|(a, b)| eq(a, b)),
        (elem_expr(), elem_expr()).prop_map(|(a, b)| eq(a, b)),
        (set_expr(), set_expr()).prop_map(|(a, b)| eq(a, b)),
        (map_expr(), map_expr()).prop_map(|(a, b)| eq(a, b)),
        (seq_expr(), seq_expr()).prop_map(|(a, b)| eq(a, b)),
        (int_expr(), int_expr()).prop_map(|(a, b)| lt(a, b)),
        (int_expr(), int_expr()).prop_map(|(a, b)| le(a, b)),
        // Ill-sorted shapes: the error message (with its wrapping context)
        // must come out identical from both evaluators.
        Just(eq(card(var_elem("a")), int(0))),
        (int_expr(), set_expr()).prop_map(|(a, b)| eq(a, b)),
        Just(member(var_int("i"), var_set("s"))),
        Just(and2(tru(), card(var_set("s")))),
        // An oversized quantifier range, data-dependently: the width
        // crosses `MAX_QUANTIFIER_RANGE` only when the set is empty.
        Just(exists_int(
            "j",
            int(0),
            add(int(MAX_QUANTIFIER_RANGE + 1), neg(card(var_set("s")))),
            tru(),
        )),
    ]
}

fn bool_expr_at(depth: u32) -> BoxedStrategy<Term> {
    if depth == 0 {
        return bool_leaf().boxed();
    }
    let inner = bool_expr_at(depth - 1);
    prop_oneof![
        bool_leaf(),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| and2(a, b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| or2(a, b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| implies(a, b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| iff(a, b)),
        inner.clone().prop_map(not),
        (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| ite(c, t, e)),
        // A genuinely enumerated bounded quantifier whose body mixes the
        // binder with free variables (and shadows `j` one level down).
        (inner.clone(), 0..3i64).prop_map(|(b, hi)| {
            forall_int(
                "j",
                int(0),
                int(hi),
                or2(le(var_int("j"), int(1)), and2(b, le(int(0), var_int("j")))),
            )
        }),
    ]
    .boxed()
}

fn bool_expr() -> BoxedStrategy<Term> {
    bool_expr_at(2)
}

/// A random obligation: an optional bool define (consumed by the goal), an
/// optional hypothesis (exercising the input-only precondition short
/// circuit), and a goal.
fn obligation() -> impl Strategy<Value = Obligation> {
    (
        (bool_expr(), bool_expr(), bool_expr()),
        (proptest::bool::ANY, proptest::bool::ANY),
    )
        .prop_map(|((b1, b2, b3), (use_define, use_hyp))| {
            let mut ob = Obligation::new("prop_bytecode");
            let goal = if use_define {
                ob = ob.define("d1", b1);
                and2(var_bool("d1"), b3)
            } else {
                b3
            };
            if use_hyp {
                ob = ob.assume(b2);
            }
            ob.goal(goal)
        })
}

/// The outcome of a whole-space scan: how many candidates were cleanly
/// passed before the deciding event, and the event itself.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Exhausted(u64),
    Cex(u64, Model),
    Error(u64, String),
}

/// The reference scan: the tree-walk evaluator, candidate by candidate.
fn tree_scan(space: &InputSpace, compiled: &CompiledObligation) -> Outcome {
    let mut it = space.iter();
    let mut env = compiled.env();
    let mut buf = Vec::new();
    let mut seen = 0u64;
    while it.next_values(&mut buf) {
        match compiled.check(&mut buf, &mut env) {
            Ok(None) => seen += 1,
            Ok(Some(())) => return Outcome::Cex(seen, compiled.reconstruct(&env)),
            Err(e) => return Outcome::Error(seen, e),
        }
    }
    Outcome::Exhausted(seen)
}

/// The scalar bytecode scan, candidate by candidate.
fn scalar_scan(space: &InputSpace, program: &Program) -> Outcome {
    let mut it = space.iter();
    let mut exec = program.scalar_exec();
    let mut buf = Vec::new();
    let mut seen = 0u64;
    while it.next_values(&mut buf) {
        match program.check(&mut buf, &mut exec) {
            Ok(None) => seen += 1,
            Ok(Some(())) => return Outcome::Cex(seen, program.reconstruct(&exec)),
            Err(e) => return Outcome::Error(seen, e),
        }
    }
    Outcome::Exhausted(seen)
}

/// The batched scan at an arbitrary block size.
fn block_scan(space: &InputSpace, program: &Program, block_size: usize) -> Outcome {
    let mut it = space.iter();
    let mut block = BlockBuf::new();
    let mut exec = program.block_exec();
    let mut seen = 0u64;
    loop {
        let lanes = it.next_block(block_size, &mut block);
        if lanes == 0 {
            return Outcome::Exhausted(seen);
        }
        match program.run_block(&block, &mut exec) {
            None => seen += lanes as u64,
            Some(BlockEvent::Counterexample(lane)) => {
                return Outcome::Cex(seen + lane as u64, program.reconstruct_lane(&exec, lane))
            }
            Some(BlockEvent::Error(lane, e)) => return Outcome::Error(seen + lane as u64, e),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lowering preserves the reference semantics exactly: over the whole
    /// candidate space the scalar bytecode executor reports the same
    /// deciding event — same candidate, same counter-model, same wrapped
    /// error message — as the tree walk.
    #[test]
    fn scalar_execution_matches_the_tree_walk(ob in obligation(), orbit in proptest::bool::ANY) {
        let space = InputSpace::from_obligation(&ob, tiny_scope(orbit));
        prop_assume!(space.estimated_size() <= 2_000);
        let compiled = CompiledObligation::compile(&ob, &space.var_order());
        let program = Program::lower(&compiled);
        prop_assert_eq!(tree_scan(&space, &compiled), scalar_scan(&space, &program));
    }

    /// Batch boundaries never change the deciding event: the block executor
    /// agrees with the scalar executor at every block size, including sizes
    /// that land the event first, last, and alone in a block.
    #[test]
    fn block_execution_matches_scalar_at_every_block_size(
        ob in obligation(),
        orbit in proptest::bool::ANY,
    ) {
        let space = InputSpace::from_obligation(&ob, tiny_scope(orbit));
        prop_assume!(space.estimated_size() <= 2_000);
        let compiled = CompiledObligation::compile(&ob, &space.var_order());
        let program = Program::lower(&compiled);
        let reference = scalar_scan(&space, &program);
        for block_size in [1usize, 2, 3, 7, 64, LANES] {
            prop_assert_eq!(
                &block_scan(&space, &program, block_size),
                &reference,
                "block size {} changed the outcome",
                block_size
            );
        }
    }
}
