//! Property-based tests of the prover: verdicts agree with brute-force
//! evaluation, counterexamples really are counterexamples, and the structural
//! prover never disagrees with the finite-model prover.

use proptest::prelude::*;

use semcommute_logic::build::*;
use semcommute_logic::{eval_bool, Term};
use semcommute_prover::{FiniteModelProver, Obligation, Portfolio, Scope};

/// Small set-algebra goals over a set variable and two element variables —
/// some valid, some not.
fn goal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // valid
        Just(member(var_elem("a"), set_add(var_set("s"), var_elem("a")))),
        Just(not(member(
            var_elem("a"),
            set_remove(var_set("s"), var_elem("a"))
        ))),
        Just(eq(
            set_add(set_add(var_set("s"), var_elem("a")), var_elem("b")),
            set_add(set_add(var_set("s"), var_elem("b")), var_elem("a"))
        )),
        Just(le(
            card(set_remove(var_set("s"), var_elem("a"))),
            card(var_set("s"))
        )),
        Just(implies(
            member(var_elem("a"), var_set("s")),
            gt(card(var_set("s")), int(0))
        )),
        // invalid
        Just(member(var_elem("a"), var_set("s"))),
        Just(eq(var_elem("a"), var_elem("b"))),
        Just(eq(
            set_remove(set_add(var_set("s"), var_elem("a")), var_elem("b")),
            set_add(set_remove(var_set("s"), var_elem("b")), var_elem("a"))
        )),
        Just(eq(card(var_set("s")), int(1))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A counterexample reported by the finite-model prover really falsifies
    /// the obligation, and a validity verdict survives replaying every model
    /// of a *larger* scope (the small-scope verdict is not an artifact of the
    /// bound for this fragment).
    #[test]
    fn verdicts_are_confirmed_by_evaluation(goal in goal()) {
        let ob = Obligation::new("prop").goal(goal.clone());
        let small = FiniteModelProver::new(Scope::small());
        let verdict = small.prove(&ob);
        match &verdict {
            semcommute_prover::Verdict::CounterModel { model, .. } => {
                prop_assert_eq!(eval_bool(&goal, model).unwrap(), false);
            }
            semcommute_prover::Verdict::Valid { .. } => {
                let larger = FiniteModelProver::new(Scope::standard());
                prop_assert!(larger.prove(&ob).is_valid(), "larger scope disagrees for {}", goal);
            }
            semcommute_prover::Verdict::Unknown { reason, .. } => {
                prop_assert!(false, "unexpected unknown verdict: {reason}");
            }
        }
    }

    /// The structural prover is sound: whatever it proves, the finite-model
    /// prover confirms.
    #[test]
    fn structural_prover_is_sound(goal in goal(), hypothesis in goal()) {
        let ob = Obligation::new("prop")
            .assume(hypothesis)
            .goal(goal);
        if semcommute_prover::structural::prove_structural(&ob).is_some() {
            let verdict = FiniteModelProver::new(Scope::small()).prove(&ob);
            prop_assert!(verdict.is_valid(), "structural prover claimed an invalid obligation");
        }
    }

    /// The portfolio never contradicts the finite-model prover on its own.
    #[test]
    fn portfolio_matches_finite_model_alone(goal in goal()) {
        let ob = Obligation::new("prop").goal(goal);
        let portfolio = Portfolio::small().prove(&ob);
        let finite_only = Portfolio::small().without_structural().prove(&ob);
        prop_assert_eq!(portfolio.is_valid(), finite_only.is_valid());
    }
}
