//! Kinds of commutativity conditions: before, between, and after.

use std::fmt;

/// When a commutativity condition is evaluated (Section 4.1.2 of the paper).
///
/// * A **before** condition may mention only the operation arguments and the
///   initial abstract state; it can be checked before either operation runs.
/// * A **between** condition may additionally mention the first operation's
///   return value and the intermediate abstract state; it can be checked
///   after the first operation but before the second — the form a speculative
///   system uses to decide whether an incoming operation commutes with
///   already-executed ones.
/// * An **after** condition may mention everything, including the second
///   return value and the final abstract state; systems use after conditions
///   to detect, after the fact, that executed operations did not commute and
///   a rollback is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConditionKind {
    /// Evaluated before either operation executes.
    Before,
    /// Evaluated after the first operation, before the second.
    Between,
    /// Evaluated after both operations execute.
    After,
}

impl ConditionKind {
    /// All kinds, in the paper's order.
    pub const ALL: [ConditionKind; 3] = [
        ConditionKind::Before,
        ConditionKind::Between,
        ConditionKind::After,
    ];

    /// The short tag used in generated testing-method names
    /// (`contains_add_between_s_40`-style).
    pub fn tag(self) -> &'static str {
        match self {
            ConditionKind::Before => "before",
            ConditionKind::Between => "between",
            ConditionKind::After => "after",
        }
    }

    /// Whether a condition of this kind may reference the first operation's
    /// return value (`r1`).
    pub fn allows_first_result(self) -> bool {
        matches!(self, ConditionKind::Between | ConditionKind::After)
    }

    /// Whether a condition of this kind may reference the intermediate
    /// abstract state (`s2`).
    pub fn allows_intermediate_state(self) -> bool {
        matches!(self, ConditionKind::Between | ConditionKind::After)
    }

    /// Whether a condition of this kind may reference the second operation's
    /// return value (`r2`) or the final abstract state (`s3`).
    pub fn allows_final_state(self) -> bool {
        matches!(self, ConditionKind::After)
    }
}

impl fmt::Display for ConditionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_method_name_fields() {
        assert_eq!(ConditionKind::Before.tag(), "before");
        assert_eq!(ConditionKind::Between.tag(), "between");
        assert_eq!(ConditionKind::After.tag(), "after");
        assert_eq!(ConditionKind::ALL.len(), 3);
    }

    #[test]
    fn reference_permissions_are_monotone() {
        assert!(!ConditionKind::Before.allows_first_result());
        assert!(ConditionKind::Between.allows_first_result());
        assert!(ConditionKind::After.allows_first_result());
        assert!(!ConditionKind::Between.allows_final_state());
        assert!(ConditionKind::After.allows_final_state());
        assert!(!ConditionKind::Before.allows_intermediate_state());
        assert!(ConditionKind::Between.allows_intermediate_state());
    }

    #[test]
    fn display_uses_tag() {
        assert_eq!(ConditionKind::Between.to_string(), "between");
    }
}
