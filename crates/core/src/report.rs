//! Table-formatted reports reproducing the paper's evaluation tables.
//!
//! Each function renders one of Tables 5.1–5.10 as plain text; the
//! `semcommute-bench` binaries print them, and `EXPERIMENTS.md` records the
//! outputs next to the paper's numbers.

use std::fmt::Write as _;

use semcommute_spec::{interface_by_id, InterfaceId};

use crate::catalog::interface_catalog;
use crate::concrete::render_concrete;
use crate::condition::CommutativityCondition;
use crate::hints::HintSummary;
use crate::inverse::inverse_catalog;
use crate::kind::ConditionKind;
use crate::verify::InterfaceReport;

/// Renders a commutativity-condition table (the format of Tables 5.1–5.7):
/// one row per ordered pair of operation variants, showing the abstract and
/// the concrete (dynamically checkable) form of the condition of the given
/// kind.
pub fn condition_table(interface: InterfaceId, kind: ConditionKind) -> String {
    let iface = interface_by_id(interface);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} commutativity conditions on {} ({})",
        capitalize(kind.tag()),
        interface,
        iface.id.implementations().join(" and ")
    );
    let _ = writeln!(out, "{:-<110}", "");
    let _ = writeln!(
        out,
        "{:<22} {:<22} | {:<40} | concrete condition",
        "first", "second", "abstract condition"
    );
    let _ = writeln!(out, "{:-<110}", "");
    for cond in interface_catalog(interface)
        .into_iter()
        .filter(|c| c.kind == kind)
    {
        let first_spec = iface.op(&cond.first.op).expect("op exists");
        let second_spec = iface.op(&cond.second.op).expect("op exists");
        let _ = writeln!(
            out,
            "{:<22} {:<22} | {:<40} | {}",
            cond.first.table_form(first_spec, "s1", "r1"),
            cond.second.table_form(second_spec, "s2", "r2"),
            cond.formula.to_string(),
            render_concrete(&cond.formula)
        );
    }
    out
}

/// Renders a selection of rows from a condition table (used by the table
/// binaries to show the same representative pairs as the paper's tables).
pub fn condition_rows(
    interface: InterfaceId,
    kind: ConditionKind,
    pairs: &[(&str, &str)],
) -> Vec<CommutativityCondition> {
    interface_catalog(interface)
        .into_iter()
        .filter(|c| {
            c.kind == kind
                && pairs
                    .iter()
                    .any(|(f, s)| *f == c.first.label() && *s == c.second.label())
        })
        .collect()
}

/// Renders the verification-time table (Table 5.8): one row per data
/// structure with the time taken to verify all of its generated testing
/// methods.
pub fn verification_time_table(reports: &[InterfaceReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Commutativity testing method verification times");
    let _ = writeln!(out, "{:-<78}", "");
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "Data structure", "conditions", "methods", "verified", "time (s)", "hinted"
    );
    let _ = writeln!(out, "{:-<78}", "");
    for report in reports {
        for name in report.interface.implementations() {
            let _ = writeln!(
                out,
                "{:<18} {:>12} {:>10} {:>10} {:>12.2} {:>10}",
                name,
                report.total(),
                report.method_count(),
                report.verified_count(),
                report.elapsed.as_secs_f64(),
                report.hinted_method_count()
            );
        }
    }
    let total_conditions: usize = reports
        .iter()
        .map(|r| r.total() * r.interface.implementations().len())
        .sum();
    let _ = writeln!(out, "{:-<78}", "");
    let _ = writeln!(
        out,
        "Total conditions across data structures: {total_conditions}"
    );
    out
}

/// Renders the proof-command table (Table 5.9): how many `note`, `assuming`,
/// and `pickWitness` commands the hard ArrayList methods carry.
pub fn hint_table(summary: &HintSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Proof language commands for the hard ArrayList commutativity testing methods"
    );
    let _ = writeln!(out, "{:-<60}", "");
    let _ = writeln!(out, "{:<20} {:>10}", "Command", "Count");
    let _ = writeln!(out, "{:-<60}", "");
    let _ = writeln!(out, "{:<20} {:>10}", "note", summary.note);
    let _ = writeln!(out, "{:<20} {:>10}", "assuming", summary.assuming);
    let _ = writeln!(out, "{:<20} {:>10}", "pickWitness", summary.pick_witness);
    let _ = writeln!(out, "{:<20} {:>10}", "Total", summary.total());
    let _ = writeln!(
        out,
        "(attached to {} testing methods)",
        summary.hinted_methods
    );
    out
}

/// Renders the inverse-operation table (Table 5.10).
pub fn inverse_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Inverse operations");
    let _ = writeln!(out, "{:-<88}", "");
    let _ = writeln!(
        out,
        "{:<18} {:<28} Inverse operation",
        "Data structure", "Operation"
    );
    let _ = writeln!(out, "{:-<88}", "");
    for inverse in inverse_catalog() {
        let (forward, backward) = inverse.table_row();
        let _ = writeln!(
            out,
            "{:<18} {:<28} {}",
            inverse.interface.implementations().join("/"),
            forward,
            backward
        );
    }
    out
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_table_lists_every_pair_of_the_kind() {
        let table = condition_table(InterfaceId::Set, ConditionKind::Before);
        // 36 pairs plus four header/separator lines.
        assert_eq!(table.lines().count(), 36 + 4);
        assert!(table.contains("Before commutativity conditions"));
        assert!(table.contains("ListSet and HashSet"));
        assert!(table.contains("s1.contains(v1) = true") || table.contains("v1 : s1"));
    }

    #[test]
    fn condition_rows_select_requested_pairs() {
        let rows = condition_rows(
            InterfaceId::Set,
            ConditionKind::Between,
            &[("contains", "add_"), ("contains", "remove_")],
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inverse_table_has_eight_rows() {
        let table = inverse_table();
        assert_eq!(table.lines().count(), 8 + 4);
        assert!(table.contains("if r ~= null then s2.put(k, r) else s2.remove(k)"));
    }

    #[test]
    fn hint_table_reports_counts() {
        let summary = crate::hints::hint_summary();
        let table = hint_table(&summary);
        assert!(table.contains("note"));
        assert!(table.contains("assuming"));
        assert!(table.contains("pickWitness"));
    }

    #[test]
    fn verification_time_table_lists_each_data_structure() {
        use crate::verify::{verify_interface, VerifyOptions};
        let report = verify_interface(InterfaceId::Accumulator, &VerifyOptions::quick(12));
        let table = verification_time_table(&[report]);
        assert!(table.contains("Accumulator"));
        assert!(table.contains("Total conditions"));
    }
}
