//! Commutativity conditions.

use std::fmt;

use semcommute_logic::{build, free_vars, Sort, Term};
use semcommute_spec::{InterfaceId, InterfaceSpec};

use crate::kind::ConditionKind;
use crate::variant::OpVariant;

/// Canonical names for the free variables a condition formula may mention.
///
/// A condition is always interpreted with respect to the *first* execution
/// order (`m1(args1)` followed by `m2(args2)`, Section 4.1 of the paper):
///
/// * [`names::INITIAL`] (`s1`) — the abstract state before either operation,
/// * [`names::INTERMEDIATE`] (`s2`) — the abstract state after the first
///   operation,
/// * [`names::FINAL`] (`s3`) — the abstract state after both operations,
/// * [`names::RESULT1`] (`r1`) / [`names::RESULT2`] (`r2`) — the return
///   values of the first and second operation (available only for recorded
///   variants),
/// * operation arguments — the first operation's formal parameter names
///   suffixed with `1`, the second's with `2` (`v1`, `k1`, `i1`, `v2`, …).
pub mod names {
    /// The abstract state before either operation executes.
    pub const INITIAL: &str = "s1";
    /// The abstract state after the first operation executes.
    pub const INTERMEDIATE: &str = "s2";
    /// The abstract state after both operations execute (first order).
    pub const FINAL: &str = "s3";
    /// The first operation's return value.
    pub const RESULT1: &str = "r1";
    /// The second operation's return value.
    pub const RESULT2: &str = "r2";

    /// The canonical argument name for a formal parameter of the first
    /// (`which = 1`) or second (`which = 2`) operation.
    pub fn arg(formal: &str, which: usize) -> String {
        format!("{formal}{which}")
    }
}

/// A commutativity condition for an ordered pair of operation variants.
///
/// The condition states when `first(args1); second(args2)` can be reordered
/// to `second(args2); first(args1)` without changing the observable return
/// values or the final abstract state. The catalog (see [`crate::catalog`])
/// provides a sound **and** complete condition for every ordered pair, every
/// kind, and every recorded/discarded variant combination — 765 conditions in
/// total, as in the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CommutativityCondition {
    /// The interface the operations belong to.
    pub interface: InterfaceId,
    /// The operation that executes first.
    pub first: OpVariant,
    /// The operation that executes second.
    pub second: OpVariant,
    /// When the condition is meant to be evaluated.
    pub kind: ConditionKind,
    /// The condition formula, over the canonical variables of [`names`].
    pub formula: Term,
}

impl CommutativityCondition {
    /// Creates a condition.
    pub fn new(
        interface: InterfaceId,
        first: OpVariant,
        second: OpVariant,
        kind: ConditionKind,
        formula: Term,
    ) -> CommutativityCondition {
        CommutativityCondition {
            interface,
            first,
            second,
            kind,
            formula,
        }
    }

    /// A stable identifier, e.g. `Set::contains/add::between`.
    pub fn id(&self) -> String {
        format!(
            "{}::{}/{}::{}",
            self.interface,
            self.first.label(),
            self.second.label(),
            self.kind
        )
    }

    /// Returns `true` if the condition is the constant `true` (the
    /// "particularly useful special case" of Section 5.1: the operations
    /// commute in every state).
    pub fn is_trivially_true(&self) -> bool {
        build::tru() == semcommute_logic::simplify(&self.formula)
    }

    /// Returns `true` if the condition is the constant `false` (the
    /// operations never commute, e.g. `addAt` with `size`).
    pub fn is_trivially_false(&self) -> bool {
        build::fls() == semcommute_logic::simplify(&self.formula)
    }

    /// The canonical argument variables (name and sort) of the first and
    /// second operations.
    pub fn argument_vars(&self, iface: &InterfaceSpec) -> Vec<(String, Sort)> {
        let mut out = Vec::new();
        for (which, variant) in [(1usize, &self.first), (2usize, &self.second)] {
            if let Some(op) = iface.op(&variant.op) {
                for (formal, sort) in &op.params {
                    out.push((names::arg(formal, which), *sort));
                }
            }
        }
        out
    }

    /// Checks that the condition only mentions variables it is allowed to
    /// mention: the operation arguments, the states permitted by its
    /// [`ConditionKind`], and the return values of *recorded* variants as
    /// permitted by the kind.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self, iface: &InterfaceSpec) -> Result<(), String> {
        if iface.op(&self.first.op).is_none() {
            return Err(format!("unknown operation `{}`", self.first.op));
        }
        if iface.op(&self.second.op).is_none() {
            return Err(format!("unknown operation `{}`", self.second.op));
        }
        let mut allowed: Vec<(String, Sort)> = self.argument_vars(iface);
        allowed.push((names::INITIAL.to_string(), iface.state_sort));
        if self.kind.allows_intermediate_state() {
            allowed.push((names::INTERMEDIATE.to_string(), iface.state_sort));
        }
        if self.kind.allows_final_state() {
            allowed.push((names::FINAL.to_string(), iface.state_sort));
        }
        let first_spec = iface.op(&self.first.op).expect("checked above");
        let second_spec = iface.op(&self.second.op).expect("checked above");
        if self.kind.allows_first_result() && self.first.recorded {
            if let Some(sort) = first_spec.result_sort {
                allowed.push((names::RESULT1.to_string(), sort));
            }
        }
        if self.kind.allows_final_state() && self.second.recorded {
            if let Some(sort) = second_spec.result_sort {
                allowed.push((names::RESULT2.to_string(), sort));
            }
        }
        for (name, sort) in free_vars(&self.formula) {
            match allowed.iter().find(|(n, _)| *n == name) {
                None => {
                    return Err(format!(
                        "{}: condition mentions `{name}`, which a {} condition for this pair may not reference",
                        self.id(),
                        self.kind
                    ))
                }
                Some((_, expected)) if *expected != sort => {
                    return Err(format!(
                        "{}: `{name}` has sort {sort}, expected {expected}",
                        self.id()
                    ))
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for CommutativityCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id(), self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;
    use semcommute_spec::set_interface;

    fn contains_add_between() -> CommutativityCondition {
        CommutativityCondition::new(
            InterfaceId::Set,
            OpVariant::recorded("contains"),
            OpVariant::recorded("add"),
            ConditionKind::Between,
            or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1")),
        )
    }

    #[test]
    fn id_and_display() {
        let c = contains_add_between();
        assert_eq!(c.id(), "Set::contains/add::between");
        assert!(c.to_string().contains("~v1 = v2 | r1"));
    }

    #[test]
    fn validation_accepts_legal_references() {
        let c = contains_add_between();
        assert!(c.validate(&set_interface()).is_ok());
    }

    #[test]
    fn before_conditions_may_not_reference_results() {
        let mut c = contains_add_between();
        c.kind = ConditionKind::Before;
        let err = c.validate(&set_interface()).unwrap_err();
        assert!(err.contains("r1"));
    }

    #[test]
    fn discarded_variants_may_not_reference_their_result() {
        let mut c = contains_add_between();
        c.first = OpVariant::discarded("contains");
        // (contains is an observer so a discarded variant never appears in the
        // catalog, but the validation rule still applies.)
        let err = c.validate(&set_interface()).unwrap_err();
        assert!(err.contains("r1"));
    }

    #[test]
    fn sort_mismatches_are_reported() {
        let c = CommutativityCondition::new(
            InterfaceId::Set,
            OpVariant::recorded("add"),
            OpVariant::recorded("add"),
            ConditionKind::Before,
            eq(var_int("v1"), var_int("v2")),
        );
        let err = c.validate(&set_interface()).unwrap_err();
        assert!(err.contains("sort"));
    }

    #[test]
    fn triviality_checks() {
        let mut c = contains_add_between();
        assert!(!c.is_trivially_true());
        c.formula = tru();
        assert!(c.is_trivially_true());
        c.formula = and2(tru(), fls());
        assert!(c.is_trivially_false());
    }

    #[test]
    fn argument_vars_use_suffixed_names() {
        let c = contains_add_between();
        let args = c.argument_vars(&set_interface());
        assert_eq!(
            args,
            vec![
                ("v1".to_string(), Sort::Elem),
                ("v2".to_string(), Sort::Elem)
            ]
        );
    }

    #[test]
    fn unknown_operations_are_rejected() {
        let mut c = contains_add_between();
        c.first = OpVariant::recorded("frobnicate");
        assert!(c.validate(&set_interface()).is_err());
    }
}
