//! Dynamic (run-time) evaluation of commutativity conditions, and the
//! concrete-syntax rendering used in the right-hand columns of Tables 5.1–5.7.
//!
//! Static analyses work with the abstract-state form of a condition; systems
//! that check conditions dynamically must evaluate them against the concrete
//! data structure (Section 4.1). Because every concrete structure exposes its
//! abstraction function, dynamic evaluation reduces to evaluating the
//! condition formula under a model that binds `s1`/`s2`/`s3` to the abstract
//! states observed at run time and `r1`/`r2` to the recorded return values.
//! [`render_concrete`] prints a condition with the abstract-state queries
//! replaced by the method calls a dynamic checker would issue
//! (`s1.contains(v1) = true`, `s1.get(k1)`, `s2.indexOf(v2)`, …).

use semcommute_logic::{eval_bool, Model, Term, Value};
use semcommute_spec::AbstractState;

use crate::condition::{names, CommutativityCondition};

/// The run-time information available to a dynamic commutativity check.
///
/// Populate the fields that are available at the point of the check: for a
/// *before* check only `initial_state` and the arguments; for a *between*
/// check additionally `first_result` and `intermediate_state`; for an *after*
/// check everything.
#[derive(Debug, Clone, Default)]
pub struct ConditionContext {
    /// Arguments of the first operation, in declaration order.
    pub first_args: Vec<Value>,
    /// Arguments of the second operation, in declaration order.
    pub second_args: Vec<Value>,
    /// The abstract state before either operation.
    pub initial_state: Option<AbstractState>,
    /// The abstract state after the first operation.
    pub intermediate_state: Option<AbstractState>,
    /// The abstract state after both operations.
    pub final_state: Option<AbstractState>,
    /// The first operation's recorded return value.
    pub first_result: Option<Value>,
    /// The second operation's recorded return value.
    pub second_result: Option<Value>,
}

impl ConditionContext {
    /// A context for a *before* check.
    pub fn before(
        initial: AbstractState,
        first_args: Vec<Value>,
        second_args: Vec<Value>,
    ) -> ConditionContext {
        ConditionContext {
            first_args,
            second_args,
            initial_state: Some(initial),
            ..Default::default()
        }
    }

    /// A context for a *between* check.
    pub fn between(
        initial: AbstractState,
        intermediate: AbstractState,
        first_args: Vec<Value>,
        first_result: Option<Value>,
        second_args: Vec<Value>,
    ) -> ConditionContext {
        ConditionContext {
            first_args,
            second_args,
            initial_state: Some(initial),
            intermediate_state: Some(intermediate),
            first_result,
            ..Default::default()
        }
    }

    fn to_model(&self, condition: &CommutativityCondition) -> Model {
        let iface = semcommute_spec::interface_by_id(condition.interface);
        let mut model = Model::new();
        if let Some(s) = &self.initial_state {
            model.insert(names::INITIAL, s.to_value());
        }
        if let Some(s) = &self.intermediate_state {
            model.insert(names::INTERMEDIATE, s.to_value());
        }
        if let Some(s) = &self.final_state {
            model.insert(names::FINAL, s.to_value());
        }
        if let Some(r) = &self.first_result {
            model.insert(names::RESULT1, r.clone());
        }
        if let Some(r) = &self.second_result {
            model.insert(names::RESULT2, r.clone());
        }
        for (which, (variant, args)) in [
            (&condition.first, &self.first_args),
            (&condition.second, &self.second_args),
        ]
        .into_iter()
        .enumerate()
        {
            if let Some(op) = iface.op(&variant.op) {
                for ((formal, _), value) in op.params.iter().zip(args) {
                    model.insert(names::arg(formal, which + 1), value.clone());
                }
            }
        }
        model
    }
}

/// Evaluates a commutativity condition against run-time information.
///
/// # Errors
///
/// Returns an error if the context does not provide a value for a variable
/// the condition references (e.g. evaluating a between condition with a
/// before-only context).
pub fn evaluate(
    condition: &CommutativityCondition,
    ctx: &ConditionContext,
) -> Result<bool, String> {
    let model = ctx.to_model(condition);
    eval_bool(&condition.formula, &model).map_err(|e| format!("{}: {e}", condition.id()))
}

/// Renders a condition formula in the "concrete" column style of the paper's
/// tables: abstract-state queries become data structure method calls.
pub fn render_concrete(term: &Term) -> String {
    render(term, false)
}

fn render(term: &Term, negated: bool) -> String {
    use Term::*;
    match term {
        Not(inner) => match &**inner {
            Member(_, _) | MapHasKey(_, _) | SeqContains(_, _) => render(inner, !negated),
            Eq(a, b) => format!("{} ~= {}", render(a, false), render(b, false)),
            other => format!("~({})", render(other, false)),
        },
        Member(v, s) => format!(
            "{}.contains({}) = {}",
            render(s, false),
            render(v, false),
            if negated { "false" } else { "true" }
        ),
        MapHasKey(m, k) => format!(
            "{}.containsKey({}) = {}",
            render(m, false),
            render(k, false),
            if negated { "false" } else { "true" }
        ),
        SeqContains(s, v) => format!(
            "{}.contains({}) = {}",
            render(s, false),
            render(v, false),
            if negated { "false" } else { "true" }
        ),
        MapGet(m, k) => format!("{}.get({})", render(m, false), render(k, false)),
        Card(s) => format!("{}.size()", render(s, false)),
        MapSize(m) => format!("{}.size()", render(m, false)),
        SeqLen(s) => format!("{}.size()", render(s, false)),
        SeqAt(s, i) => format!("{}.get({})", render(s, false), render(i, false)),
        SeqIndexOf(s, v) => format!("{}.indexOf({})", render(s, false), render(v, false)),
        SeqLastIndexOf(s, v) => {
            format!("{}.lastIndexOf({})", render(s, false), render(v, false))
        }
        And(cs) => cs
            .iter()
            .map(|c| maybe_paren(c, render(c, false)))
            .collect::<Vec<_>>()
            .join(" & "),
        Or(cs) => cs
            .iter()
            .map(|c| maybe_paren(c, render(c, false)))
            .collect::<Vec<_>>()
            .join(" | "),
        Eq(a, b) => format!("{} = {}", render(a, false), render(b, false)),
        Lt(a, b) => format!("{} < {}", render(a, false), render(b, false)),
        Le(a, b) => format!("{} <= {}", render(a, false), render(b, false)),
        Add(a, b) => format!("{} + {}", render(a, false), render(b, false)),
        Sub(a, b) => format!("{} - {}", render(a, false), render(b, false)),
        other => other.to_string(),
    }
}

fn maybe_paren(term: &Term, rendered: String) -> String {
    if matches!(term, Term::And(_) | Term::Or(_) | Term::Implies(_, _)) {
        format!("({rendered})")
    } else {
        rendered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::interface_catalog;
    use crate::kind::ConditionKind;
    use semcommute_logic::ElemId;
    use semcommute_spec::InterfaceId;

    fn set_state(ids: &[u32]) -> AbstractState {
        AbstractState::Set(ids.iter().map(|&i| ElemId(i)).collect())
    }

    fn find(
        iface: InterfaceId,
        first: &str,
        second: &str,
        kind: ConditionKind,
    ) -> CommutativityCondition {
        interface_catalog(iface)
            .into_iter()
            .find(|c| {
                c.first.op == first
                    && c.second.op == second
                    && c.kind == kind
                    && c.first.recorded
                    && !c.second.recorded
            })
            .unwrap()
    }

    #[test]
    fn before_condition_evaluates_against_initial_state() {
        let cond = find(InterfaceId::Set, "contains", "add", ConditionKind::Before);
        // v1 != v2: commutes.
        let ctx =
            ConditionContext::before(set_state(&[]), vec![Value::elem(1)], vec![Value::elem(2)]);
        assert!(evaluate(&cond, &ctx).unwrap());
        // v1 = v2 and v1 not in the set: does not commute.
        let ctx =
            ConditionContext::before(set_state(&[]), vec![Value::elem(1)], vec![Value::elem(1)]);
        assert!(!evaluate(&cond, &ctx).unwrap());
        // v1 = v2 but already present: commutes.
        let ctx =
            ConditionContext::before(set_state(&[1]), vec![Value::elem(1)], vec![Value::elem(1)]);
        assert!(evaluate(&cond, &ctx).unwrap());
    }

    #[test]
    fn between_condition_uses_the_recorded_result() {
        let cond = find(InterfaceId::Set, "contains", "add", ConditionKind::Between);
        let ctx = ConditionContext::between(
            set_state(&[]),
            set_state(&[]),
            vec![Value::elem(1)],
            Some(Value::Bool(false)),
            vec![Value::elem(1)],
        );
        assert!(!evaluate(&cond, &ctx).unwrap());
        let ctx = ConditionContext::between(
            set_state(&[1]),
            set_state(&[1]),
            vec![Value::elem(1)],
            Some(Value::Bool(true)),
            vec![Value::elem(1)],
        );
        assert!(evaluate(&cond, &ctx).unwrap());
    }

    #[test]
    fn missing_context_is_an_error() {
        let cond = find(InterfaceId::Set, "contains", "add", ConditionKind::Between);
        let ctx =
            ConditionContext::before(set_state(&[]), vec![Value::elem(1)], vec![Value::elem(2)]);
        // The between condition needs r1, which a before context lacks.
        assert!(evaluate(&cond, &ctx).is_err());
    }

    #[test]
    fn concrete_rendering_matches_table_style() {
        use semcommute_logic::build::*;
        // v1 ~= v2 | s1.contains(v1) = true
        let t = or2(
            neq(var_elem("v1"), var_elem("v2")),
            member(var_elem("v1"), var_set("s1")),
        );
        assert_eq!(render_concrete(&t), "v1 ~= v2 | s1.contains(v1) = true");
        // negated membership renders as "= false"
        let t = or2(
            neq(var_elem("k1"), var_elem("k2")),
            not(map_has_key(var_map("s1"), var_elem("k1"))),
        );
        assert_eq!(render_concrete(&t), "k1 ~= k2 | s1.containsKey(k1) = false");
        // map get and sizes
        let t = eq(map_get(var_map("s1"), var_elem("k1")), var_elem("v2"));
        assert_eq!(render_concrete(&t), "s1.get(k1) = v2");
        assert_eq!(render_concrete(&card(var_set("s1"))), "s1.size()");
        assert_eq!(
            render_concrete(&seq_index_of(var_seq("s2"), var_elem("v2"))),
            "s2.indexOf(v2)"
        );
        assert_eq!(
            render_concrete(&seq_at(var_seq("s1"), sub(var_int("i2"), int(1)))),
            "s1.get(i2 - 1)"
        );
    }
}
