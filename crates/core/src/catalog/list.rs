//! Commutativity conditions for the ArrayList interface (Tables 5.6 and 5.7).
//!
//! These are by far the most intricate conditions in the catalog: `addAt` and
//! `removeAt` shift the index ranges above the affected position, so whether
//! two operations commute depends on how their index arguments relate and on
//! the contents of the shifted region (the paper attributes the complexity of
//! the ArrayList conditions "in part to the use of integer indexing and in
//! part to the presence of operations that shift the indexing relationships
//! across large regions of the data structure").
//!
//! Every condition below is stated over the *initial* abstract sequence `s1`
//! and the operation arguments. The paper's Tables 5.6 and 5.7 phrase the
//! between/after forms over the intermediate (`s2`) and final (`s3`) states;
//! because the conditions are sound and complete, the two phrasings are
//! equivalent (Section 4.1.2: "the before, between, and after conditions are
//! equivalent even if they reference different return values or elements of
//! different abstract states"). For pairs whose first operation is `indexOf`,
//! the between/after forms use the recorded return value `r1`, following
//! Table 5.6. Soundness and completeness of every entry is established by the
//! verification driver.
//!
//! Note that the equivalence is per *adjacent* pair: a condition certified at
//! one `s1` says nothing about the pair once other operations separate them.
//! The runtime therefore evaluates these `s1`-phrased conditions at two
//! anchors — the logged operation's captured pre-state and the live state —
//! see the `semcommute-runtime` gatekeeper docs.

use semcommute_logic::build::*;
use semcommute_logic::Term;

use super::helpers::{at, i1, i2, index_of, last_index_of, r1_int, v1, v2};
use crate::kind::ConditionKind;
use crate::variant::OpVariant;

/// `a = b` on integers.
fn ieq(a: Term, b: Term) -> Term {
    eq(a, b)
}

/// `t - 1`.
fn minus1(t: Term) -> Term {
    sub(t, int(1))
}

/// `t + 1`.
fn plus1(t: Term) -> Term {
    add(t, int(1))
}

/// The commutativity condition for `first(…); second(…)` on the ArrayList
/// interface.
pub fn condition(first: &OpVariant, second: &OpVariant, kind: ConditionKind) -> Term {
    let neither_recorded = !first.recorded && !second.recorded;
    // For observer-first pairs, between/after conditions may use r1 instead of
    // re-querying the initial state; we do so for indexOf, following Table 5.6.
    let io1 = || {
        if kind.allows_first_result() && first.recorded && first.op == "indexOf" {
            r1_int()
        } else {
            index_of(v1())
        }
    };

    match (first.op.as_str(), second.op.as_str()) {
        // ---------------------------------------------------------------
        // Pure observers against each other always commute.
        // ---------------------------------------------------------------
        (
            "get" | "indexOf" | "lastIndexOf" | "size",
            "get" | "indexOf" | "lastIndexOf" | "size",
        ) => tru(),
        // `set` never changes the length, so it commutes with `size`.
        ("set", "size") | ("size", "set") => tru(),
        // `addAt` and `removeAt` always change the length observed by `size`.
        ("addAt" | "removeAt", "size") | ("size", "addAt" | "removeAt") => fls(),

        // ---------------------------------------------------------------
        // addAt first
        // ---------------------------------------------------------------
        ("addAt", "addAt") => or3(
            and2(lt(i1(), i2()), ieq(at(minus1(i2())), v2())),
            and2(ieq(i1(), i2()), eq(v1(), v2())),
            and2(gt(i1(), i2()), ieq(at(minus1(i1())), v1())),
        ),
        ("addAt", "get") => or3(
            lt(i2(), i1()),
            and2(ieq(i2(), i1()), eq(at(i1()), v1())),
            and2(gt(i2(), i1()), eq(at(minus1(i2())), at(i2()))),
        ),
        ("addAt", "indexOf") => or3(
            and2(lt(index_of(v2()), int(0)), neq(v1(), v2())),
            and2(le(int(0), index_of(v2())), lt(index_of(v2()), i1())),
            and2(eq(v1(), v2()), ieq(index_of(v2()), i1())),
        ),
        ("addAt", "lastIndexOf") => and2(neq(v1(), v2()), lt(last_index_of(v2()), i1())),
        ("addAt", "removeAt") => or2(
            and2(le(i2(), i1()), eq(at(i1()), v1())),
            and2(gt(i2(), i1()), eq(at(minus1(i2())), at(i2()))),
        ),
        ("addAt", "set") => or3(
            lt(i2(), i1()),
            and3(ieq(i2(), i1()), eq(v1(), v2()), eq(at(i1()), v2())),
            and3(
                gt(i2(), i1()),
                eq(at(minus1(i2())), v2()),
                eq(at(i2()), v2()),
            ),
        ),

        // ---------------------------------------------------------------
        // get first
        // ---------------------------------------------------------------
        ("get", "addAt") => or3(
            lt(i1(), i2()),
            and2(ieq(i1(), i2()), eq(at(i1()), v2())),
            and2(gt(i1(), i2()), eq(at(minus1(i1())), at(i1()))),
        ),
        ("get", "removeAt") => or2(
            lt(i1(), i2()),
            and2(ge(i1(), i2()), eq(at(i1()), at(plus1(i1())))),
        ),
        ("get", "set") => or2(neq(i1(), i2()), eq(at(i1()), v2())),

        // ---------------------------------------------------------------
        // indexOf first
        // ---------------------------------------------------------------
        ("indexOf", "addAt") => or3(
            and2(lt(io1(), int(0)), neq(v1(), v2())),
            and2(le(int(0), io1()), lt(io1(), i2())),
            and2(ieq(io1(), i2()), eq(v1(), v2())),
        ),
        ("indexOf", "removeAt") => or2(
            lt(io1(), i2()),
            and2(ieq(io1(), i2()), eq(at(plus1(i2())), v1())),
        ),
        ("indexOf", "set") => or([
            and2(lt(io1(), int(0)), neq(v1(), v2())),
            and2(le(int(0), io1()), lt(io1(), i2())),
            and2(ieq(io1(), i2()), eq(v1(), v2())),
            and2(gt(io1(), i2()), neq(v1(), v2())),
        ]),

        // ---------------------------------------------------------------
        // lastIndexOf first
        // ---------------------------------------------------------------
        ("lastIndexOf", "addAt") => and2(neq(v1(), v2()), lt(last_index_of(v1()), i2())),
        ("lastIndexOf", "removeAt") => lt(last_index_of(v1()), i2()),
        ("lastIndexOf", "set") => or2(
            and2(eq(v1(), v2()), ge(last_index_of(v1()), i2())),
            and2(neq(v1(), v2()), neq(last_index_of(v1()), i2())),
        ),

        // ---------------------------------------------------------------
        // removeAt first
        // ---------------------------------------------------------------
        ("removeAt", "addAt") => or2(
            and2(le(i1(), i2()), eq(at(i2()), v2())),
            and2(gt(i1(), i2()), eq(at(minus1(i1())), at(i1()))),
        ),
        ("removeAt", "get") => or2(
            lt(i2(), i1()),
            and2(ge(i2(), i1()), eq(at(i2()), at(plus1(i2())))),
        ),
        ("removeAt", "indexOf") => or2(
            lt(index_of(v2()), i1()),
            and2(ieq(index_of(v2()), i1()), eq(at(plus1(i1())), v2())),
        ),
        ("removeAt", "lastIndexOf") => lt(last_index_of(v2()), i1()),
        ("removeAt", "removeAt") => {
            if neither_recorded {
                or3(
                    ieq(i1(), i2()),
                    and2(lt(i1(), i2()), eq(at(i2()), at(plus1(i2())))),
                    and2(lt(i2(), i1()), eq(at(i1()), at(plus1(i1())))),
                )
            } else {
                or2(
                    and2(lt(i1(), i2()), eq(at(i2()), at(plus1(i2())))),
                    and2(ge(i1(), i2()), eq(at(i1()), at(plus1(i1())))),
                )
            }
        }
        ("removeAt", "set") => {
            let same_index = if neither_recorded {
                and2(ieq(i1(), i2()), eq(at(plus1(i1())), v2()))
            } else {
                and3(
                    ieq(i1(), i2()),
                    eq(at(i1()), v2()),
                    eq(at(plus1(i1())), v2()),
                )
            };
            or3(
                lt(i2(), i1()),
                and3(
                    lt(i1(), i2()),
                    eq(at(i2()), v2()),
                    eq(at(plus1(i2())), v2()),
                ),
                same_index,
            )
        }

        // ---------------------------------------------------------------
        // set first
        // ---------------------------------------------------------------
        ("set", "addAt") => or3(
            lt(i1(), i2()),
            and3(ieq(i1(), i2()), eq(v1(), v2()), eq(at(i1()), v1())),
            and3(
                gt(i1(), i2()),
                eq(at(minus1(i1())), v1()),
                eq(at(i1()), v1()),
            ),
        ),
        ("set", "get") => or2(neq(i1(), i2()), eq(at(i1()), v1())),
        ("set", "indexOf") => or2(
            and3(
                eq(v1(), v2()),
                le(int(0), index_of(v2())),
                le(index_of(v2()), i1()),
            ),
            and2(neq(v1(), v2()), neq(index_of(v2()), i1())),
        ),
        ("set", "lastIndexOf") => or2(
            and2(eq(v1(), v2()), ge(last_index_of(v2()), i1())),
            and2(neq(v1(), v2()), neq(last_index_of(v2()), i1())),
        ),
        ("set", "removeAt") => {
            let same_index = if neither_recorded {
                and2(ieq(i1(), i2()), eq(at(plus1(i1())), v1()))
            } else {
                and3(
                    ieq(i1(), i2()),
                    eq(at(i1()), v1()),
                    eq(at(plus1(i1())), v1()),
                )
            };
            or3(
                lt(i1(), i2()),
                and3(
                    gt(i1(), i2()),
                    eq(at(i1()), v1()),
                    eq(at(plus1(i1())), v1()),
                ),
                same_index,
            )
        }
        ("set", "set") => {
            if neither_recorded {
                or2(neq(i1(), i2()), eq(v1(), v2()))
            } else {
                or2(neq(i1(), i2()), and2(eq(v1(), v2()), eq(at(i1()), v1())))
            }
        }

        // ---------------------------------------------------------------
        // size first (updating seconds handled above)
        // ---------------------------------------------------------------
        ("size", _) | (_, "size") => unreachable!("size pairs handled above"),
        (a, b) => unreachable!("unknown ArrayList operation pair {a}/{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ConditionKind::*;
    use semcommute_logic::{eval_bool, ElemId, Model, Value};

    fn rec(op: &str) -> OpVariant {
        OpVariant::recorded(op)
    }
    fn dis(op: &str) -> OpVariant {
        OpVariant::discarded(op)
    }

    /// Evaluates a condition under an explicit assignment of the initial list
    /// and the arguments.
    fn holds(c: &Term, list: &[u32], bindings: &[(&str, Value)]) -> bool {
        let mut m = Model::new();
        m.insert("s1", Value::Seq(list.iter().map(|&i| ElemId(i)).collect()));
        for (k, v) in bindings {
            m.insert(*k, v.clone());
        }
        eval_bool(c, &m).unwrap()
    }

    #[test]
    fn add_at_add_at_matches_table_5_6_shape() {
        let c = condition(&dis("addAt"), &dis("addAt"), Before);
        // i1 < i2 commutes when the element just below the second insertion
        // point equals v2 (s1[i2-1] = v2).
        assert!(holds(
            &c,
            &[7, 9, 9],
            &[
                ("i1", Value::Int(0)),
                ("v1", Value::elem(5)),
                ("i2", Value::Int(2)),
                ("v2", Value::elem(9)),
            ]
        ));
        assert!(!holds(
            &c,
            &[7, 8, 9],
            &[
                ("i1", Value::Int(0)),
                ("v1", Value::elem(5)),
                ("i2", Value::Int(2)),
                ("v2", Value::elem(9)),
            ]
        ));
        // Same insertion point commutes only for equal elements.
        assert!(holds(
            &c,
            &[1, 2],
            &[
                ("i1", Value::Int(1)),
                ("v1", Value::elem(4)),
                ("i2", Value::Int(1)),
                ("v2", Value::elem(4)),
            ]
        ));
        assert!(!holds(
            &c,
            &[1, 2],
            &[
                ("i1", Value::Int(1)),
                ("v1", Value::elem(4)),
                ("i2", Value::Int(1)),
                ("v2", Value::elem(5)),
            ]
        ));
    }

    #[test]
    fn index_of_add_at_between_uses_r1_like_table_5_6() {
        let c = condition(&rec("indexOf"), &dis("addAt"), Between);
        // The between form references r1 instead of s1.indexOf(v1).
        let fv = semcommute_logic::free_vars(&c);
        assert!(fv.contains_key("r1"));
        assert!(!fv.contains_key("s1"));
        // Shape: (r1 < 0 & v1 ~= v2) | (0 <= r1 < i2) | (r1 = i2 & v1 = v2)
        let mut m = Model::new();
        m.insert("r1", Value::Int(-1));
        m.insert("v1", Value::elem(1));
        m.insert("v2", Value::elem(2));
        m.insert("i2", Value::Int(0));
        assert!(eval_bool(&c, &m).unwrap());
        m.insert("v2", Value::elem(1));
        assert!(!eval_bool(&c, &m).unwrap());
    }

    #[test]
    fn size_pairs_are_constant() {
        assert!(condition(&dis("addAt"), &rec("size"), Before).is_false());
        assert!(condition(&rec("size"), &dis("removeAt"), After).is_false());
        assert!(condition(&rec("size"), &rec("size"), Before).is_true());
        assert!(condition(&dis("set"), &rec("size"), Between).is_true());
        assert!(condition(&rec("get"), &rec("indexOf"), Before).is_true());
    }

    #[test]
    fn remove_at_remove_at_distinguishes_variants() {
        // Both discarded: removing the same index twice in either order gives
        // the same abstract list, so i1 = i2 commutes unconditionally.
        let dd = condition(&dis("removeAt"), &dis("removeAt"), Before);
        assert!(holds(
            &dd,
            &[1, 2, 3],
            &[("i1", Value::Int(1)), ("i2", Value::Int(1))]
        ));
        // With a recorded return value the removed elements are observed and
        // must coincide (two adjacent equal elements).
        let rr = condition(&rec("removeAt"), &rec("removeAt"), Before);
        assert!(!holds(
            &rr,
            &[1, 2, 3],
            &[("i1", Value::Int(1)), ("i2", Value::Int(1))]
        ));
        assert!(holds(
            &rr,
            &[1, 2, 2],
            &[("i1", Value::Int(1)), ("i2", Value::Int(1))]
        ));
    }

    #[test]
    fn set_set_requires_equal_values_at_equal_indices() {
        let dd = condition(&dis("set"), &dis("set"), Before);
        assert!(holds(
            &dd,
            &[1, 2],
            &[
                ("i1", Value::Int(0)),
                ("v1", Value::elem(9)),
                ("i2", Value::Int(0)),
                ("v2", Value::elem(9)),
            ]
        ));
        assert!(!holds(
            &dd,
            &[1, 2],
            &[
                ("i1", Value::Int(0)),
                ("v1", Value::elem(9)),
                ("i2", Value::Int(0)),
                ("v2", Value::elem(8)),
            ]
        ));
        // Different indices always commute.
        assert!(holds(
            &dd,
            &[1, 2],
            &[
                ("i1", Value::Int(0)),
                ("v1", Value::elem(9)),
                ("i2", Value::Int(1)),
                ("v2", Value::elem(8)),
            ]
        ));
    }

    #[test]
    fn every_pair_has_a_formula() {
        // Exhaustiveness guard: every pair of ArrayList operation variants
        // produces a well-sorted boolean formula for every kind.
        use crate::variant::interface_variants;
        let iface = semcommute_spec::list_interface();
        for first in interface_variants(&iface) {
            for second in interface_variants(&iface) {
                for kind in [Before, Between, After] {
                    let c = condition(&first, &second, kind);
                    assert!(
                        semcommute_logic::ty::check_formula(&c).is_ok(),
                        "ill-sorted condition for {}/{}",
                        first.label(),
                        second.label()
                    );
                }
            }
        }
    }
}
