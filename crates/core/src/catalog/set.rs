//! Commutativity conditions for the set interface — ListSet and HashSet
//! (Tables 5.2 and 5.3).

use semcommute_logic::build::*;
use semcommute_logic::Term;

use super::helpers::{args_differ, r1_bool, v1_in_s1, v2_in_s1};
use crate::kind::ConditionKind;
use crate::variant::OpVariant;

/// The commutativity condition for `first(v1); second(v2)` on the set
/// interface.
///
/// The before conditions follow Table 5.2; the between conditions follow
/// Table 5.3 (when the first operation records its return value, the
/// membership query on the initial state is replaced by the equivalent test
/// of `r1`, as the paper's tables do); after conditions reuse the between
/// form. Pairs that are not shown in the paper's (representative) tables —
/// the `size` pairs and the discarded-variant combinations — follow the same
/// derivations; the verification driver establishes soundness and
/// completeness for every entry.
pub fn condition(first: &OpVariant, second: &OpVariant, kind: ConditionKind) -> Term {
    let use_r1 = kind.allows_first_result() && first.recorded;
    match (first.op.as_str(), second.op.as_str()) {
        // -- add first ------------------------------------------------------
        ("add", "add") => {
            if !first.recorded && !second.recorded {
                // Neither client observes a return value; insertion order is
                // irrelevant to the abstract set.
                tru()
            } else if use_r1 {
                // v1 ~= v2 | ~r1   (r1 = "v1 was new", so ~r1 = v1 : s1)
                or2(args_differ(), not(r1_bool()))
            } else {
                or2(args_differ(), v1_in_s1())
            }
        }
        ("add", "contains") => {
            if use_r1 {
                or2(args_differ(), not(r1_bool()))
            } else {
                or2(args_differ(), v1_in_s1())
            }
        }
        ("add", "remove") => args_differ(),
        ("add", "size") => {
            // size observes |s|, which changes exactly when v1 was new.
            if use_r1 {
                not(r1_bool())
            } else {
                v1_in_s1()
            }
        }

        // -- contains first -------------------------------------------------
        ("contains", "add") => {
            if use_r1 {
                or2(args_differ(), r1_bool())
            } else {
                or2(args_differ(), v1_in_s1())
            }
        }
        ("contains", "remove") => {
            if use_r1 {
                or2(args_differ(), not(r1_bool()))
            } else {
                or2(args_differ(), not(v1_in_s1()))
            }
        }
        ("contains", "contains") | ("contains", "size") => tru(),

        // -- remove first ---------------------------------------------------
        ("remove", "add") => args_differ(),
        ("remove", "contains") => or2(args_differ(), not(v1_in_s1())),
        ("remove", "remove") => {
            if !first.recorded && !second.recorded {
                tru()
            } else if use_r1 {
                or2(args_differ(), not(r1_bool()))
            } else {
                or2(args_differ(), not(v1_in_s1()))
            }
        }
        ("remove", "size") => {
            if use_r1 {
                not(r1_bool())
            } else {
                not(v1_in_s1())
            }
        }

        // -- size first -----------------------------------------------------
        ("size", "add") => v2_in_s1(),
        ("size", "remove") => not(v2_in_s1()),
        ("size", "contains") | ("size", "size") => tru(),

        (a, b) => unreachable!("unknown set operation pair {a}/{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ConditionKind::*;

    fn rec(op: &str) -> OpVariant {
        OpVariant::recorded(op)
    }
    fn dis(op: &str) -> OpVariant {
        OpVariant::discarded(op)
    }

    #[test]
    fn table_5_2_before_conditions() {
        // Row: s1.add(v1) / r2 = s2.contains(v2):  v1 ~= v2 | v1 : s1
        assert_eq!(
            condition(&dis("add"), &rec("contains"), Before),
            or2(
                neq(var_elem("v1"), var_elem("v2")),
                member(var_elem("v1"), var_set("s1"))
            )
        );
        // Row: s1.add(v1) / s2.remove(v2): v1 ~= v2
        assert_eq!(
            condition(&dis("add"), &dis("remove"), Before),
            neq(var_elem("v1"), var_elem("v2"))
        );
        // Row: r1 = contains(v1) / s2.remove(v2): v1 ~= v2 | v1 ~: s1
        assert_eq!(
            condition(&rec("contains"), &dis("remove"), Before),
            or2(
                neq(var_elem("v1"), var_elem("v2")),
                not(member(var_elem("v1"), var_set("s1")))
            )
        );
        // Row: s1.remove(v1) / s2.remove(v2) (both discarded): true
        assert!(condition(&dis("remove"), &dis("remove"), Before).is_true());
        // Row: s1.add(v1) / s2.add(v2) (both discarded): true
        assert!(condition(&dis("add"), &dis("add"), Before).is_true());
    }

    #[test]
    fn table_5_3_between_conditions_use_r1() {
        // Row: r1 = contains(v1) / s2.add(v2): v1 ~= v2 | r1 = true
        assert_eq!(
            condition(&rec("contains"), &dis("add"), Between),
            or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1"))
        );
        // Row: r1 = contains(v1) / s2.remove(v2): v1 ~= v2 | r1 = false
        assert_eq!(
            condition(&rec("contains"), &dis("remove"), Between),
            or2(neq(var_elem("v1"), var_elem("v2")), not(var_bool("r1")))
        );
    }

    #[test]
    fn recorded_add_add_between_matches_section_5_1() {
        // "the between commutativity condition for the r1 = s.add(v1);
        //  r2 = s.add(v2) pair is (v1 ~= v2 | ~r1)"
        assert_eq!(
            condition(&rec("add"), &rec("add"), Between),
            or2(neq(var_elem("v1"), var_elem("v2")), not(var_bool("r1")))
        );
        // "while the commutativity condition for the s.add(v1), s.add(v2)
        //  pair is simply true"
        assert!(condition(&dis("add"), &dis("add"), Between).is_true());
    }

    #[test]
    fn size_pairs_depend_on_membership() {
        assert_eq!(
            condition(&rec("size"), &dis("add"), Before),
            member(var_elem("v2"), var_set("s1"))
        );
        assert_eq!(
            condition(&rec("size"), &dis("remove"), After),
            not(member(var_elem("v2"), var_set("s1")))
        );
        assert!(condition(&rec("size"), &rec("size"), Before).is_true());
    }
}
