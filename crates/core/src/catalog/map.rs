//! Commutativity conditions for the map interface — AssociationList and
//! HashTable (Tables 5.4 and 5.5).

use semcommute_logic::build::*;
use semcommute_logic::Term;

use super::helpers::{get_k1, k1_mapped, k2_mapped, keys_differ, r1_bool, r1_elem, s1_map};
use crate::kind::ConditionKind;
use crate::variant::OpVariant;

/// The commutativity condition for `first(…); second(…)` on the map
/// interface.
///
/// Before conditions follow Table 5.4 (stated over the initial abstract map
/// `s1`); after conditions follow Table 5.5 (when the first operation records
/// its return value, the query on the initial state is replaced by the
/// equivalent test of `r1`, as the paper does); between conditions use the
/// `r1` form whenever it is available. Pairs not shown in the paper's
/// representative tables (`containsKey` and `size` pairs, discarded-variant
/// combinations) follow the same derivations and are verified sound and
/// complete by the driver.
pub fn condition(first: &OpVariant, second: &OpVariant, kind: ConditionKind) -> Term {
    let use_r1 = kind.allows_first_result() && first.recorded;
    let v1 = || var_elem("v1");
    let v2 = || var_elem("v2");
    match (first.op.as_str(), second.op.as_str()) {
        // -- pure observers against each other ------------------------------
        ("get" | "containsKey" | "size", "get" | "containsKey" | "size") => tru(),

        // -- get first ------------------------------------------------------
        ("get", "put") => {
            // k1 ~= k2 | s1.get(k1) = v2      (after form: k1 ~= k2 | r1 = v2)
            if use_r1 {
                or2(keys_differ(), eq(r1_elem(), v2()))
            } else {
                or2(keys_differ(), eq(get_k1(), v2()))
            }
        }
        ("get", "remove") => {
            // k1 ~= k2 | s1.containsKey(k1) = false   (after: k1 ~= k2 | r1 = null)
            if use_r1 {
                or2(keys_differ(), eq(r1_elem(), null()))
            } else {
                or2(keys_differ(), not(k1_mapped()))
            }
        }

        // -- containsKey first ----------------------------------------------
        ("containsKey", "put") => {
            if use_r1 {
                or2(keys_differ(), r1_bool())
            } else {
                or2(keys_differ(), k1_mapped())
            }
        }
        ("containsKey", "remove") => {
            if use_r1 {
                or2(keys_differ(), not(r1_bool()))
            } else {
                or2(keys_differ(), not(k1_mapped()))
            }
        }

        // -- put first ------------------------------------------------------
        ("put", "get") => or2(keys_differ(), eq(get_k1(), v1())),
        ("put", "containsKey") => or2(keys_differ(), k1_mapped()),
        ("put", "put") => {
            if !first.recorded && !second.recorded {
                // k1 ~= k2 | v1 = v2
                or2(keys_differ(), eq(v1(), v2()))
            } else {
                // A recorded put also observes the previous value for the key.
                or2(keys_differ(), and2(eq(v1(), v2()), eq(get_k1(), v1())))
            }
        }
        ("put", "remove") => keys_differ(),
        ("put", "size") => k1_mapped(),

        // -- remove first ---------------------------------------------------
        ("remove", "get") | ("remove", "containsKey") => or2(keys_differ(), not(k1_mapped())),
        ("remove", "put") => keys_differ(),
        ("remove", "remove") => {
            if !first.recorded && !second.recorded {
                tru()
            } else if use_r1 {
                or2(keys_differ(), eq(r1_elem(), null()))
            } else {
                or2(keys_differ(), not(k1_mapped()))
            }
        }
        ("remove", "size") => {
            if use_r1 {
                eq(r1_elem(), null())
            } else {
                not(k1_mapped())
            }
        }

        // -- size first -----------------------------------------------------
        ("size", "put") => k2_mapped(),
        ("size", "remove") => not(map_has_key(s1_map(), var_elem("k2"))),

        (a, b) => unreachable!("unknown map operation pair {a}/{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ConditionKind::*;

    fn rec(op: &str) -> OpVariant {
        OpVariant::recorded(op)
    }
    fn dis(op: &str) -> OpVariant {
        OpVariant::discarded(op)
    }

    #[test]
    fn table_5_4_before_conditions() {
        // Row: r1 = get(k1) / put(k2, v2): k1 ~= k2 | s1.get(k1) = v2
        assert_eq!(
            condition(&rec("get"), &dis("put"), Before),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                eq(map_get(var_map("s1"), var_elem("k1")), var_elem("v2"))
            )
        );
        // Row: r1 = get(k1) / remove(k2): k1 ~= k2 | s1.containsKey(k1) = false
        assert_eq!(
            condition(&rec("get"), &dis("remove"), Before),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                not(map_has_key(var_map("s1"), var_elem("k1")))
            )
        );
        // Row: put(k1, v1) / put(k2, v2) (both discarded): k1 ~= k2 | v1 = v2
        assert_eq!(
            condition(&dis("put"), &dis("put"), Before),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                eq(var_elem("v1"), var_elem("v2"))
            )
        );
        // Row: put / remove and remove / put: k1 ~= k2
        assert_eq!(
            condition(&dis("put"), &dis("remove"), Before),
            neq(var_elem("k1"), var_elem("k2"))
        );
        assert_eq!(
            condition(&dis("remove"), &dis("put"), Before),
            neq(var_elem("k1"), var_elem("k2"))
        );
        // Row: remove / remove (both discarded): true
        assert!(condition(&dis("remove"), &dis("remove"), Before).is_true());
        // Row: get / get: true
        assert!(condition(&rec("get"), &rec("get"), Before).is_true());
    }

    #[test]
    fn table_5_5_after_conditions_use_r1() {
        // Row: r1 = get(k1) / put(k2, v2): k1 ~= k2 | r1 = v2
        assert_eq!(
            condition(&rec("get"), &dis("put"), After),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                eq(var_elem("r1"), var_elem("v2"))
            )
        );
        // Row: r1 = get(k1) / remove(k2): k1 ~= k2 | r1 = null
        assert_eq!(
            condition(&rec("get"), &dis("remove"), After),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                eq(var_elem("r1"), null())
            )
        );
        // Row: put(k1, v1) / get(k2) keeps the initial-state form even after.
        assert_eq!(
            condition(&dis("put"), &rec("get"), After),
            or2(
                neq(var_elem("k1"), var_elem("k2")),
                eq(map_get(var_map("s1"), var_elem("k1")), var_elem("v1"))
            )
        );
    }

    #[test]
    fn size_pairs_depend_on_key_presence() {
        assert_eq!(
            condition(&dis("put"), &rec("size"), Before),
            map_has_key(var_map("s1"), var_elem("k1"))
        );
        assert_eq!(
            condition(&rec("size"), &dis("remove"), Before),
            not(map_has_key(var_map("s1"), var_elem("k2")))
        );
        assert!(condition(&rec("size"), &rec("containsKey"), Between).is_true());
    }

    #[test]
    fn recorded_put_put_also_constrains_previous_value() {
        let c = condition(&rec("put"), &rec("put"), Before);
        let expected = or2(
            neq(var_elem("k1"), var_elem("k2")),
            and2(
                eq(var_elem("v1"), var_elem("v2")),
                eq(map_get(var_map("s1"), var_elem("k1")), var_elem("v1")),
            ),
        );
        assert_eq!(c, expected);
    }
}
