//! Shared term-building helpers for the condition catalogs.
//!
//! Conditions are written over the canonical variables of
//! [`crate::condition::names`]; these helpers keep the catalog code close to
//! the notation of the paper's tables (`s1`, `s2`, `v1`, `k2`, `r1`, …).

use semcommute_logic::build::*;
use semcommute_logic::Term;

use crate::condition::names;

/// The initial abstract state `s1`, as a set.
pub fn s1_set() -> Term {
    var_set(names::INITIAL)
}

/// The initial abstract state `s1`, as a map.
pub fn s1_map() -> Term {
    var_map(names::INITIAL)
}

/// The initial abstract state `s1`, as a sequence.
pub fn s1_seq() -> Term {
    var_seq(names::INITIAL)
}

/// The first operation's return value `r1`, as a boolean.
pub fn r1_bool() -> Term {
    var_bool(names::RESULT1)
}

/// The first operation's return value `r1`, as an element.
pub fn r1_elem() -> Term {
    var_elem(names::RESULT1)
}

/// The first operation's return value `r1`, as an integer.
pub fn r1_int() -> Term {
    var_int(names::RESULT1)
}

/// The first operation's element argument `v1`.
pub fn v1() -> Term {
    var_elem("v1")
}

/// The second operation's element argument `v2`.
pub fn v2() -> Term {
    var_elem("v2")
}

/// The first operation's key argument `k1`.
pub fn k1() -> Term {
    var_elem("k1")
}

/// The second operation's key argument `k2`.
pub fn k2() -> Term {
    var_elem("k2")
}

/// The first operation's index argument `i1`.
pub fn i1() -> Term {
    var_int("i1")
}

/// The second operation's index argument `i2`.
pub fn i2() -> Term {
    var_int("i2")
}

/// The first operation's integer argument `v1` (Accumulator `increase`).
pub fn v1_int() -> Term {
    var_int("v1")
}

/// The second operation's integer argument `v2` (Accumulator `increase`).
pub fn v2_int() -> Term {
    var_int("v2")
}

/// `v1 ~= v2` over elements.
pub fn args_differ() -> Term {
    neq(v1(), v2())
}

/// `k1 ~= k2` over keys.
pub fn keys_differ() -> Term {
    neq(k1(), k2())
}

/// `v1 : s1` — the first element argument is in the initial set.
pub fn v1_in_s1() -> Term {
    member(v1(), s1_set())
}

/// `v2 : s1` — the second element argument is in the initial set.
pub fn v2_in_s1() -> Term {
    member(v2(), s1_set())
}

/// `s1.containsKey(k1)`.
pub fn k1_mapped() -> Term {
    map_has_key(s1_map(), k1())
}

/// `s1.containsKey(k2)`.
pub fn k2_mapped() -> Term {
    map_has_key(s1_map(), k2())
}

/// `s1.get(k1)`.
pub fn get_k1() -> Term {
    map_get(s1_map(), k1())
}

/// `s1.get(i)` on the initial sequence.
pub fn at(i: Term) -> Term {
    seq_at(s1_seq(), i)
}

/// `s1.indexOf(v)` on the initial sequence.
pub fn index_of(v: Term) -> Term {
    seq_index_of(s1_seq(), v)
}

/// `s1.lastIndexOf(v)` on the initial sequence.
pub fn last_index_of(v: Term) -> Term {
    seq_last_index_of(s1_seq(), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::{free_vars, Sort};

    #[test]
    fn helpers_use_the_canonical_names() {
        let t = and2(args_differ(), v1_in_s1());
        let fv = free_vars(&t);
        assert_eq!(fv["v1"], Sort::Elem);
        assert_eq!(fv["v2"], Sort::Elem);
        assert_eq!(fv["s1"], Sort::Set);
    }

    #[test]
    fn map_and_seq_helpers_are_well_sorted() {
        assert_eq!(semcommute_logic::sort_of(&get_k1()).unwrap(), Sort::Elem);
        assert_eq!(
            semcommute_logic::sort_of(&index_of(v1())).unwrap(),
            Sort::Int
        );
        assert_eq!(semcommute_logic::sort_of(&at(i1())).unwrap(), Sort::Elem);
        assert_eq!(
            semcommute_logic::sort_of(&keys_differ()).unwrap(),
            Sort::Bool
        );
        assert_eq!(
            semcommute_logic::sort_of(&last_index_of(v2())).unwrap(),
            Sort::Int
        );
    }
}
