//! The commutativity-condition catalog: 765 conditions, as in the paper.
//!
//! For every interface, every *ordered* pair of operation variants, and every
//! [`ConditionKind`], the catalog provides a sound and complete commutativity
//! condition (Section 5.1, Tables 5.1–5.7). The per-interface condition
//! formulas live in the submodules; this module assembles them into the full
//! catalog and exposes the counting used by the paper:
//!
//! * per interface: 2² × 3 = 12 (Accumulator), 6² × 3 = 108 (set interface),
//!   7² × 3 = 147 (map interface), 9² × 3 = 243 (ArrayList);
//! * per data structure (counting ListSet/HashSet and
//!   AssociationList/HashTable separately, as the paper does):
//!   12 + 2·108 + 2·147 + 243 = **765**.

pub mod accumulator;
pub mod helpers;
pub mod list;
pub mod map;
pub mod set;

use semcommute_spec::{interface_by_id, InterfaceId};

use crate::condition::CommutativityCondition;
use crate::kind::ConditionKind;
use crate::variant::{interface_variants, OpVariant};

/// The condition formula for one ordered pair of operation variants of an
/// interface.
pub fn condition_formula(
    id: InterfaceId,
    first: &OpVariant,
    second: &OpVariant,
    kind: ConditionKind,
) -> semcommute_logic::Term {
    match id {
        InterfaceId::Accumulator => accumulator::condition(first, second, kind),
        InterfaceId::Set => set::condition(first, second, kind),
        InterfaceId::Map => map::condition(first, second, kind),
        InterfaceId::List => list::condition(first, second, kind),
    }
}

/// The full catalog for one interface: all ordered pairs of operation
/// variants × the three condition kinds.
pub fn interface_catalog(id: InterfaceId) -> Vec<CommutativityCondition> {
    let iface = interface_by_id(id);
    let variants = interface_variants(&iface);
    let mut out = Vec::new();
    for first in &variants {
        for second in &variants {
            for kind in ConditionKind::ALL {
                let formula = condition_formula(id, first, second, kind);
                out.push(CommutativityCondition::new(
                    id,
                    first.clone(),
                    second.clone(),
                    kind,
                    formula,
                ));
            }
        }
    }
    out
}

/// The catalogs of all four interfaces (510 distinct conditions; set and map
/// conditions are shared between their two implementations).
pub fn full_catalog() -> Vec<CommutativityCondition> {
    InterfaceId::ALL
        .into_iter()
        .flat_map(interface_catalog)
        .collect()
}

/// The catalog organised per concrete data structure, as the paper counts it:
/// one entry per data structure name, each carrying the conditions of its
/// interface. The total number of conditions across all entries is 765.
pub fn data_structure_catalog() -> Vec<(&'static str, Vec<CommutativityCondition>)> {
    let mut out = Vec::new();
    for id in InterfaceId::ALL {
        let conditions = interface_catalog(id);
        for name in id.implementations() {
            out.push((*name, conditions.clone()));
        }
    }
    out
}

/// The paper's headline count: the number of (data structure, condition)
/// entries, i.e. 765.
pub fn paper_condition_count() -> usize {
    data_structure_catalog()
        .iter()
        .map(|(_, conditions)| conditions.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_spec::interface_by_id;

    #[test]
    fn interface_counts_match_section_5_1() {
        assert_eq!(interface_catalog(InterfaceId::Accumulator).len(), 12);
        assert_eq!(interface_catalog(InterfaceId::Set).len(), 108);
        assert_eq!(interface_catalog(InterfaceId::Map).len(), 147);
        assert_eq!(interface_catalog(InterfaceId::List).len(), 243);
        assert_eq!(full_catalog().len(), 12 + 108 + 147 + 243);
    }

    #[test]
    fn paper_count_is_765() {
        assert_eq!(paper_condition_count(), 765);
        assert_eq!(data_structure_catalog().len(), 6);
    }

    #[test]
    fn every_condition_is_well_formed() {
        for condition in full_catalog() {
            let iface = interface_by_id(condition.interface);
            condition
                .validate(&iface)
                .unwrap_or_else(|e| panic!("invalid condition {}: {e}", condition.id()));
            assert!(
                semcommute_logic::ty::check_formula(&condition.formula).is_ok(),
                "{} is not a boolean formula",
                condition.id()
            );
        }
    }

    #[test]
    fn catalog_has_no_duplicate_entries() {
        let catalog = full_catalog();
        let mut ids: Vec<String> = catalog.iter().map(|c| c.id()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate condition identifiers");
    }

    #[test]
    fn trivially_true_conditions_exist_for_observer_pairs() {
        // contains/contains, get/get, read/read should all be `true` — the
        // compile-time-friendly special case highlighted in Section 5.1.
        for (iface, op) in [
            (InterfaceId::Set, "contains"),
            (InterfaceId::Map, "get"),
            (InterfaceId::Accumulator, "read"),
            (InterfaceId::List, "get"),
        ] {
            let c = interface_catalog(iface)
                .into_iter()
                .find(|c| {
                    c.first.op == op
                        && c.second.op == op
                        && c.kind == ConditionKind::Before
                        && c.first.recorded
                        && c.second.recorded
                })
                .expect("pair exists");
            assert!(c.is_trivially_true(), "{} should be `true`", c.id());
        }
    }
}
