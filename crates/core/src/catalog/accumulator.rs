//! Commutativity conditions for the Accumulator (Table 5.1).

use semcommute_logic::build::*;
use semcommute_logic::Term;

use super::helpers::{v1_int, v2_int};
use crate::kind::ConditionKind;
use crate::variant::OpVariant;

/// The commutativity condition for `first(…); second(…)` on an Accumulator.
///
/// * `increase` / `increase` — always commute (integer addition commutes).
/// * `increase(v1)` / `read()` — commute exactly when `v1 = 0`: otherwise the
///   `read` observes a different counter value in the two orders.
/// * `read()` / `increase(v2)` — commute exactly when `v2 = 0`.
/// * `read` / `read` — always commute.
///
/// The conditions are the same for all three kinds: they reference only the
/// operation arguments.
pub fn condition(first: &OpVariant, second: &OpVariant, _kind: ConditionKind) -> Term {
    match (first.op.as_str(), second.op.as_str()) {
        ("increase", "increase") => tru(),
        ("increase", "read") => eq(v1_int(), int(0)),
        ("read", "increase") => eq(v2_int(), int(0)),
        ("read", "read") => tru(),
        (a, b) => unreachable!("unknown Accumulator operation pair {a}/{b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ConditionKind::*;

    fn rec(op: &str) -> OpVariant {
        OpVariant::recorded(op)
    }

    #[test]
    fn increase_pairs_always_commute() {
        for kind in [Before, Between, After] {
            assert!(condition(&rec("increase"), &rec("increase"), kind).is_true());
            assert!(condition(&rec("read"), &rec("read"), kind).is_true());
        }
    }

    #[test]
    fn increase_read_requires_zero_amount() {
        let c = condition(&rec("increase"), &rec("read"), Before);
        assert_eq!(c, eq(var_int("v1"), int(0)));
        let c = condition(&rec("read"), &rec("increase"), Between);
        assert_eq!(c, eq(var_int("v2"), int(0)));
    }
}
