//! Operation variants: recorded vs. discarded return values.

use std::fmt;

use semcommute_spec::{InterfaceSpec, OpSpec};

/// An interface operation together with whether the client records its return
/// value.
///
/// The paper verifies commutativity conditions for two variants of every
/// state-updating operation that returns a value: one in which the client
/// records the return value (and can therefore observe more about the data
/// structure, making commutativity rarer) and one in which the client
/// discards it. Observer operations and `void` updates have a single variant.
/// This is how the paper arrives at 6 operations for the set interface, 7 for
/// the map interface, 9 for ArrayList, and 2 for Accumulator (Section 5.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpVariant {
    /// The underlying operation name.
    pub op: String,
    /// Whether the client records the return value.
    pub recorded: bool,
}

impl OpVariant {
    /// A variant that records the return value.
    pub fn recorded(op: impl Into<String>) -> OpVariant {
        OpVariant {
            op: op.into(),
            recorded: true,
        }
    }

    /// A variant that discards the return value.
    pub fn discarded(op: impl Into<String>) -> OpVariant {
        OpVariant {
            op: op.into(),
            recorded: false,
        }
    }

    /// A label used in method names and reports: the operation name, with a
    /// trailing underscore for the discarded variant (`add` vs `add_`).
    pub fn label(&self) -> String {
        if self.recorded {
            self.op.clone()
        } else {
            format!("{}_", self.op)
        }
    }

    /// How the variant is written in the paper's tables: `r1 = s1.add(v1)`
    /// for recorded variants of value-returning operations, `s1.add(v1)` for
    /// discarded ones.
    pub fn table_form(&self, spec: &OpSpec, object: &str, result_name: &str) -> String {
        let args: Vec<String> = spec
            .params
            .iter()
            .map(|(name, _)| format!("{name}{}", suffix_of(result_name)))
            .collect();
        let call = format!("{object}.{}({})", self.op, args.join(", "));
        if self.recorded && spec.has_result() {
            format!("{result_name} = {call}")
        } else {
            call
        }
    }
}

fn suffix_of(result_name: &str) -> String {
    // result names are "r1" / "r2"; the argument suffix matches the digit.
    result_name.chars().filter(|c| c.is_ascii_digit()).collect()
}

impl fmt::Display for OpVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The operation variants of an interface, in specification order: every
/// operation once, plus a discarded variant for each state-updating operation
/// that returns a value.
pub fn interface_variants(iface: &InterfaceSpec) -> Vec<OpVariant> {
    let mut out = Vec::new();
    for op in &iface.ops {
        out.push(OpVariant::recorded(&op.name));
        if op.updates_state && op.has_result() {
            out.push(OpVariant::discarded(&op.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_spec::{accumulator_interface, list_interface, map_interface, set_interface};

    #[test]
    fn variant_counts_match_section_5_1() {
        assert_eq!(interface_variants(&accumulator_interface()).len(), 2);
        assert_eq!(interface_variants(&set_interface()).len(), 6);
        assert_eq!(interface_variants(&map_interface()).len(), 7);
        assert_eq!(interface_variants(&list_interface()).len(), 9);
    }

    #[test]
    fn labels_distinguish_variants() {
        assert_eq!(OpVariant::recorded("add").label(), "add");
        assert_eq!(OpVariant::discarded("add").label(), "add_");
        assert_eq!(OpVariant::discarded("add").to_string(), "add_");
    }

    #[test]
    fn discarded_variants_exist_only_for_updating_value_returning_ops() {
        let iface = set_interface();
        let variants = interface_variants(&iface);
        let discarded: Vec<&OpVariant> = variants.iter().filter(|v| !v.recorded).collect();
        let names: Vec<&str> = discarded.iter().map(|v| v.op.as_str()).collect();
        assert_eq!(names, vec!["add", "remove"]);
    }

    #[test]
    fn table_form_matches_paper_style() {
        let iface = set_interface();
        let add = iface.op("add").unwrap();
        assert_eq!(
            OpVariant::recorded("add").table_form(add, "s1", "r1"),
            "r1 = s1.add(v1)"
        );
        assert_eq!(
            OpVariant::discarded("add").table_form(add, "s2", "r2"),
            "s2.add(v2)"
        );
        let size = iface.op("size").unwrap();
        assert_eq!(
            OpVariant::recorded("size").table_form(size, "s2", "r2"),
            "r2 = s2.size()"
        );
    }
}
