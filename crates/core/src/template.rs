//! Testing-method templates (Figures 3-1 and 3-2 of the paper).
//!
//! The generator takes a commutativity condition and produces the soundness
//! and completeness commutativity testing methods by filling in the template
//! parameters: the two operations are executed in one order on one abstract
//! state (`sa`), the condition (or its negation) is assumed at the position
//! corresponding to its kind, the operations are executed in the reverse
//! order on a second abstract state (`sb`) that starts out equal to the
//! first, and the final assertion compares the recorded return values and the
//! final abstract states.
//!
//! Both testing methods operate on a single shared initial abstract state
//! variable `s1`; this encodes the `requires "sa..contents = sb..contents"`
//! clause of the paper's template directly (the renderer still prints the
//! clause for figure fidelity).

use semcommute_logic::subst::rename_map;
use semcommute_logic::{build, rename_vars, Sort, Term};
use semcommute_spec::{interface_by_id, InterfaceSpec, OpSpec};

use crate::condition::{names, CommutativityCondition};
use crate::kind::ConditionKind;
use crate::method::{CallStmt, PreMode, Stmt, TestingMethod};
use crate::variant::OpVariant;

/// Names used by the generated methods.
mod method_names {
    /// Return value of the first operation in the first execution order.
    pub const R1A: &str = "r1a";
    /// Return value of the second operation in the first execution order.
    pub const R2A: &str = "r2a";
    /// Return value of the second operation in the reverse execution order.
    pub const R2B: &str = "r2b";
    /// Return value of the first operation in the reverse execution order.
    pub const R1B: &str = "r1b";
    /// State of `sa` after the first operation.
    pub const SA1: &str = "sa_1";
    /// State of `sa` after both operations.
    pub const SA2: &str = "sa_2";
    /// State of `sb` after the (reordered) second operation.
    pub const SB1: &str = "sb_1";
    /// State of `sb` after both operations.
    pub const SB2: &str = "sb_2";
}

/// The canonical argument terms of an operation within a testing method
/// (formal parameter names suffixed by which operation this is).
fn arg_terms(op: &OpSpec, which: usize) -> Vec<Term> {
    op.params
        .iter()
        .map(|(formal, sort)| Term::var(names::arg(formal, which), *sort))
        .collect()
}

/// The method parameters for a pair of operations: the shared initial state
/// plus the suffixed arguments of both operations.
fn method_params(iface: &InterfaceSpec, op1: &OpSpec, op2: &OpSpec) -> Vec<(String, Sort)> {
    let mut params = vec![(names::INITIAL.to_string(), iface.state_sort)];
    for (which, op) in [(1usize, op1), (2usize, op2)] {
        for (formal, sort) in &op.params {
            params.push((names::arg(formal, which), *sort));
        }
    }
    params
}

/// Builds a call statement.
#[allow(clippy::too_many_arguments)]
fn call(
    object: &str,
    op: &OpSpec,
    variant: &OpVariant,
    which: usize,
    pre_state: &str,
    post_state: Option<&str>,
    result: Option<&str>,
    pre_mode: PreMode,
) -> Stmt {
    let record = variant.recorded && op.has_result();
    Stmt::Call(CallStmt {
        object: object.to_string(),
        op: op.name.clone(),
        pre_state: pre_state.to_string(),
        post_state: post_state.map(str::to_string),
        args: arg_terms(op, which),
        result: if record {
            result.map(str::to_string)
        } else {
            None
        },
        pre_mode,
    })
}

/// Renames the canonical condition variables to the names used inside the
/// generated method (intermediate and final states of `sa`, recorded return
/// values of the first execution order).
fn rename_condition(cond: &CommutativityCondition, op1_updates: bool, op2_updates: bool) -> Term {
    let s2 = if op1_updates {
        method_names::SA1
    } else {
        names::INITIAL
    };
    let s3 = if op2_updates { method_names::SA2 } else { s2 };
    let renaming = rename_map([
        (names::INTERMEDIATE, s2),
        (names::FINAL, s3),
        (names::RESULT1, method_names::R1A),
        (names::RESULT2, method_names::R2A),
    ]);
    rename_vars(&cond.formula, &renaming)
}

/// The equality the soundness method asserts (and the completeness method
/// negates): recorded return values and final abstract states agree across
/// the two execution orders.
fn agreement(
    iface: &InterfaceSpec,
    cond: &CommutativityCondition,
    op1: &OpSpec,
    op2: &OpSpec,
) -> Term {
    let mut parts = Vec::new();
    if cond.first.recorded && op1.has_result() {
        parts.push(build::eq(
            Term::var(method_names::R1A, op1.result_sort.expect("has result")),
            Term::var(method_names::R1B, op1.result_sort.expect("has result")),
        ));
    }
    if cond.second.recorded && op2.has_result() {
        parts.push(build::eq(
            Term::var(method_names::R2A, op2.result_sort.expect("has result")),
            Term::var(method_names::R2B, op2.result_sort.expect("has result")),
        ));
    }
    let sa_final = final_state_of(op1, op2, true);
    let sb_final = final_state_of(op1, op2, false);
    parts.push(build::eq(
        Term::var(sa_final, iface.state_sort),
        Term::var(sb_final, iface.state_sort),
    ));
    build::and(parts)
}

/// The name of the final abstract state variable of `sa` (first order) or
/// `sb` (reverse order), taking into account which operations update.
fn final_state_of(op1: &OpSpec, op2: &OpSpec, first_order: bool) -> &'static str {
    if first_order {
        if op2.updates_state {
            method_names::SA2
        } else if op1.updates_state {
            method_names::SA1
        } else {
            // Neither operation updates: both final states are the initial one.
            // (The assert compares `s1 = s1`, which the structural prover
            // discharges immediately.)
            names::INITIAL
        }
    } else if op1.updates_state {
        method_names::SB2
    } else if op2.updates_state {
        method_names::SB1
    } else {
        names::INITIAL
    }
}

/// The statements shared by both templates: the two execution orders with the
/// condition (or its negation) assumed at the position matching its kind.
fn body(
    cond: &CommutativityCondition,
    op1: &OpSpec,
    op2: &OpSpec,
    condition_formula: Term,
    second_order_pre: PreMode,
) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let renamed = condition_formula;
    if cond.kind == ConditionKind::Before {
        stmts.push(Stmt::Assume(renamed.clone()));
    }
    // First execution order, on sa.
    stmts.push(call(
        "sa",
        op1,
        &cond.first,
        1,
        names::INITIAL,
        op1.updates_state.then_some(method_names::SA1),
        Some(method_names::R1A),
        PreMode::Assume,
    ));
    if cond.kind == ConditionKind::Between {
        stmts.push(Stmt::Assume(renamed.clone()));
    }
    let sa_after_op1 = if op1.updates_state {
        method_names::SA1
    } else {
        names::INITIAL
    };
    stmts.push(call(
        "sa",
        op2,
        &cond.second,
        2,
        sa_after_op1,
        op2.updates_state.then_some(method_names::SA2),
        Some(method_names::R2A),
        PreMode::Assume,
    ));
    if cond.kind == ConditionKind::After {
        stmts.push(Stmt::Assume(renamed));
    }
    // Reverse execution order, on sb (which starts from the same state s1).
    stmts.push(call(
        "sb",
        op2,
        &cond.second,
        2,
        names::INITIAL,
        op2.updates_state.then_some(method_names::SB1),
        Some(method_names::R2B),
        second_order_pre,
    ));
    let sb_after_op2 = if op2.updates_state {
        method_names::SB1
    } else {
        names::INITIAL
    };
    stmts.push(call(
        "sb",
        op1,
        &cond.first,
        1,
        sb_after_op2,
        op1.updates_state.then_some(method_names::SB2),
        Some(method_names::R1B),
        second_order_pre,
    ));
    stmts
}

/// Generates the soundness commutativity testing method for a condition
/// (Section 3.2): the condition is assumed, the preconditions of the reverse
/// execution order must be proved, and the final assertion states that the
/// return values and final abstract states agree.
pub fn soundness_method(cond: &CommutativityCondition, id: usize) -> TestingMethod {
    build_method(cond, id, true)
}

/// Generates the completeness commutativity testing method for a condition
/// (Section 3.1, Figure 3-1): the negation of the condition is assumed, the
/// preconditions of both orders are assumed, and the final assertion states
/// that some return value or the final abstract states differ.
pub fn completeness_method(cond: &CommutativityCondition, id: usize) -> TestingMethod {
    build_method(cond, id, false)
}

fn build_method(cond: &CommutativityCondition, id: usize, soundness: bool) -> TestingMethod {
    let iface = interface_by_id(cond.interface);
    let op1 = iface
        .op(&cond.first.op)
        .unwrap_or_else(|| panic!("unknown operation `{}`", cond.first.op))
        .clone();
    let op2 = iface
        .op(&cond.second.op)
        .unwrap_or_else(|| panic!("unknown operation `{}`", cond.second.op))
        .clone();
    let renamed = rename_condition(cond, op1.updates_state, op2.updates_state);
    let (condition_formula, tag, second_order_pre) = if soundness {
        (renamed, "s", PreMode::Prove)
    } else {
        (build::not(renamed), "c", PreMode::Assume)
    };
    let mut statements = body(cond, &op1, &op2, condition_formula, second_order_pre);
    let agreement = agreement(&iface, cond, &op1, &op2);
    let goal = if soundness {
        agreement
    } else {
        build::not(agreement)
    };
    statements.push(Stmt::Assert(goal));
    TestingMethod {
        name: format!(
            "{}_{}_{}_{}_{}",
            cond.first.label(),
            cond.second.label(),
            cond.kind.tag(),
            tag,
            id
        ),
        interface: cond.interface,
        params: method_params(&iface, &op1, &op2),
        requires: vec![],
        statements,
        hints: crate::hints::hints_for(cond, soundness),
    }
}

/// Generates both testing methods for a condition, using `id` in their names.
pub fn testing_methods(cond: &CommutativityCondition, id: usize) -> (TestingMethod, TestingMethod) {
    (soundness_method(cond, id), completeness_method(cond, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use semcommute_spec::InterfaceId;

    fn contains_add_between() -> CommutativityCondition {
        catalog::interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| {
                c.first.op == "contains"
                    && c.second.op == "add"
                    && !c.second.recorded
                    && c.kind == ConditionKind::Between
            })
            .expect("condition exists")
    }

    #[test]
    fn soundness_method_matches_figure_2_2_structure() {
        let m = soundness_method(&contains_add_between(), 40);
        assert_eq!(m.name, "contains_add__between_s_40");
        // contains(v1); assume cond; add(v2); then reverse order on sb.
        let calls = m.calls();
        assert_eq!(calls.len(), 4);
        assert_eq!(calls[0].op, "contains");
        assert_eq!(calls[0].object, "sa");
        assert_eq!(calls[1].op, "add");
        assert_eq!(calls[2].op, "add");
        assert_eq!(calls[2].object, "sb");
        assert_eq!(calls[3].op, "contains");
        // The condition is assumed between the two sa calls.
        assert!(matches!(m.statements[1], Stmt::Assume(_)));
        // The reverse-order preconditions must be proved in a soundness method.
        assert_eq!(calls[2].pre_mode, PreMode::Prove);
        assert_eq!(calls[3].pre_mode, PreMode::Prove);
        // Final assert compares r1 and the final states (add is discarded, so
        // r2 is not compared).
        let assert = m.final_assert();
        let text = assert.to_string();
        assert!(text.contains("r1a = r1b"));
        assert!(!text.contains("r2a"));
        assert!(text.contains("sa_1 = sb_1") || text.contains("sb_1"));
    }

    #[test]
    fn completeness_method_negates_condition_and_assertion() {
        let m = completeness_method(&contains_add_between(), 40);
        assert_eq!(m.name, "contains_add__between_c_40");
        // All preconditions are assumed.
        assert!(m.calls().iter().all(|c| c.pre_mode == PreMode::Assume));
        // The assumed formula is the negated condition.
        let assumed = m
            .statements
            .iter()
            .find_map(|s| match s {
                Stmt::Assume(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(assumed, Term::Not(_)));
        // The final assertion is negated.
        assert!(matches!(m.final_assert(), Term::Not(_)));
    }

    #[test]
    fn before_conditions_are_assumed_before_any_call() {
        let cond = catalog::interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| {
                c.first.op == "add"
                    && c.second.op == "remove"
                    && c.kind == ConditionKind::Before
                    && c.first.recorded
                    && c.second.recorded
            })
            .unwrap();
        let m = soundness_method(&cond, 7);
        assert!(matches!(m.statements[0], Stmt::Assume(_)));
        assert!(matches!(m.statements[1], Stmt::Call(_)));
    }

    #[test]
    fn after_conditions_are_assumed_after_both_sa_calls() {
        let cond = catalog::interface_catalog(InterfaceId::Map)
            .into_iter()
            .find(|c| {
                c.first.op == "get"
                    && c.second.op == "put"
                    && c.kind == ConditionKind::After
                    && !c.second.recorded
            })
            .unwrap();
        let m = soundness_method(&cond, 3);
        // statements: call, call, assume, call, call, assert
        assert!(matches!(m.statements[2], Stmt::Assume(_)));
        // The renamed r1 appears in the assumed condition.
        if let Stmt::Assume(t) = &m.statements[2] {
            assert!(semcommute_logic::free_vars(t).contains_key("r1a"));
        }
    }

    #[test]
    fn observer_only_pairs_compare_the_initial_state() {
        let cond = catalog::interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| {
                c.first.op == "contains"
                    && c.second.op == "contains"
                    && c.kind == ConditionKind::Before
            })
            .unwrap();
        let m = soundness_method(&cond, 1);
        // No updates: the state-agreement conjunct degenerates to s1 = s1.
        assert!(m.final_assert().to_string().contains("s1 = s1"));
    }

    #[test]
    fn discarded_variants_do_not_bind_results() {
        let cond = catalog::interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| {
                c.first.op == "add"
                    && !c.first.recorded
                    && c.second.op == "add"
                    && !c.second.recorded
                    && c.kind == ConditionKind::Before
            })
            .unwrap();
        let m = soundness_method(&cond, 2);
        assert!(m.calls().iter().all(|c| c.result.is_none()));
    }

    #[test]
    fn method_params_include_state_and_suffixed_arguments() {
        let cond = catalog::interface_catalog(InterfaceId::Map)
            .into_iter()
            .find(|c| {
                c.first.op == "put"
                    && c.second.op == "remove"
                    && c.kind == ConditionKind::Before
                    && c.first.recorded
                    && c.second.recorded
            })
            .unwrap();
        let m = soundness_method(&cond, 9);
        let names: Vec<&str> = m.params.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["s1", "k1", "v1", "k2"]);
    }
}
