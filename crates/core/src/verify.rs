//! The verification driver: discharging the generated testing methods.
//!
//! For every commutativity condition the driver generates the soundness and
//! completeness testing methods, symbolically executes them into proof
//! obligations, and discharges the obligations with the prover portfolio.
//! This reproduces the experiment behind Table 5.8 (verification times per
//! data structure) and the headline claim that all 765 conditions are sound
//! and complete.

use std::sync::Arc;
use std::time::{Duration, Instant};

use semcommute_prover::queue::{self, ExitGuard, QueueReport, ScheduledObligation};
use semcommute_prover::{Portfolio, ProofStats, ProverChoice, Scope, Verdict, VerdictCache};
use semcommute_spec::InterfaceId;

use crate::catalog::interface_catalog;
use crate::condition::CommutativityCondition;
use crate::template::testing_methods;
use crate::vcgen::generate_obligations;

/// The scope the driver uses for an interface.
///
/// The counter/set/map obligations need only the named elements plus one
/// anonymous element (see `prover::scope`); the ArrayList obligations use the
/// explicit sequence scope, whose length bound is the verification parameter
/// reported alongside the results.
pub fn scope_for(interface: InterfaceId, seq_len: usize) -> Scope {
    match interface {
        InterfaceId::List => Scope::sequences(seq_len),
        _ => Scope {
            elem_padding: 1,
            max_collection_entries: 3,
            max_seq_len: 1,
            int_min: -2,
            int_max: 4,
            max_models: 50_000_000,
            orbit: semcommute_prover::scope::default_orbit(),
            bytecode: semcommute_prover::scope::default_bytecode(),
        },
    }
}

/// Options controlling a verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Number of worker threads in the unified work-stealing pool: the same
    /// workers drain whole obligations *and* the range tasks of split model
    /// searches, so this is the only parallelism axis.
    pub threads: usize,
    /// Sequence-length scope for ArrayList obligations.
    pub seq_len: usize,
    /// Verify only the first `n` conditions of the interface (for quick runs
    /// and tests); `None` verifies the whole catalog.
    pub limit: Option<usize>,
    /// Unreduced-candidate-space size above which a claimed obligation's
    /// model search is split into stealable range tasks (see
    /// [`semcommute_prover::queue::prove_all_scheduled_split`]);
    /// `u64::MAX` disables splitting. Ignored at `threads <= 1`, where the
    /// sequential oracle never splits. Verdicts do not depend on this value
    /// — only the work distribution does.
    pub split_threshold: u64,
    /// Whether the finite-model search enumerates the input space
    /// orbit-canonically (`true`, the default) or unreduced (`false` — the
    /// oracle enumerator the differential soundness harness compares
    /// against). See [`semcommute_prover::orbit`].
    pub orbit: bool,
    /// Whether the finite-model search evaluates candidates with the batched
    /// flat-register bytecode backend (`true`, the default) or the tree-walk
    /// oracle evaluator (`false`). The two backends report bit-identical
    /// verdicts, counter-models, and counters — see
    /// [`semcommute_prover::bytecode`].
    pub bytecode: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seq_len: 4,
            limit: None,
            split_threshold: queue::default_split_threshold(),
            orbit: semcommute_prover::scope::default_orbit(),
            bytecode: semcommute_prover::scope::default_bytecode(),
        }
    }
}

impl VerifyOptions {
    /// A configuration suitable for unit/integration tests: small scope and a
    /// bounded number of conditions.
    pub fn quick(limit: usize) -> VerifyOptions {
        VerifyOptions {
            threads: 2,
            seq_len: 3,
            limit: Some(limit),
            split_threshold: queue::default_split_threshold(),
            orbit: semcommute_prover::scope::default_orbit(),
            bytecode: semcommute_prover::scope::default_bytecode(),
        }
    }
}

/// The outcome of verifying one commutativity condition: the verdicts of its
/// soundness and completeness testing methods (each aggregating every proof
/// obligation the method produced).
#[derive(Debug, Clone)]
pub struct ConditionReport {
    /// The condition that was verified.
    pub condition: CommutativityCondition,
    /// Verdict of the soundness testing method.
    pub soundness: Verdict,
    /// Verdict of the completeness testing method.
    pub completeness: Verdict,
    /// Wall-clock time spent on this condition.
    pub elapsed: Duration,
    /// Whether the generated methods carried proof hints.
    pub hinted: bool,
}

impl ConditionReport {
    /// `true` when both the soundness and the completeness method verified.
    pub fn verified(&self) -> bool {
        self.soundness.is_valid() && self.completeness.is_valid()
    }
}

/// The outcome of verifying an interface's full (or limited) catalog.
#[derive(Debug, Clone)]
pub struct InterfaceReport {
    /// The interface.
    pub interface: InterfaceId,
    /// Per-condition reports, in catalog order.
    pub reports: Vec<ConditionReport>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// The sequence scope used (relevant for ArrayList).
    pub seq_len: usize,
}

impl InterfaceReport {
    /// Number of conditions whose soundness and completeness both verified.
    pub fn verified_count(&self) -> usize {
        self.reports.iter().filter(|r| r.verified()).count()
    }

    /// Number of conditions verified.
    pub fn total(&self) -> usize {
        self.reports.len()
    }

    /// Number of generated testing methods (two per condition).
    pub fn method_count(&self) -> usize {
        self.reports.len() * 2
    }

    /// Number of testing methods that carried proof hints.
    pub fn hinted_method_count(&self) -> usize {
        self.reports.iter().filter(|r| r.hinted).count()
    }

    /// Conditions that failed to verify, with the failing verdicts.
    pub fn failures(&self) -> Vec<&ConditionReport> {
        self.reports.iter().filter(|r| !r.verified()).collect()
    }

    /// Total candidate models examined by the finite-model prover across the
    /// run.
    pub fn models_checked(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().models_checked + r.completeness.stats().models_checked)
            .sum()
    }

    /// Total testing-method verdicts answered from the portfolio's
    /// obligation dedup cache.
    pub fn cache_hits(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().cache_hits + r.completeness.stats().cache_hits)
            .sum()
    }

    /// Total candidate models the orbit reduction pruned across the run
    /// (zero when the reduction is off).
    pub fn orbits_pruned(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().orbits_pruned + r.completeness.stats().orbits_pruned)
            .sum()
    }

    /// Total candidate blocks the batched bytecode evaluator executed across
    /// the run (zero under the tree-walk evaluator).
    pub fn batches(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().batches + r.completeness.stats().batches)
            .sum()
    }

    /// Total candidate lanes the batched evaluator re-ran through the
    /// per-candidate scalar fallback across the run.
    pub fn batch_fallbacks(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().batch_fallbacks + r.completeness.stats().batch_fallbacks)
            .sum()
    }

    /// Total bytecode instructions executed across active lanes over the run.
    pub fn instrs_executed(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().instrs_executed + r.completeness.stats().instrs_executed)
            .sum()
    }

    /// Every non-fatal evaluation error the provers surfaced through
    /// [`ProofStats::errors`] across the run (e.g. a sharded model search
    /// worker that raced past an evaluation error while another worker
    /// decided the obligation).
    pub fn errors(&self) -> Vec<&str> {
        self.reports
            .iter()
            .flat_map(|r| [&r.soundness, &r.completeness])
            .flat_map(|v| v.stats().errors.iter().map(String::as_str))
            .collect()
    }

    /// How many obligations were decided by the structural prover vs. the
    /// finite-model prover (the prover-portfolio ablation data).
    pub fn prover_breakdown(&self) -> (usize, usize) {
        let mut structural = 0;
        let mut finite = 0;
        for r in &self.reports {
            for v in [&r.soundness, &r.completeness] {
                match v.stats().prover {
                    ProverChoice::Structural => structural += 1,
                    ProverChoice::FiniteModel => finite += 1,
                    ProverChoice::None => {}
                }
            }
        }
        (structural, finite)
    }
}

/// Verifies a single condition with the given prover.
pub fn verify_condition(
    cond: &CommutativityCondition,
    prover: &Portfolio,
    id: usize,
) -> ConditionReport {
    let start = Instant::now();
    let (soundness_method, completeness_method) = testing_methods(cond, id);
    let hinted = !soundness_method.hints.is_empty() || !completeness_method.hints.is_empty();
    let soundness = prove_method_obligations(&soundness_method, prover);
    let completeness = prove_method_obligations(&completeness_method, prover);
    ConditionReport {
        condition: cond.clone(),
        soundness,
        completeness,
        elapsed: start.elapsed(),
        hinted,
    }
}

/// Proves every obligation of a testing method, merging statistics. The
/// verdict is `Valid` only if every obligation is valid; otherwise the first
/// non-valid verdict is returned (with accumulated statistics).
fn prove_method_obligations(method: &crate::method::TestingMethod, prover: &Portfolio) -> Verdict {
    let obligations = match generate_obligations(method) {
        Ok(obs) => obs,
        Err(e) => {
            return Verdict::Unknown {
                reason: format!("vcgen failed: {e}"),
                stats: Default::default(),
            }
        }
    };
    let mut accumulated = semcommute_prover::ProofStats::none();
    for ob in &obligations {
        let mut verdict = prover.prove(ob);
        accumulated.merge(verdict.stats());
        if !verdict.is_valid() {
            *verdict.stats_mut() = accumulated;
            return verdict;
        }
    }
    Verdict::Valid { stats: accumulated }
}

/// The scheduler-facing shape of one generated testing method: where its
/// obligations sit in the flat submission list, or why vcgen rejected it.
/// (The method's [`ExitGuard`] travels inside its [`ScheduledObligation`]s.)
struct MethodPlan {
    obligations: Result<std::ops::Range<usize>, String>,
}

/// One condition's two testing methods, planned for the scheduler.
struct ConditionPlan {
    condition: CommutativityCondition,
    hinted: bool,
    soundness: MethodPlan,
    completeness: MethodPlan,
}

/// Flattens (a prefix of) an interface's catalog into scheduler submissions.
///
/// Every obligation of every generated testing method becomes one
/// [`ScheduledObligation`] tagged with the interface's portfolio and its
/// method's [`ExitGuard`]; the returned plans remember which submission
/// range belongs to which method so the verdicts can be reassembled into
/// [`ConditionReport`]s afterwards.
fn plan_interface(
    catalog: Vec<CommutativityCondition>,
    portfolio: usize,
    items: &mut Vec<ScheduledObligation>,
) -> Vec<ConditionPlan> {
    let mut plans = Vec::with_capacity(catalog.len());
    for (id, condition) in catalog.into_iter().enumerate() {
        let (soundness_method, completeness_method) = testing_methods(&condition, id);
        let hinted = !soundness_method.hints.is_empty() || !completeness_method.hints.is_empty();
        let mut plan_method = |method: &crate::method::TestingMethod| -> MethodPlan {
            let guard = Arc::new(ExitGuard::new());
            let obligations = match generate_obligations(method) {
                Err(e) => Err(e),
                Ok(obs) => {
                    let start = items.len();
                    items.extend(obs.into_iter().enumerate().map(|(index, ob)| {
                        ScheduledObligation::new(ob)
                            .with_portfolio(portfolio)
                            .with_guard(guard.clone(), index as u32)
                    }));
                    Ok(start..items.len())
                }
            };
            MethodPlan { obligations }
        };
        let soundness = plan_method(&soundness_method);
        let completeness = plan_method(&completeness_method);
        plans.push(ConditionPlan {
            condition,
            hinted,
            soundness,
            completeness,
        });
    }
    plans
}

/// Reassembles one method's verdict from the scheduler's flat verdict list,
/// reproducing the sequential early-exit semantics: statistics accumulate in
/// obligation order up to (and including) the first non-valid verdict, which
/// becomes the method's verdict; obligations past the failure may have been
/// skipped by the guard and are not consulted.
fn method_verdict(plan: &MethodPlan, verdicts: &[Option<Verdict>]) -> Verdict {
    let range = match &plan.obligations {
        Err(e) => {
            return Verdict::Unknown {
                reason: format!("vcgen failed: {e}"),
                stats: Default::default(),
            }
        }
        Ok(range) => range.clone(),
    };
    let mut accumulated = ProofStats::none();
    for index in range {
        // A `None` verdict means the guard skipped this obligation, which
        // only happens strictly after a recorded failure — and the loop
        // returns at that failure first.
        let Some(verdict) = &verdicts[index] else {
            break;
        };
        accumulated.merge(verdict.stats());
        if !verdict.is_valid() {
            let mut verdict = verdict.clone();
            *verdict.stats_mut() = accumulated;
            return verdict;
        }
    }
    Verdict::Valid { stats: accumulated }
}

/// Reassembles the per-condition reports of one planned interface.
///
/// In a scheduled run a condition's obligations are interleaved with the
/// whole catalog, so the per-condition `elapsed` is the *busy* time its
/// obligations cost (the sum of their proof times) rather than a span of
/// wall-clock.
fn assemble_reports(
    plans: Vec<ConditionPlan>,
    verdicts: &[Option<Verdict>],
) -> Vec<ConditionReport> {
    plans
        .into_iter()
        .map(|plan| {
            let soundness = method_verdict(&plan.soundness, verdicts);
            let completeness = method_verdict(&plan.completeness, verdicts);
            let elapsed = soundness.stats().elapsed + completeness.stats().elapsed;
            ConditionReport {
                condition: plan.condition,
                soundness,
                completeness,
                elapsed,
                hinted: plan.hinted,
            }
        })
        .collect()
}

/// Verifies (a prefix of) an interface's catalog.
///
/// With `options.threads <= 1` conditions are verified strictly in order on
/// the calling thread (the reproducible sequential baseline). Otherwise the
/// interface's obligations are flattened onto the work-stealing scheduler
/// ([`semcommute_prover::queue`]) and proved by `options.threads` workers.
pub fn verify_interface(interface: InterfaceId, options: &VerifyOptions) -> InterfaceReport {
    let start = Instant::now();
    let mut catalog = interface_catalog(interface);
    if let Some(limit) = options.limit {
        catalog.truncate(limit);
    }
    let scope = scope_for(interface, options.seq_len)
        .with_orbit(options.orbit)
        .with_bytecode(options.bytecode);
    let prover = Portfolio::new(scope);
    let threads = options.threads.max(1);
    // Even a single-condition catalog goes through the scheduler at
    // `threads > 1`: its model searches can still fan out over every worker
    // as split range tasks.
    let reports = if threads == 1 || catalog.is_empty() {
        catalog
            .iter()
            .enumerate()
            .map(|(i, c)| verify_condition(c, &prover, i))
            .collect()
    } else {
        let mut items = Vec::new();
        let plans = plan_interface(catalog, 0, &mut items);
        let run = queue::prove_all_scheduled_split(
            std::slice::from_ref(&prover),
            items,
            threads,
            options.split_threshold,
        );
        assemble_reports(plans, &run.verdicts)
    };
    InterfaceReport {
        interface,
        reports,
        elapsed: start.elapsed(),
        seq_len: options.seq_len,
    }
}

/// The outcome of verifying the whole catalog, with scheduler telemetry.
#[derive(Debug, Clone)]
pub struct CatalogReport {
    /// Per-interface reports, in the paper's order.
    pub interfaces: Vec<InterfaceReport>,
    /// Scheduler counters of the run (`None` for the sequential baseline,
    /// which does not go through the queue).
    pub scheduler: Option<QueueReport>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl CatalogReport {
    /// Total candidate models the finite-model prover examined.
    pub fn models_checked(&self) -> u64 {
        self.interfaces.iter().map(|r| r.models_checked()).sum()
    }

    /// Total candidate models the orbit reduction pruned (zero when the
    /// reduction is off).
    pub fn orbits_pruned(&self) -> u64 {
        self.interfaces.iter().map(|r| r.orbits_pruned()).sum()
    }

    /// Total candidate blocks the batched bytecode evaluator executed (zero
    /// under the tree-walk evaluator).
    pub fn batches(&self) -> u64 {
        self.interfaces.iter().map(|r| r.batches()).sum()
    }

    /// Total candidate lanes the batched evaluator re-ran through the
    /// per-candidate scalar fallback.
    pub fn batch_fallbacks(&self) -> u64 {
        self.interfaces.iter().map(|r| r.batch_fallbacks()).sum()
    }

    /// Total bytecode instructions executed across active lanes.
    pub fn instrs_executed(&self) -> u64 {
        self.interfaces.iter().map(|r| r.instrs_executed()).sum()
    }
}

/// Verifies every interface (with the same options), reported in the paper's
/// order. See [`verify_catalog`] for the variant that also returns the
/// scheduler's counters.
pub fn verify_all(options: &VerifyOptions) -> Vec<InterfaceReport> {
    verify_catalog(options).interfaces
}

/// Verifies every interface against one global work-stealing scheduler.
///
/// With `options.threads <= 1` the interfaces run strictly sequentially in
/// catalog order — the reproducible single-threaded oracle the differential
/// tests compare against. Otherwise *all* interfaces' obligations are
/// flattened into a single canonical-hash-addressed work queue drained by
/// `options.threads` stealing workers, with one sharded verdict cache shared
/// across the interfaces' portfolios. Compared to the static
/// one-thread-group-per-interface split this keeps every worker busy to the
/// end on skewed catalogs (ArrayList dominates the paper's wall-clock), and
/// canonically identical obligations dedup across interfaces.
///
/// In a scheduled run the per-interface (and per-condition) `elapsed` fields
/// report *busy* time — the summed proof time of their obligations — because
/// interfaces interleave on the same workers; `CatalogReport::elapsed` is
/// the measured wall-clock of the whole run.
pub fn verify_catalog(options: &VerifyOptions) -> CatalogReport {
    let start = Instant::now();
    if options.threads <= 1 {
        let interfaces = InterfaceId::ALL
            .into_iter()
            .map(|id| verify_interface(id, options))
            .collect();
        return CatalogReport {
            interfaces,
            scheduler: None,
            elapsed: start.elapsed(),
        };
    }
    let cache = VerdictCache::new();
    let mut portfolios = Vec::new();
    let mut items = Vec::new();
    let mut plans = Vec::new();
    for interface in InterfaceId::ALL {
        let mut catalog = interface_catalog(interface);
        if let Some(limit) = options.limit {
            catalog.truncate(limit);
        }
        let portfolio = Portfolio::new(
            scope_for(interface, options.seq_len)
                .with_orbit(options.orbit)
                .with_bytecode(options.bytecode),
        )
        .with_shared_cache(&cache);
        portfolios.push(portfolio);
        plans.push((
            interface,
            plan_interface(catalog, portfolios.len() - 1, &mut items),
        ));
    }
    let run = queue::prove_all_scheduled_split(
        &portfolios,
        items,
        options.threads,
        options.split_threshold,
    );
    let interfaces = plans
        .into_iter()
        .map(|(interface, plans)| {
            let reports = assemble_reports(plans, &run.verdicts);
            let elapsed = reports.iter().map(|r| r.elapsed).sum();
            InterfaceReport {
                interface,
                reports,
                elapsed,
                seq_len: options.seq_len,
            }
        })
        .collect();
    CatalogReport {
        interfaces,
        scheduler: Some(run.report),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_catalog_fully_verifies() {
        let report = verify_interface(InterfaceId::Accumulator, &VerifyOptions::quick(12));
        assert_eq!(report.total(), 12);
        assert_eq!(
            report.verified_count(),
            12,
            "failures: {:#?}",
            report
                .failures()
                .iter()
                .map(|f| f.condition.id())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.method_count(), 24);
    }

    #[test]
    fn set_catalog_prefix_verifies() {
        let report = verify_interface(InterfaceId::Set, &VerifyOptions::quick(24));
        assert_eq!(report.verified_count(), report.total());
        // Some obligations are discharged structurally, some need models.
        let (structural, finite) = report.prover_breakdown();
        assert!(structural + finite > 0);
    }

    #[test]
    fn verify_condition_reports_hints_and_time() {
        let cond = interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| c.first.op == "add" && c.second.op == "remove")
            .unwrap();
        let prover = Portfolio::new(scope_for(InterfaceId::Set, 3));
        let report = verify_condition(&cond, &prover, 0);
        assert!(report.verified());
        assert!(!report.hinted);
    }

    #[test]
    fn scope_for_list_uses_sequence_scope() {
        let s = scope_for(InterfaceId::List, 4);
        assert_eq!(s.max_seq_len, 4);
        let s = scope_for(InterfaceId::Map, 4);
        assert_eq!(s.elem_padding, 1);
    }

    #[test]
    fn options_default_and_quick() {
        let d = VerifyOptions::default();
        assert!(d.threads >= 1);
        assert!(d.limit.is_none());
        let q = VerifyOptions::quick(5);
        assert_eq!(q.limit, Some(5));
    }
}
