//! The verification driver: discharging the generated testing methods.
//!
//! For every commutativity condition the driver generates the soundness and
//! completeness testing methods, symbolically executes them into proof
//! obligations, and discharges the obligations with the prover portfolio.
//! This reproduces the experiment behind Table 5.8 (verification times per
//! data structure) and the headline claim that all 765 conditions are sound
//! and complete.

use std::time::{Duration, Instant};

use semcommute_prover::{Portfolio, ProverChoice, Scope, Verdict};
use semcommute_spec::InterfaceId;

use crate::catalog::interface_catalog;
use crate::condition::CommutativityCondition;
use crate::template::testing_methods;
use crate::vcgen::generate_obligations;

/// The scope the driver uses for an interface.
///
/// The counter/set/map obligations need only the named elements plus one
/// anonymous element (see `prover::scope`); the ArrayList obligations use the
/// explicit sequence scope, whose length bound is the verification parameter
/// reported alongside the results.
pub fn scope_for(interface: InterfaceId, seq_len: usize) -> Scope {
    match interface {
        InterfaceId::List => Scope::sequences(seq_len),
        _ => Scope {
            elem_padding: 1,
            max_collection_entries: 3,
            max_seq_len: 1,
            int_min: -2,
            int_max: 4,
            max_models: 50_000_000,
        },
    }
}

/// Options controlling a verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Number of worker threads (conditions are verified independently).
    pub threads: usize,
    /// Sequence-length scope for ArrayList obligations.
    pub seq_len: usize,
    /// Verify only the first `n` conditions of the interface (for quick runs
    /// and tests); `None` verifies the whole catalog.
    pub limit: Option<usize>,
    /// Worker threads the finite-model prover uses *per obligation* (model
    /// space sharding). The default of 1 is right when conditions are already
    /// verified concurrently; raise it when proving few, large obligations.
    pub prover_threads: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seq_len: 4,
            limit: None,
            prover_threads: 1,
        }
    }
}

impl VerifyOptions {
    /// A configuration suitable for unit/integration tests: small scope and a
    /// bounded number of conditions.
    pub fn quick(limit: usize) -> VerifyOptions {
        VerifyOptions {
            threads: 2,
            seq_len: 3,
            limit: Some(limit),
            prover_threads: 1,
        }
    }
}

/// The outcome of verifying one commutativity condition: the verdicts of its
/// soundness and completeness testing methods (each aggregating every proof
/// obligation the method produced).
#[derive(Debug, Clone)]
pub struct ConditionReport {
    /// The condition that was verified.
    pub condition: CommutativityCondition,
    /// Verdict of the soundness testing method.
    pub soundness: Verdict,
    /// Verdict of the completeness testing method.
    pub completeness: Verdict,
    /// Wall-clock time spent on this condition.
    pub elapsed: Duration,
    /// Whether the generated methods carried proof hints.
    pub hinted: bool,
}

impl ConditionReport {
    /// `true` when both the soundness and the completeness method verified.
    pub fn verified(&self) -> bool {
        self.soundness.is_valid() && self.completeness.is_valid()
    }
}

/// The outcome of verifying an interface's full (or limited) catalog.
#[derive(Debug, Clone)]
pub struct InterfaceReport {
    /// The interface.
    pub interface: InterfaceId,
    /// Per-condition reports, in catalog order.
    pub reports: Vec<ConditionReport>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// The sequence scope used (relevant for ArrayList).
    pub seq_len: usize,
}

impl InterfaceReport {
    /// Number of conditions whose soundness and completeness both verified.
    pub fn verified_count(&self) -> usize {
        self.reports.iter().filter(|r| r.verified()).count()
    }

    /// Number of conditions verified.
    pub fn total(&self) -> usize {
        self.reports.len()
    }

    /// Number of generated testing methods (two per condition).
    pub fn method_count(&self) -> usize {
        self.reports.len() * 2
    }

    /// Number of testing methods that carried proof hints.
    pub fn hinted_method_count(&self) -> usize {
        self.reports.iter().filter(|r| r.hinted).count()
    }

    /// Conditions that failed to verify, with the failing verdicts.
    pub fn failures(&self) -> Vec<&ConditionReport> {
        self.reports.iter().filter(|r| !r.verified()).collect()
    }

    /// Total candidate models examined by the finite-model prover across the
    /// run.
    pub fn models_checked(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().models_checked + r.completeness.stats().models_checked)
            .sum()
    }

    /// Total testing-method verdicts answered from the portfolio's
    /// obligation dedup cache.
    pub fn cache_hits(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.soundness.stats().cache_hits + r.completeness.stats().cache_hits)
            .sum()
    }

    /// How many obligations were decided by the structural prover vs. the
    /// finite-model prover (the prover-portfolio ablation data).
    pub fn prover_breakdown(&self) -> (usize, usize) {
        let mut structural = 0;
        let mut finite = 0;
        for r in &self.reports {
            for v in [&r.soundness, &r.completeness] {
                match v.stats().prover {
                    ProverChoice::Structural => structural += 1,
                    ProverChoice::FiniteModel => finite += 1,
                    ProverChoice::None => {}
                }
            }
        }
        (structural, finite)
    }
}

/// Verifies a single condition with the given prover.
pub fn verify_condition(
    cond: &CommutativityCondition,
    prover: &Portfolio,
    id: usize,
) -> ConditionReport {
    let start = Instant::now();
    let (soundness_method, completeness_method) = testing_methods(cond, id);
    let hinted = !soundness_method.hints.is_empty() || !completeness_method.hints.is_empty();
    let soundness = prove_method_obligations(&soundness_method, prover);
    let completeness = prove_method_obligations(&completeness_method, prover);
    ConditionReport {
        condition: cond.clone(),
        soundness,
        completeness,
        elapsed: start.elapsed(),
        hinted,
    }
}

/// Proves every obligation of a testing method, merging statistics. The
/// verdict is `Valid` only if every obligation is valid; otherwise the first
/// non-valid verdict is returned (with accumulated statistics).
fn prove_method_obligations(method: &crate::method::TestingMethod, prover: &Portfolio) -> Verdict {
    let obligations = match generate_obligations(method) {
        Ok(obs) => obs,
        Err(e) => {
            return Verdict::Unknown {
                reason: format!("vcgen failed: {e}"),
                stats: Default::default(),
            }
        }
    };
    let mut accumulated = semcommute_prover::ProofStats::none();
    for ob in &obligations {
        let mut verdict = prover.prove(ob);
        accumulated.merge(verdict.stats());
        if !verdict.is_valid() {
            *verdict.stats_mut() = accumulated;
            return verdict;
        }
    }
    Verdict::Valid { stats: accumulated }
}

/// Verifies (a prefix of) an interface's catalog, in parallel.
pub fn verify_interface(interface: InterfaceId, options: &VerifyOptions) -> InterfaceReport {
    let start = Instant::now();
    let mut catalog = interface_catalog(interface);
    if let Some(limit) = options.limit {
        catalog.truncate(limit);
    }
    let scope = scope_for(interface, options.seq_len);
    let prover = Portfolio::new(scope).with_prover_threads(options.prover_threads);
    let threads = options.threads.max(1);
    let reports = if threads == 1 || catalog.len() <= 1 {
        catalog
            .iter()
            .enumerate()
            .map(|(i, c)| verify_condition(c, &prover, i))
            .collect()
    } else {
        parallel_verify(&catalog, &prover, threads)
    };
    InterfaceReport {
        interface,
        reports,
        elapsed: start.elapsed(),
        seq_len: options.seq_len,
    }
}

fn parallel_verify(
    catalog: &[CommutativityCondition],
    prover: &Portfolio,
    threads: usize,
) -> Vec<ConditionReport> {
    let mut indexed: Vec<(usize, ConditionReport)> = std::thread::scope(|scope| {
        let chunk_size = catalog.len().div_ceil(threads);
        let mut handles = Vec::new();
        for (chunk_index, chunk) in catalog.chunks(chunk_size).enumerate() {
            let prover = prover.clone();
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(offset, cond)| {
                        let id = chunk_index * chunk_size + offset;
                        (id, verify_condition(cond, &prover, id))
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Verifies every interface (with the same options), reported in the paper's
/// order.
///
/// With `options.threads <= 1` the interfaces run strictly sequentially (the
/// reproducible single-threaded baseline). Otherwise the interfaces are
/// independent and are dispatched concurrently on scoped threads, and the
/// condition-worker budget `options.threads` is divided among them so the
/// total worker count stays at the requested level — per-interface elapsed
/// times (Table 5.8, `BENCH_*.json`) would otherwise be inflated by
/// cross-interface core contention.
pub fn verify_all(options: &VerifyOptions) -> Vec<InterfaceReport> {
    if options.threads <= 1 {
        return InterfaceId::ALL
            .into_iter()
            .map(|id| verify_interface(id, options))
            .collect();
    }
    let per_interface = VerifyOptions {
        threads: (options.threads / InterfaceId::ALL.len()).max(1),
        ..options.clone()
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = InterfaceId::ALL
            .into_iter()
            .map(|id| {
                let opts = per_interface.clone();
                scope.spawn(move || verify_interface(id, &opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("interface verification worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_catalog_fully_verifies() {
        let report = verify_interface(InterfaceId::Accumulator, &VerifyOptions::quick(12));
        assert_eq!(report.total(), 12);
        assert_eq!(
            report.verified_count(),
            12,
            "failures: {:#?}",
            report
                .failures()
                .iter()
                .map(|f| f.condition.id())
                .collect::<Vec<_>>()
        );
        assert_eq!(report.method_count(), 24);
    }

    #[test]
    fn set_catalog_prefix_verifies() {
        let report = verify_interface(InterfaceId::Set, &VerifyOptions::quick(24));
        assert_eq!(report.verified_count(), report.total());
        // Some obligations are discharged structurally, some need models.
        let (structural, finite) = report.prover_breakdown();
        assert!(structural + finite > 0);
    }

    #[test]
    fn verify_condition_reports_hints_and_time() {
        let cond = interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| c.first.op == "add" && c.second.op == "remove")
            .unwrap();
        let prover = Portfolio::new(scope_for(InterfaceId::Set, 3));
        let report = verify_condition(&cond, &prover, 0);
        assert!(report.verified());
        assert!(!report.hinted);
    }

    #[test]
    fn scope_for_list_uses_sequence_scope() {
        let s = scope_for(InterfaceId::List, 4);
        assert_eq!(s.max_seq_len, 4);
        let s = scope_for(InterfaceId::Map, 4);
        assert_eq!(s.elem_padding, 1);
    }

    #[test]
    fn options_default_and_quick() {
        let d = VerifyOptions::default();
        assert!(d.threads >= 1);
        assert!(d.limit.is_none());
        let q = VerifyOptions::quick(5);
        assert_eq!(q.limit, Some(5));
    }
}
