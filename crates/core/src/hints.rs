//! The proof-hint catalog for the hard ArrayList testing methods (Table 5.9).
//!
//! The paper reports that 57 of the 1530 generated commutativity testing
//! methods — all on ArrayList, all involving the index-shifting operations
//! together with `indexOf` / `lastIndexOf` or the completeness of
//! update/update pairs — do not verify automatically and require 201 Jahob
//! proof-language commands (128 `note`, 51 `assuming`, 22 `pickWitness`).
//!
//! This module attaches the analogous proof guidance to the same classes of
//! methods. Every hint is a *true* lemma (its side obligation is verified
//! like any other obligation):
//!
//! * membership-preservation notes (`addAt` never removes an element;
//!   `removeAt` never adds one) — the contraposition lemmas the paper
//!   describes for the `indexOf` combinations,
//! * `assuming` commands that identify the case the provers need help with
//!   (the element is absent from the intermediate state / the query hits the
//!   removed position), and
//! * length-accounting notes for the completeness methods of update/update
//!   pairs, which identify how many elements each final state holds.
//!
//! With our finite-model back-end the hints are not *required* for the
//! verification to go through (the enumeration covers the relevant sequences
//! directly); they are attached to reproduce the structure and accounting of
//! Table 5.9 and are verified together with the methods that carry them.
//! `EXPERIMENTS.md` records the command counts next to the paper's.

use semcommute_logic::build::*;
use semcommute_logic::Term;
use semcommute_prover::Hint;
use semcommute_spec::InterfaceId;

use crate::condition::CommutativityCondition;
use crate::kind::ConditionKind;

/// State-variable names inside generated methods (kept in sync with
/// `crate::template`).
const SA1: &str = "sa_1";
const SB1: &str = "sb_1";
const SA2: &str = "sa_2";
const SB2: &str = "sb_2";

fn is_shift_op(op: &str) -> bool {
    matches!(op, "addAt" | "removeAt")
}

fn is_index_query(op: &str) -> bool {
    matches!(op, "indexOf" | "lastIndexOf")
}

fn is_update(op: &str) -> bool {
    matches!(op, "addAt" | "removeAt" | "set")
}

fn length_delta(op: &str) -> i64 {
    match op {
        "addAt" => 1,
        "removeAt" => -1,
        _ => 0,
    }
}

/// The proof hints attached to the testing method generated for `cond`
/// (soundness or completeness). Returns an empty vector for methods that
/// verify without guidance — everything except the hard ArrayList classes.
pub fn hints_for(cond: &CommutativityCondition, soundness: bool) -> Vec<Hint> {
    if cond.interface != InterfaceId::List || cond.kind == ConditionKind::Before {
        return Vec::new();
    }
    let first = cond.first.op.as_str();
    let second = cond.second.op.as_str();

    if soundness && is_shift_op(first) && is_index_query(second) {
        // Soundness of addAt/removeAt followed by indexOf/lastIndexOf: the
        // query argument is v2, the intermediate state is sa_1, and (for
        // addAt) the freshly inserted element is v1.
        let mut hints = shift_then_query_hints(first, "v2", SA1);
        if first == "addAt" {
            hints.extend(witness_for_inserted_element("v1", SA1));
        }
        return hints;
    }
    if soundness && is_index_query(first) && is_shift_op(second) {
        // Soundness of indexOf/lastIndexOf followed by addAt/removeAt: in the
        // reverse order the shift runs first, producing sb_1; the query
        // argument is v1, the shift index is i2, and (for addAt) the freshly
        // inserted element is v2.
        let mut hints = query_then_shift_hints(second, "v1", "i2", SB1);
        if second == "addAt" {
            hints.extend(witness_for_inserted_element("v2", SB1));
        }
        return hints;
    }
    if !soundness && cond.kind == ConditionKind::After && is_update(first) && is_update(second) {
        // Completeness of update/update pairs: length accounting identifies
        // the final states, and the i1 = i2 case is singled out.
        return update_update_completeness_hints(cond, first, second);
    }
    if !soundness
        && cond.kind == ConditionKind::After
        && is_shift_op(first)
        && is_index_query(second)
    {
        return shift_then_query_hints(first, "v2", SA1);
    }
    Vec::new()
}

/// A `note` introducing the existential fact that the element just inserted
/// by `addAt` occurs somewhere in the post-insertion state, followed by a
/// `pickWitness` naming its position — the witness-manipulation pattern the
/// paper uses for the shifted-position case analyses.
fn witness_for_inserted_element(value_arg: &str, state: &str) -> Vec<Hint> {
    let existential = exists_int(
        "j",
        int(0),
        seq_len(var_seq(state)),
        eq(seq_at(var_seq(state), var_int("j")), var_elem(value_arg)),
    );
    vec![
        Hint::Note(existential.clone()),
        Hint::PickWitness {
            witness: format!("w_{value_arg}"),
            existential,
        },
    ]
}

/// Hints for a shift operation (`addAt` / `removeAt`) followed by an index
/// query over `value_arg`, with the intermediate state named `mid_state`.
fn shift_then_query_hints(shift_op: &str, value_arg: &str, mid_state: &str) -> Vec<Hint> {
    let v = || var_elem(value_arg);
    let s1 = || var_seq("s1");
    let mid = || var_seq(mid_state);
    match shift_op {
        "addAt" => vec![
            // Insertion preserves membership.
            Hint::Note(implies(seq_contains(s1(), v()), seq_contains(mid(), v()))),
            // If the element is absent from the intermediate state it was
            // already absent initially (the contraposition the paper proves).
            Hint::Assuming {
                hypothesis: lt(seq_index_of(mid(), v()), int(0)),
                conclusion: lt(seq_index_of(s1(), v()), int(0)),
            },
        ],
        _ => vec![
            // Removal never introduces elements.
            Hint::Note(implies(
                not(seq_contains(s1(), v())),
                not(seq_contains(mid(), v())),
            )),
            // If the first occurrence is exactly the removed position, the
            // element really is stored there (identifies the case and the
            // position, as in the paper's adjacent-copies analysis).
            Hint::Assuming {
                hypothesis: eq(seq_index_of(s1(), v()), var_int("i1")),
                conclusion: implies(
                    ge(seq_index_of(s1(), v()), int(0)),
                    eq(seq_at(s1(), var_int("i1")), v()),
                ),
            },
        ],
    }
}

/// Hints for an index query followed by a shift operation: the reverse order
/// applies the shift first, producing `shifted_state`.
fn query_then_shift_hints(
    shift_op: &str,
    value_arg: &str,
    index_arg: &str,
    shifted_state: &str,
) -> Vec<Hint> {
    let v = || var_elem(value_arg);
    let s1 = || var_seq("s1");
    let shifted = || var_seq(shifted_state);
    match shift_op {
        "addAt" => vec![
            Hint::Note(implies(
                seq_contains(s1(), v()),
                seq_contains(shifted(), v()),
            )),
            Hint::Assuming {
                hypothesis: lt(seq_index_of(shifted(), v()), int(0)),
                conclusion: lt(seq_index_of(s1(), v()), int(0)),
            },
        ],
        _ => vec![
            Hint::Note(implies(
                not(seq_contains(s1(), v())),
                not(seq_contains(shifted(), v())),
            )),
            Hint::Assuming {
                hypothesis: eq(seq_index_of(s1(), v()), var_int(index_arg)),
                conclusion: implies(
                    ge(seq_index_of(s1(), v()), int(0)),
                    eq(seq_at(s1(), var_int(index_arg)), v()),
                ),
            },
        ],
    }
}

/// Length-accounting hints for the completeness methods of update/update
/// ArrayList pairs.
fn update_update_completeness_hints(
    cond: &CommutativityCondition,
    first: &str,
    second: &str,
) -> Vec<Hint> {
    let s1_len = || seq_len(var_seq("s1"));
    let total = length_delta(first) + length_delta(second);
    let first_updates = first != "size";
    let second_updates = second != "size";
    let sa_final = if second_updates {
        SA2
    } else if first_updates {
        SA1
    } else {
        "s1"
    };
    let sb_final = if first_updates {
        SB2
    } else if second_updates {
        SB1
    } else {
        "s1"
    };
    let len_of = |state: &str, delta: i64| -> Term {
        eq(seq_len(var_seq(state)), add(s1_len(), int(delta)))
    };
    let mut hints = vec![
        Hint::Note(len_of(sa_final, total)),
        Hint::Note(len_of(sb_final, total)),
    ];
    if cond.first.op != "set" || cond.second.op != "set" {
        // Identify the equal-index case explicitly, as the paper's assuming
        // commands do for the hard completeness methods.
        let mid_delta = length_delta(first);
        let mid_state = if first_updates { SA1 } else { "s1" };
        hints.push(Hint::Assuming {
            hypothesis: eq(var_int("i1"), var_int("i2")),
            conclusion: len_of(mid_state, mid_delta),
        });
    }
    hints
}

/// Summary of the hint catalog: how many methods carry hints and how many
/// commands of each kind they use (the data behind our Table 5.9 analog).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HintSummary {
    /// Number of testing methods that carry at least one hint.
    pub hinted_methods: usize,
    /// Number of `note` commands.
    pub note: usize,
    /// Number of `assuming` commands.
    pub assuming: usize,
    /// Number of `pickWitness` commands.
    pub pick_witness: usize,
}

impl HintSummary {
    /// Total number of proof-language commands.
    pub fn total(&self) -> usize {
        self.note + self.assuming + self.pick_witness
    }
}

/// Computes the hint summary over the full catalog.
pub fn hint_summary() -> HintSummary {
    let mut summary = HintSummary::default();
    for cond in crate::catalog::full_catalog() {
        for soundness in [true, false] {
            let hints = hints_for(&cond, soundness);
            if hints.is_empty() {
                continue;
            }
            summary.hinted_methods += 1;
            for h in &hints {
                match h {
                    Hint::Note(_) => summary.note += 1,
                    Hint::Assuming { .. } => summary.assuming += 1,
                    Hint::PickWitness { .. } => summary.pick_witness += 1,
                }
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::interface_catalog;
    use crate::variant::OpVariant;

    fn cond(first: OpVariant, second: OpVariant, kind: ConditionKind) -> CommutativityCondition {
        interface_catalog(InterfaceId::List)
            .into_iter()
            .find(|c| c.first == first && c.second == second && c.kind == kind)
            .expect("condition exists")
    }

    #[test]
    fn only_hard_array_list_methods_carry_hints() {
        // Set-interface methods never carry hints.
        for c in interface_catalog(InterfaceId::Set) {
            assert!(hints_for(&c, true).is_empty());
            assert!(hints_for(&c, false).is_empty());
        }
        // Before-kind ArrayList methods never carry hints (they verified as
        // generated in the paper as well — the hard ones are between/after).
        let c = cond(
            OpVariant::recorded("addAt"),
            OpVariant::recorded("indexOf"),
            ConditionKind::Before,
        );
        assert!(hints_for(&c, true).is_empty());
    }

    #[test]
    fn soundness_of_add_at_index_of_gets_note_assuming_and_witness() {
        let c = cond(
            OpVariant::recorded("addAt"),
            OpVariant::recorded("indexOf"),
            ConditionKind::Between,
        );
        let hints = hints_for(&c, true);
        assert_eq!(hints.len(), 4);
        assert_eq!(hints[0].command_name(), "note");
        assert_eq!(hints[1].command_name(), "assuming");
        assert_eq!(hints[2].command_name(), "note");
        assert_eq!(hints[3].command_name(), "pickWitness");
        // removeAt-first methods use the contraposition lemmas instead of the
        // witness pattern.
        let c = cond(
            OpVariant::recorded("removeAt"),
            OpVariant::recorded("lastIndexOf"),
            ConditionKind::After,
        );
        let hints = hints_for(&c, true);
        assert!(hints.iter().all(|h| h.command_name() != "pickWitness"));
    }

    #[test]
    fn completeness_of_update_pairs_gets_length_notes() {
        let c = cond(
            OpVariant::discarded("removeAt"),
            OpVariant::discarded("removeAt"),
            ConditionKind::After,
        );
        let hints = hints_for(&c, false);
        assert!(hints.len() >= 2);
        assert!(hints.iter().filter(|h| h.command_name() == "note").count() >= 2);
    }

    #[test]
    fn summary_counts_hinted_methods_and_commands() {
        let summary = hint_summary();
        assert!(summary.hinted_methods > 40, "{summary:?}");
        assert!(summary.note > 0);
        assert!(summary.assuming > 0);
        assert_eq!(
            summary.total(),
            summary.note + summary.assuming + summary.pick_witness
        );
    }

    #[test]
    fn hinted_methods_still_verify() {
        use crate::template::soundness_method;
        use crate::vcgen::generate_obligations;
        use semcommute_prover::{Portfolio, Scope};
        let c = cond(
            OpVariant::recorded("addAt"),
            OpVariant::recorded("indexOf"),
            ConditionKind::Between,
        );
        let m = soundness_method(&c, 11);
        assert!(!m.hints.is_empty());
        let obs = generate_obligations(&m).unwrap();
        // Hints add side obligations beyond the two preconditions + assert.
        assert!(obs.len() > 3);
        let prover = Portfolio::new(Scope::sequences(3));
        for ob in &obs {
            let verdict = prover.prove(ob);
            assert!(verdict.is_valid(), "{}: {verdict}", ob.name);
        }
    }
}
