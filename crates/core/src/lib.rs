//! Verification of semantic commutativity conditions and inverse operations —
//! the core of the `semcommute` reproduction.
//!
//! This crate implements the contribution of the paper ("Verification of
//! Semantic Commutativity Conditions and Inverse Operations on Linked Data
//! Structures", PLDI 2011):
//!
//! * **Operation variants** ([`variant`]) — every state-updating operation
//!   that returns a value exists in a *recorded* and a *discarded* variant,
//!   exactly as in the paper's counting (6 operations for the set interface,
//!   7 for the map interface, 9 for ArrayList, 2 for Accumulator).
//! * **Commutativity conditions** ([`condition`], [`catalog`]) — the full
//!   catalog of 765 developer-specified conditions (before / between / after,
//!   for every ordered pair of operation variants of every interface),
//!   expressed as formulas over the abstract state, the operation arguments,
//!   and the return values.
//! * **Testing methods** ([`method`], [`template`], [`render`]) — the
//!   automatically generated soundness and completeness commutativity testing
//!   methods (Figures 2-2, 3-1) and inverse testing methods (Figures 2-3,
//!   2-4, 3-2), together with a Jahob/Java-like renderer used to reproduce
//!   the paper's figures.
//! * **Verification** ([`vcgen`], [`verify`]) — symbolic execution of the
//!   testing methods into proof obligations and a driver that discharges them
//!   with the `semcommute-prover` portfolio, reproducing the counts and
//!   timing shape of Tables 5.8 and 5.9.
//! * **Inverse operations** ([`inverse`]) — the Table 5.10 inverse catalog,
//!   its verification, and the executable form used by speculative systems to
//!   roll back operations.
//! * **Proof hints** ([`hints`]) — the `note` / `assuming` / `pickWitness`
//!   commands attached to the hard ArrayList methods (Table 5.9).
//! * **Dynamic checking** ([`concrete`], [`report`]) — evaluation of the
//!   conditions at run time against concrete data structure states, and the
//!   concrete-syntax rendering used in the right-hand columns of Tables
//!   5.1–5.7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod concrete;
pub mod condition;
pub mod hints;
pub mod inverse;
pub mod kind;
pub mod method;
pub mod render;
pub mod report;
pub mod template;
pub mod variant;
pub mod vcgen;
pub mod verify;

pub use catalog::{full_catalog, interface_catalog};
pub use condition::{names, CommutativityCondition};
pub use inverse::{inverse_catalog, InverseOperation};
pub use kind::ConditionKind;
pub use method::{CallStmt, PreMode, Stmt, TestingMethod};
pub use variant::{interface_variants, OpVariant};
pub use verify::{
    verify_catalog, verify_condition, verify_interface, CatalogReport, ConditionReport,
    InterfaceReport,
};
