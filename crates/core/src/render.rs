//! Rendering of generated testing methods in the paper's Java + Jahob syntax.
//!
//! The renderer reproduces the shape of Figures 2-2 (commutativity testing
//! methods), 2-3 / 2-4 (inverse testing methods), and the templates of
//! Figures 3-1 / 3-2: a `void` Java method whose specification is carried in
//! `/*: … */` annotations and whose body interleaves operation calls with
//! Jahob `assume` commands and a final `assert`.

use semcommute_logic::Sort;
use semcommute_spec::{interface_by_id, InterfaceId};

use crate::method::{PreMode, Stmt, TestingMethod};

/// The Java class name the paper uses for an interface's representative
/// implementation.
pub fn class_name(id: InterfaceId) -> &'static str {
    match id {
        InterfaceId::Accumulator => "Accumulator",
        InterfaceId::Set => "HashSet",
        InterfaceId::Map => "HashTable",
        InterfaceId::List => "ArrayList",
    }
}

fn java_type(sort: Sort) -> &'static str {
    match sort {
        Sort::Bool => "boolean",
        Sort::Int => "int",
        Sort::Elem => "Object",
        Sort::Set | Sort::Map | Sort::Seq => "Object /* abstract state */",
    }
}

/// Renders a testing method as Java-with-Jahob-annotations text.
pub fn render_method(method: &TestingMethod) -> String {
    let iface = interface_by_id(method.interface);
    let class = class_name(method.interface);
    let mut out = String::new();

    // Signature: the two data structure objects followed by the operation
    // arguments (the shared abstract state parameter s1 is the contents of
    // both objects).
    let objects: Vec<&str> = {
        let mut seen = Vec::new();
        for call in method.calls() {
            if !seen.contains(&call.object.as_str()) {
                seen.push(call.object.as_str());
            }
        }
        seen
    };
    let mut params: Vec<String> = objects.iter().map(|o| format!("{class} {o}")).collect();
    for (name, sort) in &method.params {
        if name == "s1" {
            continue;
        }
        params.push(format!("{} {name}", java_type(*sort)));
    }
    out.push_str(&format!("void {}({})\n", method.name, params.join(", ")));

    // Requires clause, in the style of Figure 2-2 / 3-1.
    let mut requires: Vec<String> = Vec::new();
    for o in &objects {
        requires.push(format!("{o} ~= null"));
        requires.push(format!("{o}..init"));
    }
    if objects.len() == 2 {
        requires.push(format!("{} ~= {}", objects[0], objects[1]));
        requires.push(format!(
            "{}..contents = {}..contents",
            objects[0], objects[1]
        ));
        requires.push(format!("{}..size = {}..size", objects[0], objects[1]));
    }
    for (name, sort) in &method.params {
        if *sort == Sort::Elem {
            requires.push(format!("{name} ~= null"));
        }
    }
    for extra in &method.requires {
        requires.push(extra.to_string());
    }
    out.push_str(&format!("/*: requires \"{}\"\n", requires.join(" & ")));
    let modifies: Vec<String> = objects
        .iter()
        .map(|o| format!("\"{o}..contents\", \"{o}..size\""))
        .collect();
    out.push_str(&format!("    modifies {}\n", modifies.join(", ")));
    out.push_str("    ensures \"True\" */\n{\n");

    for stmt in &method.statements {
        match stmt {
            Stmt::Assume(t) => out.push_str(&format!("  /*: assume \"{t}\" */\n")),
            Stmt::Assert(t) => out.push_str(&format!("  /*: assert \"{t}\" */\n")),
            Stmt::Call(call) => {
                if call.pre_mode == PreMode::Prove {
                    out.push_str("  /* precondition proved, not assumed */\n");
                }
                let args: Vec<String> = call.args.iter().map(|a| a.to_string()).collect();
                let invocation = format!("{}.{}({})", call.object, call.op, args.join(", "));
                match (&call.result, iface.op(&call.op).and_then(|o| o.result_sort)) {
                    (Some(result), Some(sort)) => {
                        out.push_str(&format!("  {} {result} = {invocation};\n", java_type(sort)))
                    }
                    _ => out.push_str(&format!("  {invocation};\n")),
                }
            }
        }
    }
    for hint in &method.hints {
        out.push_str(&format!("  /*: {hint} */\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::interface_catalog;
    use crate::kind::ConditionKind;
    use crate::template::{completeness_method, soundness_method};

    fn contains_add_between() -> crate::condition::CommutativityCondition {
        interface_catalog(InterfaceId::Set)
            .into_iter()
            .find(|c| {
                c.first.op == "contains"
                    && c.second.op == "add"
                    && !c.second.recorded
                    && c.kind == ConditionKind::Between
            })
            .unwrap()
    }

    #[test]
    fn rendered_soundness_method_resembles_figure_2_2() {
        let text = render_method(&soundness_method(&contains_add_between(), 40));
        // Signature and requires clause.
        assert!(text.contains(
            "void contains_add__between_s_40(HashSet sa, HashSet sb, Object v1, Object v2)"
        ));
        assert!(text.contains("sa ~= sb"));
        assert!(text.contains("sa..contents = sb..contents"));
        // Body: contains on sa, assumed condition, add on both, contains on sb.
        assert!(text.contains("boolean r1a = sa.contains(v1);"));
        assert!(text.contains("assume \"~v1 = v2 | r1a\""));
        assert!(text.contains("sa.add(v2);"));
        assert!(text.contains("sb.add(v2);"));
        assert!(text.contains("boolean r1b = sb.contains(v1);"));
        assert!(text.contains("assert"));
    }

    #[test]
    fn rendered_completeness_method_negates_condition_and_assertion() {
        let text = render_method(&completeness_method(&contains_add_between(), 40));
        assert!(text.contains("contains_add__between_c_40"));
        assert!(text.contains("assume \"~(~v1 = v2 | r1a)\""));
        assert!(text.contains("assert \"~("));
    }

    #[test]
    fn class_names_match_the_paper() {
        assert_eq!(class_name(InterfaceId::Set), "HashSet");
        assert_eq!(class_name(InterfaceId::Map), "HashTable");
        assert_eq!(class_name(InterfaceId::List), "ArrayList");
        assert_eq!(class_name(InterfaceId::Accumulator), "Accumulator");
    }

    #[test]
    fn integer_arguments_render_with_int_type() {
        let cond = interface_catalog(InterfaceId::List)
            .into_iter()
            .find(|c| {
                c.first.op == "addAt" && c.second.op == "get" && c.kind == ConditionKind::Before
            })
            .unwrap();
        let text = render_method(&soundness_method(&cond, 7));
        assert!(text.contains("ArrayList sa"));
        assert!(text.contains("int i1"));
        assert!(text.contains("Object v1"));
    }
}
