//! Inverse operations (Table 5.10) and their verification.
//!
//! For every operation that changes a data structure's abstract state the
//! paper specifies an inverse operation that rolls the abstract state back to
//! its value before the operation executed — possibly reaching a different
//! *concrete* state, which is exactly why the verification reasons about the
//! abstract state. Some inverses use the original operation's return value
//! (e.g. `put(k, v)` is undone by `put(k, r)` when `r ≠ null` and by
//! `remove(k)` otherwise), so a speculative system must log return values to
//! be able to roll back.

use std::fmt;

use semcommute_logic::{build, Term, Value, NULL_ELEM};
use semcommute_prover::{Obligation, Portfolio, Verdict};
use semcommute_spec::{interface_by_id, InterfaceId, OpSpec};

/// Where an argument of the inverse call comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSource {
    /// The i-th argument of the original operation.
    Param(usize),
    /// The original operation's return value.
    Result,
    /// The negation of the i-th (integer) argument of the original operation
    /// (used by `Accumulator::increase`).
    NegatedParam(usize),
}

/// A call performed by an inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InverseCall {
    /// The operation to invoke.
    pub op: String,
    /// Where its arguments come from.
    pub args: Vec<ArgSource>,
}

/// When the primary inverse call applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InverseGuard {
    /// The inverse call is always performed.
    Always,
    /// The inverse call is performed iff the original operation returned
    /// `true` (set `add`/`remove`); otherwise nothing needs to be undone.
    IfResultTrue,
    /// The inverse call is performed iff the original operation returned a
    /// non-null value; otherwise the `otherwise` call (if any) runs.
    IfResultNonNull,
}

/// The inverse of one state-updating operation (one row of Table 5.10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InverseOperation {
    /// The interface the operation belongs to.
    pub interface: InterfaceId,
    /// The forward operation.
    pub op: String,
    /// When the primary inverse call applies.
    pub guard: InverseGuard,
    /// The primary inverse call.
    pub primary: InverseCall,
    /// The call performed when the guard does not hold (only `put` needs
    /// one: `remove(k)` when the key was previously unmapped).
    pub otherwise: Option<InverseCall>,
}

impl InverseOperation {
    fn new(
        interface: InterfaceId,
        op: &str,
        guard: InverseGuard,
        primary: InverseCall,
        otherwise: Option<InverseCall>,
    ) -> InverseOperation {
        InverseOperation {
            interface,
            op: op.to_string(),
            guard,
            primary,
            otherwise,
        }
    }

    /// The forward operation's specification.
    fn forward_spec(&self) -> OpSpec {
        interface_by_id(self.interface)
            .op(&self.op)
            .unwrap_or_else(|| panic!("unknown operation `{}`", self.op))
            .clone()
    }

    /// Renders one row of Table 5.10, e.g.
    /// `r = s1.put(k, v)  =>  if r ~= null then s2.put(k, r) else s2.remove(k)`.
    pub fn table_row(&self) -> (String, String) {
        let spec = self.forward_spec();
        let params: Vec<String> = spec.params.iter().map(|(n, _)| n.clone()).collect();
        let forward = if spec.has_result() {
            format!("r = s1.{}({})", self.op, params.join(", "))
        } else {
            format!("s1.{}({})", self.op, params.join(", "))
        };
        let call_text = |call: &InverseCall| {
            let args: Vec<String> = call
                .args
                .iter()
                .map(|a| match a {
                    ArgSource::Param(i) => params[*i].clone(),
                    ArgSource::Result => "r".to_string(),
                    ArgSource::NegatedParam(i) => format!("-{}", params[*i]),
                })
                .collect();
            format!("s2.{}({})", call.op, args.join(", "))
        };
        let inverse = match (self.guard, &self.otherwise) {
            (InverseGuard::Always, _) => call_text(&self.primary),
            (InverseGuard::IfResultTrue, _) => {
                format!("if r = true then {}", call_text(&self.primary))
            }
            (InverseGuard::IfResultNonNull, None) => {
                format!("if r ~= null then {}", call_text(&self.primary))
            }
            (InverseGuard::IfResultNonNull, Some(other)) => format!(
                "if r ~= null then {} else {}",
                call_text(&self.primary),
                call_text(other)
            ),
        };
        (forward, inverse)
    }

    /// The argument terms of an inverse call, in terms of the forward call's
    /// formal parameters and the result variable `r`.
    fn arg_terms(&self, call: &InverseCall, spec: &OpSpec) -> Vec<Term> {
        call.args
            .iter()
            .map(|a| match a {
                ArgSource::Param(i) => {
                    let (name, sort) = &spec.params[*i];
                    Term::var(name.clone(), *sort)
                }
                ArgSource::Result => {
                    Term::var("r", spec.result_sort.expect("inverse uses the result"))
                }
                ArgSource::NegatedParam(i) => {
                    let (name, sort) = &spec.params[*i];
                    build::neg(Term::var(name.clone(), *sort))
                }
            })
            .collect()
    }

    /// The guard as a formula over the result variable `r`.
    fn guard_term(&self, spec: &OpSpec) -> Term {
        match self.guard {
            InverseGuard::Always => build::tru(),
            InverseGuard::IfResultTrue => Term::var("r", spec.result_sort.expect("bool result")),
            InverseGuard::IfResultNonNull => build::neq(
                Term::var("r", spec.result_sort.expect("object result")),
                build::null(),
            ),
        }
    }

    /// Generates the proof obligations of the inverse testing method
    /// (Figure 3-2): the inverse's precondition holds whenever its branch is
    /// taken, and applying the inverse restores the initial abstract state.
    pub fn obligations(&self) -> Vec<Obligation> {
        let iface = interface_by_id(self.interface);
        let spec = self.forward_spec();
        let s1 = Term::var("s1", iface.state_sort);
        let s2 = Term::var("s2", iface.state_sort);
        let forward_args: Vec<Term> = spec
            .params
            .iter()
            .map(|(n, sort)| Term::var(n.clone(), *sort))
            .collect();

        let mut defines = Vec::new();
        if spec.has_result() {
            defines.push((
                "r".to_string(),
                spec.instantiate_result(&s1, &forward_args)
                    .expect("updating op with result"),
            ));
        }
        defines.push(("s2".to_string(), spec.instantiate_post(&s1, &forward_args)));

        let guard = self.guard_term(&spec);
        let primary_spec = iface
            .op(&self.primary.op)
            .unwrap_or_else(|| panic!("unknown inverse operation `{}`", self.primary.op));
        let primary_args = self.arg_terms(&self.primary, &spec);
        let primary_post = primary_spec.instantiate_post(&s2, &primary_args);
        let primary_pre = primary_spec.instantiate_pre(&s2, &primary_args);

        let (restored, mut extra_obligations) = match &self.otherwise {
            None => (
                build::ite(guard.clone(), primary_post, s2.clone()),
                Vec::new(),
            ),
            Some(other) => {
                let other_spec = iface
                    .op(&other.op)
                    .unwrap_or_else(|| panic!("unknown inverse operation `{}`", other.op));
                let other_args = self.arg_terms(other, &spec);
                let other_post = other_spec.instantiate_post(&s2, &other_args);
                let other_pre = other_spec.instantiate_pre(&s2, &other_args);
                let pre_ob = Obligation {
                    name: format!("{}_{}_inverse::pre_otherwise", self.interface, self.op),
                    defines: defines.clone(),
                    hypotheses: vec![
                        spec.instantiate_pre(&s1, &forward_args),
                        build::not(guard.clone()),
                    ],
                    goal: other_pre,
                };
                (
                    build::ite(guard.clone(), primary_post, other_post),
                    vec![pre_ob],
                )
            }
        };
        defines.push(("s3".to_string(), restored));

        let hypotheses = vec![spec.instantiate_pre(&s1, &forward_args)];
        let mut obligations = vec![Obligation {
            name: format!("{}_{}_inverse::pre", self.interface, self.op),
            defines: defines.clone(),
            hypotheses: {
                let mut h = hypotheses.clone();
                h.push(guard);
                h
            },
            goal: primary_pre,
        }];
        obligations.append(&mut extra_obligations);
        obligations.push(Obligation {
            name: format!("{}_{}_inverse::restores", self.interface, self.op),
            defines,
            hypotheses,
            goal: build::eq(Term::var("s3", iface.state_sort), s1),
        });
        obligations
    }

    /// Renders the inverse testing method in the style of Figures 2-3 / 2-4.
    pub fn render(&self) -> String {
        let spec = self.forward_spec();
        let class = crate::render::class_name(self.interface);
        let params: Vec<String> = spec
            .params
            .iter()
            .map(|(n, sort)| {
                format!(
                    "{} {n}",
                    match sort {
                        semcommute_logic::Sort::Int => "int",
                        _ => "Object",
                    }
                )
            })
            .collect();
        let (_, inverse) = self.table_row();
        let arg_names: Vec<String> = spec.params.iter().map(|(n, _)| n.clone()).collect();
        let call = format!("s.{}({})", self.op, arg_names.join(", "));
        let body_call = if spec.has_result() {
            format!("  Object r = {call};")
        } else {
            format!("  {call};")
        };
        format!(
            "void {op}0({class} s, {params})\n\
             /*: requires \"s ~= null & s..init\"\n    \
             modifies \"s..contents\", \"s..size\"\n    \
             ensures \"True\" */\n{{\n{body_call}\n  \
             {inverse};\n  \
             /*: assert \"s..contents = s..(old contents) & s..size = s..(old size)\" */\n}}\n",
            op = self.op,
            params = params.join(", "),
        )
    }

    /// The concrete inverse call to perform, given the forward call's
    /// arguments and recorded return value. Returns `None` when nothing needs
    /// to be undone (e.g. `add` returned `false`).
    pub fn concrete_call(
        &self,
        args: &[Value],
        result: Option<&Value>,
    ) -> Option<(String, Vec<Value>)> {
        let take_branch = match self.guard {
            InverseGuard::Always => true,
            InverseGuard::IfResultTrue => matches!(result, Some(Value::Bool(true))),
            InverseGuard::IfResultNonNull => {
                matches!(result, Some(Value::Elem(e)) if *e != NULL_ELEM)
            }
        };
        let call = if take_branch {
            &self.primary
        } else {
            self.otherwise.as_ref()?
        };
        let values = call
            .args
            .iter()
            .map(|a| match a {
                ArgSource::Param(i) => args[*i].clone(),
                ArgSource::Result => result.cloned().expect("inverse uses the result"),
                ArgSource::NegatedParam(i) => match &args[*i] {
                    Value::Int(v) => Value::Int(-v),
                    other => panic!("cannot negate non-integer argument {other}"),
                },
            })
            .collect();
        Some((call.op.clone(), values))
    }
}

impl fmt::Display for InverseOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (forward, inverse) = self.table_row();
        write!(f, "{forward}  =>  {inverse}")
    }
}

/// The inverse-operation catalog: one inverse per state-updating operation of
/// every data structure (Table 5.10).
pub fn inverse_catalog() -> Vec<InverseOperation> {
    use ArgSource::*;
    use InverseGuard::*;
    vec![
        InverseOperation::new(
            InterfaceId::Accumulator,
            "increase",
            Always,
            InverseCall {
                op: "increase".into(),
                args: vec![NegatedParam(0)],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::Set,
            "add",
            IfResultTrue,
            InverseCall {
                op: "remove".into(),
                args: vec![Param(0)],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::Set,
            "remove",
            IfResultTrue,
            InverseCall {
                op: "add".into(),
                args: vec![Param(0)],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::Map,
            "put",
            IfResultNonNull,
            InverseCall {
                op: "put".into(),
                args: vec![Param(0), Result],
            },
            Some(InverseCall {
                op: "remove".into(),
                args: vec![Param(0)],
            }),
        ),
        InverseOperation::new(
            InterfaceId::Map,
            "remove",
            IfResultNonNull,
            InverseCall {
                op: "put".into(),
                args: vec![Param(0), Result],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::List,
            "addAt",
            Always,
            InverseCall {
                op: "removeAt".into(),
                args: vec![Param(0)],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::List,
            "removeAt",
            Always,
            InverseCall {
                op: "addAt".into(),
                args: vec![Param(0), Result],
            },
            None,
        ),
        InverseOperation::new(
            InterfaceId::List,
            "set",
            Always,
            InverseCall {
                op: "set".into(),
                args: vec![Param(0), Result],
            },
            None,
        ),
    ]
}

/// Verifies one inverse operation, returning the merged verdict of its
/// testing-method obligations.
pub fn verify_inverse(inverse: &InverseOperation, prover: &Portfolio) -> Verdict {
    let mut accumulated = semcommute_prover::ProofStats::none();
    for ob in inverse.obligations() {
        let mut verdict = prover.prove(&ob);
        accumulated.merge(verdict.stats());
        if !verdict.is_valid() {
            *verdict.stats_mut() = accumulated;
            return verdict;
        }
    }
    Verdict::Valid { stats: accumulated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_prover::Scope;

    #[test]
    fn catalog_has_eight_inverses_like_table_5_10() {
        let catalog = inverse_catalog();
        assert_eq!(catalog.len(), 8);
        // Every updating operation of every interface is covered.
        for id in InterfaceId::ALL {
            let iface = interface_by_id(id);
            for op in iface.update_ops() {
                assert!(
                    catalog
                        .iter()
                        .any(|inv| inv.interface == id && inv.op == op.name),
                    "no inverse for {}::{}",
                    id,
                    op.name
                );
            }
        }
    }

    #[test]
    fn all_inverse_testing_methods_verify() {
        for inverse in inverse_catalog() {
            let scope = crate::verify::scope_for(inverse.interface, 3);
            let verdict = verify_inverse(&inverse, &Portfolio::new(scope));
            assert!(verdict.is_valid(), "{}: {verdict}", inverse);
        }
    }

    #[test]
    fn broken_inverse_is_rejected() {
        // "Undo" an add by another add: does not restore the abstract state.
        let broken = InverseOperation::new(
            InterfaceId::Set,
            "add",
            InverseGuard::IfResultTrue,
            InverseCall {
                op: "add".into(),
                args: vec![ArgSource::Param(0)],
            },
            None,
        );
        let verdict = verify_inverse(&broken, &Portfolio::new(Scope::small()));
        assert!(verdict.is_counterexample(), "{verdict}");
    }

    #[test]
    fn table_rows_match_table_5_10() {
        let rows: Vec<(String, String)> = inverse_catalog().iter().map(|i| i.table_row()).collect();
        assert!(rows.contains(&("s1.increase(v)".to_string(), "s2.increase(-v)".to_string())));
        assert!(rows.contains(&(
            "r = s1.add(v)".to_string(),
            "if r = true then s2.remove(v)".to_string()
        )));
        assert!(rows.contains(&(
            "r = s1.put(k, v)".to_string(),
            "if r ~= null then s2.put(k, r) else s2.remove(k)".to_string()
        )));
        assert!(rows.contains(&(
            "r = s1.removeAt(i)".to_string(),
            "s2.addAt(i, r)".to_string()
        )));
    }

    #[test]
    fn concrete_calls_follow_the_recorded_result() {
        let catalog = inverse_catalog();
        let add_inv = catalog
            .iter()
            .find(|i| i.interface == InterfaceId::Set && i.op == "add")
            .unwrap();
        assert_eq!(
            add_inv.concrete_call(&[Value::elem(3)], Some(&Value::Bool(true))),
            Some(("remove".to_string(), vec![Value::elem(3)]))
        );
        assert_eq!(
            add_inv.concrete_call(&[Value::elem(3)], Some(&Value::Bool(false))),
            None
        );
        let put_inv = catalog
            .iter()
            .find(|i| i.interface == InterfaceId::Map && i.op == "put")
            .unwrap();
        assert_eq!(
            put_inv.concrete_call(&[Value::elem(1), Value::elem(2)], Some(&Value::null())),
            Some(("remove".to_string(), vec![Value::elem(1)]))
        );
        assert_eq!(
            put_inv.concrete_call(&[Value::elem(1), Value::elem(2)], Some(&Value::elem(9))),
            Some(("put".to_string(), vec![Value::elem(1), Value::elem(9)]))
        );
        let inc_inv = catalog
            .iter()
            .find(|i| i.interface == InterfaceId::Accumulator)
            .unwrap();
        assert_eq!(
            inc_inv.concrete_call(&[Value::Int(5)], None),
            Some(("increase".to_string(), vec![Value::Int(-5)]))
        );
    }

    #[test]
    fn rendered_method_resembles_figure_2_3() {
        let catalog = inverse_catalog();
        let add_inv = catalog
            .iter()
            .find(|i| i.interface == InterfaceId::Set && i.op == "add")
            .unwrap();
        let text = add_inv.render();
        assert!(text.contains("void add0(HashSet s, Object v)"));
        assert!(text.contains("Object r = s.add(v);"));
        assert!(text.contains("assert"));
    }
}
