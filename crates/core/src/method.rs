//! The testing-method intermediate representation.
//!
//! Generated commutativity and inverse testing methods (Figures 2-2, 2-3,
//! 2-4, 3-1, and 3-2 of the paper) are represented as straight-line programs
//! over abstract data structure states: operation calls, `assume` commands,
//! and a final `assert`. The representation is deliberately close to the
//! paper's generated Java/Jahob methods so that [`crate::render`] can
//! reproduce the figures and [`crate::vcgen`] can symbolically execute the
//! methods into proof obligations.

use std::fmt;

use semcommute_logic::{Sort, Term};
use semcommute_prover::Hint;
use semcommute_spec::InterfaceId;

/// How a call's precondition is handled during verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreMode {
    /// The precondition is assumed (an `assume` command precedes the call in
    /// the generated method). Used for the first execution order in both
    /// templates and for the second execution order in the completeness
    /// template.
    Assume,
    /// The precondition must be proved. Used for the second execution order
    /// in the soundness template and for the inverse operation in inverse
    /// testing methods (Property 1 and Property 3 of the paper).
    Prove,
}

/// A call to a data structure operation inside a testing method.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStmt {
    /// The receiver object name, for rendering (`sa`, `sb`, `s`).
    pub object: String,
    /// The operation name.
    pub op: String,
    /// The state variable holding the receiver's abstract state before the
    /// call.
    pub pre_state: String,
    /// The state variable naming the receiver's abstract state after the
    /// call, when the operation updates the state.
    pub post_state: Option<String>,
    /// Argument terms (typically the method's parameter variables).
    pub args: Vec<Term>,
    /// The variable binding the return value, if the testing method records
    /// it.
    pub result: Option<String>,
    /// Whether the precondition is assumed or must be proved.
    pub pre_mode: PreMode,
}

/// A statement of a testing method.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An operation call.
    Call(CallStmt),
    /// A Jahob `assume` command.
    Assume(Term),
    /// The final `assert` command (the property the verifier must prove).
    Assert(Term),
}

/// A generated testing method.
#[derive(Debug, Clone, PartialEq)]
pub struct TestingMethod {
    /// The method name, following the paper's naming scheme, e.g.
    /// `contains_add_between_s_40`.
    pub name: String,
    /// The interface whose operations the method exercises.
    pub interface: InterfaceId,
    /// Method parameters: the shared initial abstract state and the operation
    /// arguments.
    pub params: Vec<(String, Sort)>,
    /// The `requires` clause: state-independent preconditions (non-null
    /// arguments, index bounds are handled per call).
    pub requires: Vec<Term>,
    /// The statements, in order.
    pub statements: Vec<Stmt>,
    /// Proof-language commands attached to the method (Table 5.9). Applied to
    /// the final assertion obligation.
    pub hints: Vec<Hint>,
}

impl TestingMethod {
    /// The calls of the method, in order.
    pub fn calls(&self) -> Vec<&CallStmt> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Stmt::Call(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// The final assertion of the method.
    ///
    /// # Panics
    ///
    /// Panics if the method has no `Assert` statement (generated methods
    /// always have exactly one).
    pub fn final_assert(&self) -> &Term {
        self.statements
            .iter()
            .rev()
            .find_map(|s| match s {
                Stmt::Assert(t) => Some(t),
                _ => None,
            })
            .expect("testing method has a final assert")
    }

    /// The number of `assume` commands (used by reports).
    pub fn assume_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s, Stmt::Assume(_)))
            .count()
    }

    /// Whether this is a soundness (`_s_`) or completeness (`_c_`) testing
    /// method, judging by its name.
    pub fn is_soundness(&self) -> bool {
        self.name.contains("_s_")
    }
}

impl fmt::Display for TestingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::render::render_method(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::build::*;

    fn sample() -> TestingMethod {
        TestingMethod {
            name: "contains_add_between_s_40".into(),
            interface: InterfaceId::Set,
            params: vec![
                ("s1".into(), Sort::Set),
                ("v1".into(), Sort::Elem),
                ("v2".into(), Sort::Elem),
            ],
            requires: vec![neq(var_elem("v1"), null())],
            statements: vec![
                Stmt::Call(CallStmt {
                    object: "sa".into(),
                    op: "contains".into(),
                    pre_state: "s1".into(),
                    post_state: None,
                    args: vec![var_elem("v1")],
                    result: Some("r1a".into()),
                    pre_mode: PreMode::Assume,
                }),
                Stmt::Assume(or2(neq(var_elem("v1"), var_elem("v2")), var_bool("r1a"))),
                Stmt::Assert(eq(var_bool("r1a"), var_bool("r1b"))),
            ],
            hints: vec![],
        }
    }

    #[test]
    fn accessors_find_calls_and_assert() {
        let m = sample();
        assert_eq!(m.calls().len(), 1);
        assert_eq!(m.calls()[0].op, "contains");
        assert_eq!(m.assume_count(), 1);
        assert!(m.is_soundness());
        assert!(matches!(m.final_assert(), Term::Eq(_, _)));
    }

    #[test]
    fn display_renders_like_a_jahob_method() {
        let text = sample().to_string();
        assert!(text.contains("void contains_add_between_s_40"));
        assert!(text.contains("sa.contains(v1)"));
        assert!(text.contains("assume"));
        assert!(text.contains("assert"));
    }
}
