//! Verification-condition generation: symbolic execution of testing methods.
//!
//! A testing method is straight-line code, so symbolic execution is simple
//! and deterministic: each call introduces functional definitions for its
//! result and post-state (taken from the operation's specification), each
//! `assume` adds a hypothesis, preconditions become hypotheses or proof
//! obligations depending on the call's [`PreMode`], and the final `assert`
//! becomes the main proof obligation. Proof hints attached to the method are
//! applied to the main obligation, contributing their side obligations.

use semcommute_logic::Term;
use semcommute_prover::{apply_hints, Obligation};
use semcommute_spec::interface_by_id;

use crate::method::{PreMode, Stmt, TestingMethod};

/// Symbolically executes a testing method, producing the proof obligations
/// whose validity establishes the property the method encodes (Properties 1,
/// 2, and 3 of the paper).
///
/// # Errors
///
/// Returns an error if the method calls an unknown operation, binds the
/// result of a `void` operation, or carries malformed proof hints.
pub fn generate_obligations(method: &TestingMethod) -> Result<Vec<Obligation>, String> {
    let iface = interface_by_id(method.interface);
    let mut defines: Vec<(String, Term)> = Vec::new();
    let mut hypotheses: Vec<Term> = method.requires.clone();
    let mut obligations: Vec<Obligation> = Vec::new();
    let mut precondition_count = 0usize;

    for stmt in &method.statements {
        match stmt {
            Stmt::Assume(t) => hypotheses.push(t.clone()),
            Stmt::Assert(goal) => {
                let main = Obligation {
                    name: format!("{}::assert", method.name),
                    defines: defines.clone(),
                    hypotheses: hypotheses.clone(),
                    goal: goal.clone(),
                };
                if method.hints.is_empty() {
                    obligations.push(main);
                } else {
                    let hinted = apply_hints(&main, &method.hints).map_err(|e| e.to_string())?;
                    obligations.extend(hinted.side_obligations);
                    obligations.push(hinted.main);
                }
            }
            Stmt::Call(call) => {
                let op = iface
                    .op(&call.op)
                    .ok_or_else(|| format!("{}: unknown operation `{}`", method.name, call.op))?;
                let state = Term::var(call.pre_state.clone(), iface.state_sort);
                let precondition = op.instantiate_pre(&state, &call.args);
                match call.pre_mode {
                    PreMode::Assume => hypotheses.push(precondition),
                    PreMode::Prove => {
                        precondition_count += 1;
                        obligations.push(Obligation {
                            name: format!("{}::pre_{}", method.name, precondition_count),
                            defines: defines.clone(),
                            hypotheses: hypotheses.clone(),
                            goal: precondition.clone(),
                        });
                        // Once proved, the precondition may be assumed for the
                        // rest of the method.
                        hypotheses.push(precondition);
                    }
                }
                if let Some(result_var) = &call.result {
                    let result = op.instantiate_result(&state, &call.args).ok_or_else(|| {
                        format!(
                            "{}: call to `{}` binds a result but the operation is void",
                            method.name, call.op
                        )
                    })?;
                    defines.push((result_var.clone(), result));
                }
                if let Some(post_var) = &call.post_state {
                    defines.push((post_var.clone(), op.instantiate_post(&state, &call.args)));
                }
            }
        }
    }
    Ok(obligations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::interface_catalog;
    use crate::kind::ConditionKind;
    use crate::template::{completeness_method, soundness_method};
    use semcommute_prover::Portfolio;
    use semcommute_spec::InterfaceId;

    fn find_condition(
        iface: InterfaceId,
        first: &str,
        first_recorded: bool,
        second: &str,
        second_recorded: bool,
        kind: ConditionKind,
    ) -> crate::condition::CommutativityCondition {
        interface_catalog(iface)
            .into_iter()
            .find(|c| {
                c.first.op == first
                    && c.first.recorded == first_recorded
                    && c.second.op == second
                    && c.second.recorded == second_recorded
                    && c.kind == kind
            })
            .expect("condition exists")
    }

    #[test]
    fn soundness_method_produces_pre_and_assert_obligations() {
        let cond = find_condition(
            InterfaceId::Set,
            "contains",
            true,
            "add",
            false,
            ConditionKind::Between,
        );
        let m = soundness_method(&cond, 40);
        let obs = generate_obligations(&m).unwrap();
        // Two reverse-order preconditions plus the final assertion.
        assert_eq!(obs.len(), 3);
        assert!(obs[0].name.ends_with("pre_1"));
        assert!(obs[2].name.ends_with("assert"));
        // Every obligation is provable (the catalog condition is sound).
        let prover = Portfolio::small();
        for ob in &obs {
            let verdict = prover.prove(ob);
            assert!(verdict.is_valid(), "{}: {verdict}", ob.name);
        }
    }

    #[test]
    fn completeness_method_produces_single_assert_obligation() {
        let cond = find_condition(
            InterfaceId::Set,
            "contains",
            true,
            "add",
            false,
            ConditionKind::Between,
        );
        let m = completeness_method(&cond, 40);
        let obs = generate_obligations(&m).unwrap();
        assert_eq!(obs.len(), 1);
        let verdict = Portfolio::small().prove(&obs[0]);
        assert!(verdict.is_valid(), "{verdict}");
    }

    #[test]
    fn unsound_condition_is_rejected_with_a_counterexample() {
        // Claim (wrongly) that contains/add always commute.
        let mut cond = find_condition(
            InterfaceId::Set,
            "contains",
            true,
            "add",
            false,
            ConditionKind::Between,
        );
        cond.formula = semcommute_logic::build::tru();
        let m = soundness_method(&cond, 1);
        let obs = generate_obligations(&m).unwrap();
        let assert_ob = obs.last().unwrap();
        let verdict = Portfolio::small().prove(assert_ob);
        let model = verdict.counter_model().expect("expected a counterexample");
        // In the counterexample v1 = v2 and v1 is not initially in the set.
        assert_eq!(model.get("v1"), model.get("v2"));
    }

    #[test]
    fn incomplete_condition_is_rejected() {
        // Claim (wrongly) that add/remove never commute (condition false):
        // completeness then demands that outcomes always differ, but they do
        // not when v1 != v2.
        let mut cond = find_condition(
            InterfaceId::Set,
            "add",
            false,
            "remove",
            false,
            ConditionKind::Before,
        );
        cond.formula = semcommute_logic::build::fls();
        let m = completeness_method(&cond, 1);
        let obs = generate_obligations(&m).unwrap();
        let verdict = Portfolio::small().prove(&obs[0]);
        assert!(verdict.is_counterexample());
    }

    #[test]
    fn accumulator_methods_verify_within_integer_scope() {
        let cond = find_condition(
            InterfaceId::Accumulator,
            "increase",
            true,
            "read",
            true,
            ConditionKind::Before,
        );
        for m in [soundness_method(&cond, 3), completeness_method(&cond, 3)] {
            for ob in generate_obligations(&m).unwrap() {
                let verdict = Portfolio::small().prove(&ob);
                assert!(verdict.is_valid(), "{}: {verdict}", ob.name);
            }
        }
    }

    #[test]
    fn malformed_method_reports_an_error() {
        let cond = find_condition(
            InterfaceId::Set,
            "add",
            true,
            "add",
            true,
            ConditionKind::Before,
        );
        let mut m = soundness_method(&cond, 1);
        if let Stmt::Call(c) = &mut m.statements[1] {
            c.op = "frobnicate".into();
        }
        assert!(generate_obligations(&m).is_err());
    }
}
