//! Ergonomic constructors for [`Term`]s.
//!
//! Specifications, commutativity conditions, and testing methods are built
//! programmatically; this module provides a small DSL so that the catalog code
//! reads close to the formulas in the paper's tables, e.g.
//!
//! ```
//! use semcommute_logic::build::*;
//! // v1 ~= v2  |  v1 : contents        (Table 5.2, contains/add)
//! let cond = or2(neq(var_elem("v1"), var_elem("v2")),
//!                member(var_elem("v1"), var_set("s1_contents")));
//! assert_eq!(cond.size(), 8);
//! ```

use crate::sort::Sort;
use crate::term::Term;

// ---------------------------------------------------------------------------
// Variables and literals
// ---------------------------------------------------------------------------

/// A boolean variable.
pub fn var_bool(name: &str) -> Term {
    Term::var(name, Sort::Bool)
}

/// An integer variable.
pub fn var_int(name: &str) -> Term {
    Term::var(name, Sort::Int)
}

/// An element (object) variable.
pub fn var_elem(name: &str) -> Term {
    Term::var(name, Sort::Elem)
}

/// A set variable.
pub fn var_set(name: &str) -> Term {
    Term::var(name, Sort::Set)
}

/// A map variable.
pub fn var_map(name: &str) -> Term {
    Term::var(name, Sort::Map)
}

/// A sequence variable.
pub fn var_seq(name: &str) -> Term {
    Term::var(name, Sort::Seq)
}

/// A variable of the given sort.
pub fn var_of(name: &str, sort: Sort) -> Term {
    Term::var(name, sort)
}

/// The literal `true`.
pub fn tru() -> Term {
    Term::BoolLit(true)
}

/// The literal `false`.
pub fn fls() -> Term {
    Term::BoolLit(false)
}

/// An integer literal.
pub fn int(i: i64) -> Term {
    Term::IntLit(i)
}

/// The `null` object literal.
pub fn null() -> Term {
    Term::Null
}

// ---------------------------------------------------------------------------
// Boolean connectives
// ---------------------------------------------------------------------------

/// Logical negation.
pub fn not(t: Term) -> Term {
    Term::Not(Box::new(t))
}

/// N-ary conjunction.
pub fn and(ts: impl IntoIterator<Item = Term>) -> Term {
    Term::And(ts.into_iter().collect())
}

/// Binary conjunction.
pub fn and2(a: Term, b: Term) -> Term {
    and([a, b])
}

/// Ternary conjunction.
pub fn and3(a: Term, b: Term, c: Term) -> Term {
    and([a, b, c])
}

/// N-ary disjunction.
pub fn or(ts: impl IntoIterator<Item = Term>) -> Term {
    Term::Or(ts.into_iter().collect())
}

/// Binary disjunction.
pub fn or2(a: Term, b: Term) -> Term {
    or([a, b])
}

/// Ternary disjunction.
pub fn or3(a: Term, b: Term, c: Term) -> Term {
    or([a, b, c])
}

/// Implication `a --> b`.
pub fn implies(a: Term, b: Term) -> Term {
    Term::Implies(Box::new(a), Box::new(b))
}

/// Bi-implication `a <-> b`.
pub fn iff(a: Term, b: Term) -> Term {
    Term::Iff(Box::new(a), Box::new(b))
}

/// If-then-else.
pub fn ite(c: Term, t: Term, e: Term) -> Term {
    Term::Ite(Box::new(c), Box::new(t), Box::new(e))
}

/// Equality.
pub fn eq(a: Term, b: Term) -> Term {
    Term::Eq(Box::new(a), Box::new(b))
}

/// Disequality (`~(a = b)`).
pub fn neq(a: Term, b: Term) -> Term {
    not(eq(a, b))
}

// ---------------------------------------------------------------------------
// Integer arithmetic
// ---------------------------------------------------------------------------

/// Integer addition.
pub fn add(a: Term, b: Term) -> Term {
    Term::Add(Box::new(a), Box::new(b))
}

/// Integer subtraction.
pub fn sub(a: Term, b: Term) -> Term {
    Term::Sub(Box::new(a), Box::new(b))
}

/// Integer negation.
pub fn neg(a: Term) -> Term {
    Term::Neg(Box::new(a))
}

/// Strict less-than.
pub fn lt(a: Term, b: Term) -> Term {
    Term::Lt(Box::new(a), Box::new(b))
}

/// Less-than-or-equal.
pub fn le(a: Term, b: Term) -> Term {
    Term::Le(Box::new(a), Box::new(b))
}

/// Strict greater-than.
pub fn gt(a: Term, b: Term) -> Term {
    lt(b, a)
}

/// Greater-than-or-equal.
pub fn ge(a: Term, b: Term) -> Term {
    le(b, a)
}

// ---------------------------------------------------------------------------
// Sets
// ---------------------------------------------------------------------------

/// The empty set.
pub fn empty_set() -> Term {
    Term::EmptySet
}

/// `s ∪ {v}`.
pub fn set_add(s: Term, v: Term) -> Term {
    Term::SetAdd(Box::new(s), Box::new(v))
}

/// `s \ {v}`.
pub fn set_remove(s: Term, v: Term) -> Term {
    Term::SetRemove(Box::new(s), Box::new(v))
}

/// `v ∈ s`.
pub fn member(v: Term, s: Term) -> Term {
    Term::Member(Box::new(v), Box::new(s))
}

/// `v ∉ s`.
pub fn not_member(v: Term, s: Term) -> Term {
    not(member(v, s))
}

/// `|s|`.
pub fn card(s: Term) -> Term {
    Term::Card(Box::new(s))
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

/// The empty map.
pub fn empty_map() -> Term {
    Term::EmptyMap
}

/// `m[k := v]`.
pub fn map_put(m: Term, k: Term, v: Term) -> Term {
    Term::MapPut(Box::new(m), Box::new(k), Box::new(v))
}

/// `m` with `k` unmapped.
pub fn map_remove(m: Term, k: Term) -> Term {
    Term::MapRemove(Box::new(m), Box::new(k))
}

/// The value mapped to `k`, or `null`.
pub fn map_get(m: Term, k: Term) -> Term {
    Term::MapGet(Box::new(m), Box::new(k))
}

/// `true` iff `k` is mapped.
pub fn map_has_key(m: Term, k: Term) -> Term {
    Term::MapHasKey(Box::new(m), Box::new(k))
}

/// The number of mapped keys.
pub fn map_size(m: Term) -> Term {
    Term::MapSize(Box::new(m))
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

/// The empty sequence.
pub fn empty_seq() -> Term {
    Term::EmptySeq
}

/// `s` with `v` inserted at index `i`.
pub fn seq_insert_at(s: Term, i: Term, v: Term) -> Term {
    Term::SeqInsertAt(Box::new(s), Box::new(i), Box::new(v))
}

/// `s` with the element at index `i` removed.
pub fn seq_remove_at(s: Term, i: Term) -> Term {
    Term::SeqRemoveAt(Box::new(s), Box::new(i))
}

/// `s` with the element at index `i` replaced by `v`.
pub fn seq_set_at(s: Term, i: Term, v: Term) -> Term {
    Term::SeqSetAt(Box::new(s), Box::new(i), Box::new(v))
}

/// The element of `s` at index `i` (or `null` out of range).
pub fn seq_at(s: Term, i: Term) -> Term {
    Term::SeqAt(Box::new(s), Box::new(i))
}

/// The length of `s`.
pub fn seq_len(s: Term) -> Term {
    Term::SeqLen(Box::new(s))
}

/// The first index of `v` in `s`, or `-1`.
pub fn seq_index_of(s: Term, v: Term) -> Term {
    Term::SeqIndexOf(Box::new(s), Box::new(v))
}

/// The last index of `v` in `s`, or `-1`.
pub fn seq_last_index_of(s: Term, v: Term) -> Term {
    Term::SeqLastIndexOf(Box::new(s), Box::new(v))
}

/// `true` iff `v` occurs in `s`.
pub fn seq_contains(s: Term, v: Term) -> Term {
    Term::SeqContains(Box::new(s), Box::new(v))
}

// ---------------------------------------------------------------------------
// Quantifiers
// ---------------------------------------------------------------------------

/// `∀ var ∈ [lo, hi). body`.
pub fn forall_int(var: &str, lo: Term, hi: Term, body: Term) -> Term {
    Term::ForallInt {
        var: var.to_string(),
        lo: Box::new(lo),
        hi: Box::new(hi),
        body: Box::new(body),
    }
}

/// `∃ var ∈ [lo, hi). body`.
pub fn exists_int(var: &str, lo: Term, hi: Term, body: Term) -> Term {
    Term::ExistsInt {
        var: var.to_string(),
        lo: Box::new(lo),
        hi: Box::new(hi),
        body: Box::new(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_bool, Model, Value};

    #[test]
    fn builders_build_expected_variants() {
        assert!(matches!(tru(), Term::BoolLit(true)));
        assert!(matches!(and2(tru(), fls()), Term::And(v) if v.len() == 2));
        assert!(matches!(or3(tru(), fls(), tru()), Term::Or(v) if v.len() == 3));
        assert!(matches!(gt(int(2), int(1)), Term::Lt(_, _)));
        assert!(matches!(ge(int(2), int(1)), Term::Le(_, _)));
    }

    #[test]
    fn neq_is_negated_eq() {
        let t = neq(var_elem("a"), var_elem("b"));
        assert!(matches!(t, Term::Not(inner) if matches!(*inner, Term::Eq(_, _))));
    }

    #[test]
    fn doc_example_evaluates() {
        let cond = or2(
            neq(var_elem("v1"), var_elem("v2")),
            member(var_elem("v1"), var_set("s")),
        );
        let mut m = Model::new();
        m.insert("v1", Value::elem(1));
        m.insert("v2", Value::elem(1));
        m.insert("s", Value::set_of([]));
        assert!(!eval_bool(&cond, &m).unwrap());
    }
}
