//! Models: assignments of values to free variables.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// An assignment of [`Value`]s to variable names.
///
/// A model gives meaning to the free variables of a term; [`crate::eval()`]
/// evaluates a term under a model. Models are also the shape of
/// counterexamples reported by the prover: a model under which the hypotheses
/// of an obligation hold but its goal does not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    bindings: BTreeMap<String, Value>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Model {
        Model::default()
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Returns the value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings.get(name)
    }

    /// Returns `true` if `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// Removes the binding for `name`, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.bindings.remove(name)
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if the model has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over `(name, value)` bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Builds a model from an iterator of bindings.
    pub fn from_bindings<I, S>(bindings: I) -> Model
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        let mut m = Model::new();
        for (k, v) in bindings {
            m.insert(k, v);
        }
        m
    }

    /// Returns a new model extending `self` with `name = value`.
    pub fn extended(&self, name: impl Into<String>, value: Value) -> Model {
        let mut m = self.clone();
        m.insert(name, value);
        m
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model {{")?;
        for (k, v) in &self.bindings {
            writeln!(f, "  {k} = {v}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<(S, Value)> for Model {
    fn from_iter<T: IntoIterator<Item = (S, Value)>>(iter: T) -> Self {
        Model::from_bindings(iter)
    }
}

impl<S: Into<String>> Extend<(S, Value)> for Model {
    fn extend<T: IntoIterator<Item = (S, Value)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ElemId;

    #[test]
    fn insert_get_remove() {
        let mut m = Model::new();
        assert!(m.is_empty());
        m.insert("x", Value::Int(3));
        assert_eq!(m.get("x"), Some(&Value::Int(3)));
        assert!(m.contains("x"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove("x"), Some(Value::Int(3)));
        assert!(m.get("x").is_none());
    }

    #[test]
    fn extended_does_not_mutate_original() {
        let m = Model::from_bindings([("a", Value::Bool(true))]);
        let m2 = m.extended("b", Value::elem(1));
        assert!(!m.contains("b"));
        assert!(m2.contains("b"));
        assert!(m2.contains("a"));
    }

    #[test]
    fn display_lists_bindings_in_order() {
        let m = Model::from_bindings([("b", Value::set_of([ElemId(1)])), ("a", Value::Int(0))]);
        let s = m.to_string();
        let a_pos = s.find("a = 0").unwrap();
        let b_pos = s.find("b = {o1}").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: Model = [("x", Value::Int(1))].into_iter().collect();
        m.extend([("y", Value::Int(2))]);
        assert_eq!(m.len(), 2);
    }
}
