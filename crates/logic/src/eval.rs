//! Evaluation of terms under a model.
//!
//! The evaluator defines the concrete semantics of the specification logic.
//! It is *total* on well-sorted terms whose free variables are bound by the
//! model: partial operations are totalized as documented on [`Term`], so the
//! finite-model prover can evaluate arbitrary sub-formulas without guards.

use std::fmt;

use crate::model::Model;
use crate::pvalue::{PMap, PSeq, PSet};
use crate::sort::Sort;
use crate::term::Term;
use crate::value::{ElemId, Value, NULL_ELEM};

/// Maximum width of a bounded quantifier range before evaluation refuses to
/// enumerate it. Obligations only quantify over sequence indices, so in
/// practice ranges are tiny; the limit guards against malformed inputs.
pub const MAX_QUANTIFIER_RANGE: i64 = 65_536;

/// An error produced while evaluating a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable was not bound by the model.
    UnboundVariable(String),
    /// An operand had an unexpected sort (e.g. `Card` of an integer).
    SortMismatch {
        /// Human-readable description of the operation being evaluated.
        context: &'static str,
        /// The sort that was expected.
        expected: Sort,
        /// The sort of the value actually found.
        found: Sort,
    },
    /// The two sides of an equality (or branches of an `Ite`) had different sorts.
    IncomparableSorts(Sort, Sort),
    /// A bounded quantifier range exceeded [`MAX_QUANTIFIER_RANGE`].
    QuantifierRangeTooLarge(i64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            EvalError::SortMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            EvalError::IncomparableSorts(a, b) => {
                write!(f, "cannot compare values of sorts {a} and {b}")
            }
            EvalError::QuantifierRangeTooLarge(n) => {
                write!(f, "quantifier range of width {n} is too large to enumerate")
            }
        }
    }
}

impl std::error::Error for EvalError {}

type Result<T> = std::result::Result<T, EvalError>;

fn expect_bool(v: Value, context: &'static str) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Bool,
            found: other.sort(),
        }),
    }
}

fn expect_int(v: Value, context: &'static str) -> Result<i64> {
    match v {
        Value::Int(i) => Ok(i),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Int,
            found: other.sort(),
        }),
    }
}

fn expect_elem(v: Value, context: &'static str) -> Result<ElemId> {
    match v {
        Value::Elem(e) => Ok(e),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Elem,
            found: other.sort(),
        }),
    }
}

fn expect_set(v: Value, context: &'static str) -> Result<PSet> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Set,
            found: other.sort(),
        }),
    }
}

fn expect_map(v: Value, context: &'static str) -> Result<PMap> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Map,
            found: other.sort(),
        }),
    }
}

fn expect_seq(v: Value, context: &'static str) -> Result<PSeq> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(EvalError::SortMismatch {
            context,
            expected: Sort::Seq,
            found: other.sort(),
        }),
    }
}

/// Evaluates `term` under `model`, producing a [`Value`].
///
/// # Errors
///
/// Returns an [`EvalError`] if a free variable is unbound, an operand has the
/// wrong sort, or a bounded quantifier range is unreasonably large.
pub fn eval(term: &Term, model: &Model) -> Result<Value> {
    use Term::*;
    Ok(match term {
        Var(v) => model
            .get(&v.name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(v.name.clone()))?,
        BoolLit(b) => Value::Bool(*b),
        IntLit(i) => Value::Int(*i),
        Null => Value::Elem(NULL_ELEM),

        Not(a) => Value::Bool(!expect_bool(eval(a, model)?, "not")?),
        And(cs) => {
            let mut acc = true;
            for c in cs {
                acc &= expect_bool(eval(c, model)?, "and")?;
            }
            Value::Bool(acc)
        }
        Or(cs) => {
            let mut acc = false;
            for c in cs {
                acc |= expect_bool(eval(c, model)?, "or")?;
            }
            Value::Bool(acc)
        }
        Implies(a, b) => {
            let a = expect_bool(eval(a, model)?, "implies")?;
            let b = expect_bool(eval(b, model)?, "implies")?;
            Value::Bool(!a || b)
        }
        Iff(a, b) => {
            let a = expect_bool(eval(a, model)?, "iff")?;
            let b = expect_bool(eval(b, model)?, "iff")?;
            Value::Bool(a == b)
        }
        Ite(c, t, e) => {
            let c = expect_bool(eval(c, model)?, "ite condition")?;
            let tv = eval(t, model)?;
            let ev = eval(e, model)?;
            if tv.sort() != ev.sort() {
                return Err(EvalError::IncomparableSorts(tv.sort(), ev.sort()));
            }
            if c {
                tv
            } else {
                ev
            }
        }
        Eq(a, b) => {
            let av = eval(a, model)?;
            let bv = eval(b, model)?;
            if av.sort() != bv.sort() {
                return Err(EvalError::IncomparableSorts(av.sort(), bv.sort()));
            }
            Value::Bool(av == bv)
        }

        Add(a, b) => Value::Int(
            expect_int(eval(a, model)?, "add")?.wrapping_add(expect_int(eval(b, model)?, "add")?),
        ),
        Sub(a, b) => Value::Int(
            expect_int(eval(a, model)?, "sub")?.wrapping_sub(expect_int(eval(b, model)?, "sub")?),
        ),
        Neg(a) => Value::Int(expect_int(eval(a, model)?, "neg")?.wrapping_neg()),
        Lt(a, b) => {
            Value::Bool(expect_int(eval(a, model)?, "lt")? < expect_int(eval(b, model)?, "lt")?)
        }
        Le(a, b) => {
            Value::Bool(expect_int(eval(a, model)?, "le")? <= expect_int(eval(b, model)?, "le")?)
        }

        EmptySet => Value::Set(PSet::new()),
        SetAdd(s, v) => {
            let mut s = expect_set(eval(s, model)?, "set add")?;
            s.insert(expect_elem(eval(v, model)?, "set add")?);
            Value::Set(s)
        }
        SetRemove(s, v) => {
            let mut s = expect_set(eval(s, model)?, "set remove")?;
            s.remove(&expect_elem(eval(v, model)?, "set remove")?);
            Value::Set(s)
        }
        Member(v, s) => {
            let v = expect_elem(eval(v, model)?, "member")?;
            let s = expect_set(eval(s, model)?, "member")?;
            Value::Bool(s.contains(&v))
        }
        Card(s) => Value::Int(expect_set(eval(s, model)?, "card")?.len() as i64),

        EmptyMap => Value::Map(PMap::new()),
        MapPut(m, k, v) => {
            let mut m = expect_map(eval(m, model)?, "map put")?;
            let k = expect_elem(eval(k, model)?, "map put key")?;
            let v = expect_elem(eval(v, model)?, "map put value")?;
            m.insert(k, v);
            Value::Map(m)
        }
        MapRemove(m, k) => {
            let mut m = expect_map(eval(m, model)?, "map remove")?;
            let k = expect_elem(eval(k, model)?, "map remove key")?;
            m.remove(&k);
            Value::Map(m)
        }
        MapGet(m, k) => {
            let m = expect_map(eval(m, model)?, "map get")?;
            let k = expect_elem(eval(k, model)?, "map get key")?;
            Value::Elem(m.get(&k).copied().unwrap_or(NULL_ELEM))
        }
        MapHasKey(m, k) => {
            let m = expect_map(eval(m, model)?, "map has-key")?;
            let k = expect_elem(eval(k, model)?, "map has-key key")?;
            Value::Bool(m.contains_key(&k))
        }
        MapSize(m) => Value::Int(expect_map(eval(m, model)?, "map size")?.len() as i64),

        EmptySeq => Value::Seq(PSeq::new()),
        SeqInsertAt(s, i, v) => {
            let mut s = expect_seq(eval(s, model)?, "seq insert-at")?;
            let i = expect_int(eval(i, model)?, "seq insert-at index")?;
            let v = expect_elem(eval(v, model)?, "seq insert-at value")?;
            let idx = i.clamp(0, s.len() as i64) as usize;
            s.insert(idx, v);
            Value::Seq(s)
        }
        SeqRemoveAt(s, i) => {
            let mut s = expect_seq(eval(s, model)?, "seq remove-at")?;
            let i = expect_int(eval(i, model)?, "seq remove-at index")?;
            if i >= 0 && (i as usize) < s.len() {
                s.remove(i as usize);
            }
            Value::Seq(s)
        }
        SeqSetAt(s, i, v) => {
            let mut s = expect_seq(eval(s, model)?, "seq set-at")?;
            let i = expect_int(eval(i, model)?, "seq set-at index")?;
            let v = expect_elem(eval(v, model)?, "seq set-at value")?;
            if i >= 0 && (i as usize) < s.len() {
                s.set(i as usize, v);
            }
            Value::Seq(s)
        }
        SeqAt(s, i) => {
            let s = expect_seq(eval(s, model)?, "seq at")?;
            let i = expect_int(eval(i, model)?, "seq at index")?;
            let e = if i >= 0 && (i as usize) < s.len() {
                s[i as usize]
            } else {
                NULL_ELEM
            };
            Value::Elem(e)
        }
        SeqLen(s) => Value::Int(expect_seq(eval(s, model)?, "seq len")?.len() as i64),
        SeqIndexOf(s, v) => {
            let s = expect_seq(eval(s, model)?, "seq index-of")?;
            let v = expect_elem(eval(v, model)?, "seq index-of value")?;
            Value::Int(s.iter().position(|&e| e == v).map_or(-1, |i| i as i64))
        }
        SeqLastIndexOf(s, v) => {
            let s = expect_seq(eval(s, model)?, "seq last-index-of")?;
            let v = expect_elem(eval(v, model)?, "seq last-index-of value")?;
            Value::Int(s.iter().rposition(|&e| e == v).map_or(-1, |i| i as i64))
        }
        SeqContains(s, v) => {
            let s = expect_seq(eval(s, model)?, "seq contains")?;
            let v = expect_elem(eval(v, model)?, "seq contains value")?;
            Value::Bool(s.contains(&v))
        }

        ForallInt { var, lo, hi, body } => {
            Value::Bool(eval_quantifier(var, lo, hi, body, model, true)?)
        }
        ExistsInt { var, lo, hi, body } => {
            Value::Bool(eval_quantifier(var, lo, hi, body, model, false)?)
        }
    })
}

fn eval_quantifier(
    var: &str,
    lo: &Term,
    hi: &Term,
    body: &Term,
    model: &Model,
    universal: bool,
) -> Result<bool> {
    let lo = expect_int(eval(lo, model)?, "quantifier lower bound")?;
    let hi = expect_int(eval(hi, model)?, "quantifier upper bound")?;
    if hi - lo > MAX_QUANTIFIER_RANGE {
        return Err(EvalError::QuantifierRangeTooLarge(hi - lo));
    }
    let mut inner = model.clone();
    for i in lo..hi {
        inner.insert(var, Value::Int(i));
        let b = expect_bool(eval(body, &inner)?, "quantifier body")?;
        if universal && !b {
            return Ok(false);
        }
        if !universal && b {
            return Ok(true);
        }
    }
    Ok(universal)
}

/// Evaluates a boolean term under a model.
///
/// # Errors
///
/// Returns an error if evaluation fails or the term is not boolean.
pub fn eval_bool(term: &Term, model: &Model) -> Result<bool> {
    expect_bool(eval(term, model)?, "formula")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn m() -> Model {
        Model::from_bindings([
            ("v1", Value::elem(1)),
            ("v2", Value::elem(2)),
            ("s", Value::set_of([ElemId(1), ElemId(3)])),
            ("mp", Value::map_of([(ElemId(1), ElemId(10))])),
            ("q", Value::seq_of([ElemId(5), ElemId(6), ElemId(5)])),
            ("i", Value::Int(1)),
        ])
    }

    #[test]
    fn boolean_connectives() {
        let m = m();
        assert!(eval_bool(&and2(tru(), not(fls())), &m).unwrap());
        assert!(!eval_bool(&and2(tru(), fls()), &m).unwrap());
        assert!(eval_bool(&or2(fls(), tru()), &m).unwrap());
        assert!(eval_bool(&implies(fls(), fls()), &m).unwrap());
        assert!(!eval_bool(&implies(tru(), fls()), &m).unwrap());
        assert!(eval_bool(&iff(fls(), fls()), &m).unwrap());
        assert!(eval_bool(&and([]), &m).unwrap());
        assert!(!eval_bool(&or([]), &m).unwrap());
    }

    #[test]
    fn integer_arithmetic_and_comparison() {
        let m = m();
        assert_eq!(eval(&add(int(2), int(3)), &m).unwrap(), Value::Int(5));
        assert_eq!(eval(&sub(int(2), int(3)), &m).unwrap(), Value::Int(-1));
        assert_eq!(eval(&neg(int(2)), &m).unwrap(), Value::Int(-2));
        assert!(eval_bool(&lt(int(1), int(2)), &m).unwrap());
        assert!(!eval_bool(&lt(int(2), int(2)), &m).unwrap());
        assert!(eval_bool(&le(int(2), int(2)), &m).unwrap());
        assert!(eval_bool(&gt(int(3), int(2)), &m).unwrap());
        assert!(eval_bool(&ge(int(2), int(2)), &m).unwrap());
    }

    #[test]
    fn set_operations() {
        let m = m();
        assert!(eval_bool(&member(var_elem("v1"), var_set("s")), &m).unwrap());
        assert!(!eval_bool(&member(var_elem("v2"), var_set("s")), &m).unwrap());
        assert_eq!(eval(&card(var_set("s")), &m).unwrap(), Value::Int(2));
        // adding an existing element does not grow the set
        assert_eq!(
            eval(&card(set_add(var_set("s"), var_elem("v1"))), &m).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval(&card(set_add(var_set("s"), var_elem("v2"))), &m).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval(&card(set_remove(var_set("s"), var_elem("v1"))), &m).unwrap(),
            Value::Int(1)
        );
        assert!(eval_bool(&eq(empty_set(), empty_set()), &m).unwrap());
    }

    #[test]
    fn map_operations() {
        let m = m();
        assert!(eval_bool(&map_has_key(var_map("mp"), var_elem("v1")), &m).unwrap());
        assert!(!eval_bool(&map_has_key(var_map("mp"), var_elem("v2")), &m).unwrap());
        assert_eq!(
            eval(&map_get(var_map("mp"), var_elem("v1")), &m).unwrap(),
            Value::elem(10)
        );
        assert_eq!(
            eval(&map_get(var_map("mp"), var_elem("v2")), &m).unwrap(),
            Value::null()
        );
        assert_eq!(
            eval(
                &map_size(map_put(var_map("mp"), var_elem("v2"), var_elem("v1"))),
                &m
            )
            .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval(&map_size(map_remove(var_map("mp"), var_elem("v1"))), &m).unwrap(),
            Value::Int(0)
        );
        // overwriting a key keeps the size
        assert_eq!(
            eval(
                &map_size(map_put(var_map("mp"), var_elem("v1"), var_elem("v2"))),
                &m
            )
            .unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn seq_operations() {
        let m = m();
        let q = var_seq("q");
        assert_eq!(eval(&seq_len(q.clone()), &m).unwrap(), Value::Int(3));
        assert_eq!(
            eval(&seq_at(q.clone(), int(0)), &m).unwrap(),
            Value::elem(5)
        );
        assert_eq!(eval(&seq_at(q.clone(), int(5)), &m).unwrap(), Value::null());
        assert_eq!(
            eval(&seq_at(q.clone(), int(-1)), &m).unwrap(),
            Value::null()
        );
        assert_eq!(
            eval(&seq_index_of(q.clone(), var_elem("v1")), &m).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(
            eval(
                &seq_index_of(q.clone(), Term::var("e5", Sort::Elem)),
                &Model::from_bindings([
                    ("q", Value::seq_of([ElemId(5), ElemId(6), ElemId(5)])),
                    ("e5", Value::elem(5)),
                ])
            )
            .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval(&seq_last_index_of(q.clone(), seq_at(q.clone(), int(0))), &m).unwrap(),
            Value::Int(2)
        );
        assert!(eval_bool(&seq_contains(q.clone(), seq_at(q.clone(), int(1))), &m).unwrap());

        // insert / remove / set
        assert_eq!(
            eval(
                &seq_len(seq_insert_at(q.clone(), int(1), var_elem("v1"))),
                &m
            )
            .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval(
                &seq_at(seq_insert_at(q.clone(), int(1), var_elem("v1")), int(1)),
                &m
            )
            .unwrap(),
            Value::elem(1)
        );
        // clamp: inserting far out of range appends
        assert_eq!(
            eval(
                &seq_at(seq_insert_at(q.clone(), int(99), var_elem("v1")), int(3)),
                &m
            )
            .unwrap(),
            Value::elem(1)
        );
        assert_eq!(
            eval(&seq_len(seq_remove_at(q.clone(), int(0))), &m).unwrap(),
            Value::Int(2)
        );
        // out of range remove is a no-op
        assert_eq!(
            eval(&seq_len(seq_remove_at(q.clone(), int(7))), &m).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval(
                &seq_at(seq_set_at(q.clone(), int(2), var_elem("v2")), int(2)),
                &m
            )
            .unwrap(),
            Value::elem(2)
        );
    }

    #[test]
    fn ite_and_eq() {
        let m = m();
        assert_eq!(
            eval(&ite(tru(), int(1), int(2)), &m).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval(&ite(fls(), int(1), int(2)), &m).unwrap(),
            Value::Int(2)
        );
        assert!(eval_bool(&eq(null(), null()), &m).unwrap());
        assert!(!eval_bool(&eq(var_elem("v1"), null()), &m).unwrap());
        assert!(matches!(
            eval(&eq(int(1), tru()), &m),
            Err(EvalError::IncomparableSorts(_, _))
        ));
    }

    #[test]
    fn quantifiers_over_indices() {
        let m = m();
        // every element of q equals o5 or o6
        let q = var_seq("q");
        let body = or2(
            eq(seq_at(q.clone(), var_int("i")), seq_at(q.clone(), int(0))),
            eq(seq_at(q.clone(), var_int("i")), seq_at(q.clone(), int(1))),
        );
        let all = forall_int("i", int(0), seq_len(q.clone()), body.clone());
        assert!(eval_bool(&all, &m).unwrap());
        // there exists an index whose element equals element 1 (o6)
        let ex = exists_int(
            "i",
            int(0),
            seq_len(q.clone()),
            eq(seq_at(q.clone(), var_int("i")), seq_at(q.clone(), int(1))),
        );
        assert!(eval_bool(&ex, &m).unwrap());
        // empty range: forall true, exists false
        assert!(eval_bool(&forall_int("i", int(3), int(3), fls()), &m).unwrap());
        assert!(!eval_bool(&exists_int("i", int(3), int(3), tru()), &m).unwrap());
    }

    #[test]
    fn errors_are_reported() {
        let m = m();
        assert!(matches!(
            eval(&var_bool("missing"), &m),
            Err(EvalError::UnboundVariable(_))
        ));
        assert!(matches!(
            eval(&card(var_elem("v1")), &m),
            Err(EvalError::SortMismatch { .. })
        ));
        assert!(matches!(
            eval(&exists_int("i", int(0), int(1_000_000), tru()), &m),
            Err(EvalError::QuantifierRangeTooLarge(_))
        ));
        let err = EvalError::UnboundVariable("x".into());
        assert!(err.to_string().contains("x"));
    }

    use crate::sort::Sort;
    use crate::value::ElemId;
}
