//! Sorts (types) of the specification logic.

use std::fmt;

/// The sort (type) of a term in the specification logic.
///
/// Each sort corresponds to one component of the abstract state of a data
/// structure in the paper, or to the primitive sorts used by specifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// Boolean truth values.
    Bool,
    /// Mathematical (unbounded) integers. Used for sizes, indices, and the
    /// Accumulator counter.
    Int,
    /// Opaque object identities, including the distinguished `null` object.
    /// Set elements, map keys, map values, and sequence elements all have this
    /// sort.
    Elem,
    /// Finite sets of elements — the abstract state of `ListSet` / `HashSet`.
    Set,
    /// Finite partial maps from elements to elements — the abstract state of
    /// `AssociationList` / `HashTable`.
    Map,
    /// Finite sequences of elements — the abstract state of `ArrayList`.
    Seq,
}

impl Sort {
    /// Returns `true` if values of this sort are "scalar" (not a collection).
    pub fn is_scalar(self) -> bool {
        matches!(self, Sort::Bool | Sort::Int | Sort::Elem)
    }

    /// Returns `true` if this sort is a collection (abstract container state).
    pub fn is_collection(self) -> bool {
        !self.is_scalar()
    }

    /// All sorts, in a fixed order. Useful for exhaustive iteration in tests.
    pub const ALL: [Sort; 6] = [
        Sort::Bool,
        Sort::Int,
        Sort::Elem,
        Sort::Set,
        Sort::Map,
        Sort::Seq,
    ];
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sort::Bool => "bool",
            Sort::Int => "int",
            Sort::Elem => "obj",
            Sort::Set => "obj set",
            Sort::Map => "(obj, obj) map",
            Sort::Seq => "obj seq",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_collection_partition() {
        for s in Sort::ALL {
            assert_ne!(s.is_scalar(), s.is_collection());
        }
        assert!(Sort::Bool.is_scalar());
        assert!(Sort::Int.is_scalar());
        assert!(Sort::Elem.is_scalar());
        assert!(Sort::Set.is_collection());
        assert!(Sort::Map.is_collection());
        assert!(Sort::Seq.is_collection());
    }

    #[test]
    fn display_is_jahob_like() {
        assert_eq!(Sort::Set.to_string(), "obj set");
        assert_eq!(Sort::Bool.to_string(), "bool");
    }

    #[test]
    fn all_contains_every_sort_once() {
        let mut sorted = Sort::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }
}
