//! Negation normal form.
//!
//! The finite-model prover and the proof-hint machinery (`pickWitness`)
//! operate on formulas in negation normal form, where negation is pushed down
//! to atoms and implications / bi-implications are eliminated. Quantifier
//! duality (`¬∀ = ∃¬`, `¬∃ = ∀¬`) is applied so that existential hypotheses
//! are visible for witness picking.

use crate::arena::with_arena;
use crate::term::Term;

/// Converts a boolean term to negation normal form.
///
/// The result contains no `Implies`, `Iff`, and negations only directly above
/// atoms (equalities, memberships, comparisons, …). The conversion runs on
/// the calling thread's hash-consed arena, memoized on `(sub-term, polarity)`
/// (see [`crate::arena::TermArena::nnf_id`]), so shared sub-DAGs are
/// converted once per polarity.
pub fn to_nnf(term: &Term) -> Term {
    with_arena(|arena| {
        let id = arena.intern(term);
        let converted = arena.nnf_id(id, false);
        arena.to_term(converted)
    })
}

/// Returns `true` if a term is in negation normal form.
pub fn is_nnf(term: &Term) -> bool {
    use Term::*;
    match term {
        Not(a) => !matches!(
            **a,
            Not(_)
                | And(_)
                | Or(_)
                | Implies(_, _)
                | Iff(_, _)
                | ForallInt { .. }
                | ExistsInt { .. }
        ),
        Implies(_, _) | Iff(_, _) => false,
        And(cs) | Or(cs) => cs.iter().all(is_nnf),
        ForallInt { body, .. } | ExistsInt { body, .. } => is_nnf(body),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::{eval_bool, Model, Value};

    #[test]
    fn implications_are_eliminated() {
        let t = implies(var_bool("p"), var_bool("q"));
        let n = to_nnf(&t);
        assert!(is_nnf(&n));
        assert!(!format!("{n:?}").contains("Implies"));
    }

    #[test]
    fn negation_is_pushed_to_atoms() {
        let t = not(and2(var_bool("p"), or2(var_bool("q"), not(var_bool("r")))));
        let n = to_nnf(&t);
        assert!(is_nnf(&n));
    }

    #[test]
    fn quantifier_duality() {
        let t = not(exists_int("i", int(0), int(3), var_bool("p")));
        let n = to_nnf(&t);
        assert!(matches!(n, Term::ForallInt { .. }));
        let t2 = not(forall_int("i", int(0), int(3), var_bool("p")));
        assert!(matches!(to_nnf(&t2), Term::ExistsInt { .. }));
    }

    #[test]
    fn nnf_preserves_truth_value() {
        let cases = vec![
            implies(var_bool("p"), var_bool("q")),
            iff(var_bool("p"), var_bool("q")),
            not(iff(var_bool("p"), var_bool("q"))),
            not(implies(and2(var_bool("p"), var_bool("q")), var_bool("r"))),
            ite(var_bool("p"), var_bool("q"), var_bool("r")),
            not(ite(var_bool("p"), var_bool("q"), var_bool("r"))),
        ];
        for p in [false, true] {
            for q in [false, true] {
                for r in [false, true] {
                    let m = Model::from_bindings([
                        ("p", Value::Bool(p)),
                        ("q", Value::Bool(q)),
                        ("r", Value::Bool(r)),
                    ]);
                    for c in &cases {
                        assert_eq!(
                            eval_bool(c, &m).unwrap(),
                            eval_bool(&to_nnf(c), &m).unwrap(),
                            "NNF changed the meaning of {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn is_nnf_detects_violations() {
        assert!(is_nnf(&var_bool("p")));
        assert!(is_nnf(&not(var_bool("p"))));
        assert!(!is_nnf(&not(not(var_bool("p")))));
        assert!(!is_nnf(&implies(var_bool("p"), var_bool("q"))));
        assert!(!is_nnf(&not(and2(var_bool("p"), var_bool("q")))));
    }
}
