//! Negation normal form.
//!
//! The finite-model prover and the proof-hint machinery (`pickWitness`)
//! operate on formulas in negation normal form, where negation is pushed down
//! to atoms and implications / bi-implications are eliminated. Quantifier
//! duality (`¬∀ = ∃¬`, `¬∃ = ∀¬`) is applied so that existential hypotheses
//! are visible for witness picking.

use crate::term::Term;

/// Converts a boolean term to negation normal form.
///
/// The result contains no `Implies`, `Iff`, and negations only directly above
/// atoms (equalities, memberships, comparisons, …).
pub fn to_nnf(term: &Term) -> Term {
    nnf(term, false)
}

fn negate_atom(t: Term) -> Term {
    Term::Not(Box::new(t))
}

fn nnf(term: &Term, negated: bool) -> Term {
    use Term::*;
    match term {
        BoolLit(b) => BoolLit(*b != negated),
        Not(a) => nnf(a, !negated),
        And(cs) => {
            let parts: Vec<Term> = cs.iter().map(|c| nnf(c, negated)).collect();
            if negated {
                Or(parts)
            } else {
                And(parts)
            }
        }
        Or(cs) => {
            let parts: Vec<Term> = cs.iter().map(|c| nnf(c, negated)).collect();
            if negated {
                And(parts)
            } else {
                Or(parts)
            }
        }
        Implies(a, b) => {
            // a --> b   ==   ~a | b
            if negated {
                // ~(a --> b) == a & ~b
                And(vec![nnf(a, false), nnf(b, true)])
            } else {
                Or(vec![nnf(a, true), nnf(b, false)])
            }
        }
        Iff(a, b) => {
            // a <-> b == (a & b) | (~a & ~b);   negated: (a & ~b) | (~a & b)
            if negated {
                Or(vec![
                    And(vec![nnf(a, false), nnf(b, true)]),
                    And(vec![nnf(a, true), nnf(b, false)]),
                ])
            } else {
                Or(vec![
                    And(vec![nnf(a, false), nnf(b, false)]),
                    And(vec![nnf(a, true), nnf(b, true)]),
                ])
            }
        }
        ForallInt { var, lo, hi, body } => {
            let inner = nnf(body, negated);
            if negated {
                ExistsInt {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: Box::new(inner),
                }
            } else {
                ForallInt {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: Box::new(inner),
                }
            }
        }
        ExistsInt { var, lo, hi, body } => {
            let inner = nnf(body, negated);
            if negated {
                ForallInt {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: Box::new(inner),
                }
            } else {
                ExistsInt {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    body: Box::new(inner),
                }
            }
        }
        // Ite at the boolean level: expand into a disjunction of guarded cases.
        Ite(c, x, y) => {
            let pos = And(vec![nnf(c, false), nnf(x, negated)]);
            let neg = And(vec![nnf(c, true), nnf(y, negated)]);
            Or(vec![pos, neg])
        }
        // Atoms: equalities, comparisons, memberships, etc.
        atom => {
            if negated {
                negate_atom(atom.clone())
            } else {
                atom.clone()
            }
        }
    }
}

/// Returns `true` if a term is in negation normal form.
pub fn is_nnf(term: &Term) -> bool {
    use Term::*;
    match term {
        Not(a) => !matches!(
            **a,
            Not(_) | And(_) | Or(_) | Implies(_, _) | Iff(_, _) | ForallInt { .. } | ExistsInt { .. }
        ),
        Implies(_, _) | Iff(_, _) => false,
        And(cs) | Or(cs) => cs.iter().all(is_nnf),
        ForallInt { body, .. } | ExistsInt { body, .. } => is_nnf(body),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::{eval_bool, Model, Value};

    #[test]
    fn implications_are_eliminated() {
        let t = implies(var_bool("p"), var_bool("q"));
        let n = to_nnf(&t);
        assert!(is_nnf(&n));
        assert!(!format!("{n:?}").contains("Implies"));
    }

    #[test]
    fn negation_is_pushed_to_atoms() {
        let t = not(and2(
            var_bool("p"),
            or2(var_bool("q"), not(var_bool("r"))),
        ));
        let n = to_nnf(&t);
        assert!(is_nnf(&n));
    }

    #[test]
    fn quantifier_duality() {
        let t = not(exists_int("i", int(0), int(3), var_bool("p")));
        let n = to_nnf(&t);
        assert!(matches!(n, Term::ForallInt { .. }));
        let t2 = not(forall_int("i", int(0), int(3), var_bool("p")));
        assert!(matches!(to_nnf(&t2), Term::ExistsInt { .. }));
    }

    #[test]
    fn nnf_preserves_truth_value() {
        let cases = vec![
            implies(var_bool("p"), var_bool("q")),
            iff(var_bool("p"), var_bool("q")),
            not(iff(var_bool("p"), var_bool("q"))),
            not(implies(and2(var_bool("p"), var_bool("q")), var_bool("r"))),
            ite(var_bool("p"), var_bool("q"), var_bool("r")),
            not(ite(var_bool("p"), var_bool("q"), var_bool("r"))),
        ];
        for p in [false, true] {
            for q in [false, true] {
                for r in [false, true] {
                    let m = Model::from_bindings([
                        ("p", Value::Bool(p)),
                        ("q", Value::Bool(q)),
                        ("r", Value::Bool(r)),
                    ]);
                    for c in &cases {
                        assert_eq!(
                            eval_bool(c, &m).unwrap(),
                            eval_bool(&to_nnf(c), &m).unwrap(),
                            "NNF changed the meaning of {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn is_nnf_detects_violations() {
        assert!(is_nnf(&var_bool("p")));
        assert!(is_nnf(&not(var_bool("p"))));
        assert!(!is_nnf(&not(not(var_bool("p")))));
        assert!(!is_nnf(&implies(var_bool("p"), var_bool("q"))));
        assert!(!is_nnf(&not(and2(var_bool("p"), var_bool("q")))));
    }
}
